#!/usr/bin/env python3
"""Quickstart: synthesize provably optimal 4-bit reversible circuits.

Builds (or loads from cache) a depth-5 database in about a second, then
synthesizes a handful of functions, printing the minimal circuits in the
paper's notation together with ASCII drawings.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import OptimalSynthesizer, Permutation


def main() -> None:
    # k = 5 with lists to depth 4 reaches every function of size <= 9.
    synth = OptimalSynthesizer(n_wires=4, k=5, max_list_size=4, verbose=True)
    synth.prepare()

    print("\n--- shift4: x -> x + 1 (mod 16) ---")
    shift4 = Permutation.from_spec("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
    circuit = synth.synthesize(shift4)
    print(f"optimal circuit ({circuit.gate_count} gates): {circuit}")
    print(circuit.draw())

    print("\n--- a random-looking permutation ---")
    perm = Permutation.from_spec("[0,1,2,3,4,5,6,8,7,9,10,11,12,13,14,15]")
    outcome = synth.search(perm)
    print(f"spec           : {perm}")
    print(f"optimal size   : {outcome.size} gates (provably minimal)")
    print(f"circuit        : {outcome.circuit}")
    print(f"depth          : {outcome.circuit.depth()} layers")
    print(f"NCV cost       : {outcome.circuit.cost()}")
    print(f"lists scanned  : {outcome.lists_scanned}")

    print("\n--- verification is built in ---")
    assert outcome.circuit.implements(perm)
    print("circuit verified against the specification")

    print("\n--- functions beyond the search bound raise with a proof ---")
    from repro.errors import SizeLimitExceededError

    hwb4 = Permutation.from_spec("[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]")
    try:
        synth.synthesize(hwb4)
    except SizeLimitExceededError as exc:
        print(
            f"hwb4 needs more than {synth.max_size} gates "
            f"(proven lower bound: {exc.lower_bound}; raise k to reach it)"
        )


if __name__ == "__main__":
    main()
