#!/usr/bin/env python3
"""Table 6: the benchmark functions of the reversible-logic literature.

Synthesizes every benchmark the configured search reach covers, verifies
the paper's published circuits, and writes the optimal circuits to
RevLib ``.real`` files under ``./out/``.

Run:  python examples/benchmark_suite.py          (reach L = 9, fast)
      REPRO_EXAMPLE_K=6 python examples/benchmark_suite.py   (reach L = 11)
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro import OptimalSynthesizer
from repro.benchmarks_data import BENCHMARKS
from repro.errors import SizeLimitExceededError
from repro.io.real_format import write_real


def main() -> None:
    k = int(os.environ.get("REPRO_EXAMPLE_K", "5"))
    synth = OptimalSynthesizer(k=k, max_list_size=min(4, k), verbose=True)
    synth.prepare()
    out_dir = Path("out")
    out_dir.mkdir(exist_ok=True)

    print(f"\nsearch reach: L = {synth.max_size}\n")
    print(f"{'Name':<10} {'SBKC':>5} {'SOC':>4} {'ours':>6} {'time':>10}")
    for bench in BENCHMARKS:
        perm = bench.permutation()
        # The paper's published circuit must check out regardless.
        assert bench.circuit().implements(perm), bench.name
        start = time.perf_counter()
        try:
            outcome = synth.search(perm)
            ours = str(outcome.size)
            path = out_dir / f"{bench.name}.real"
            write_real(
                outcome.circuit,
                path,
                comment=(
                    f"{bench.name}: provably optimal, "
                    f"{outcome.size} gates"
                ),
            )
        except SizeLimitExceededError as exc:
            ours = f">={exc.lower_bound}"
        elapsed = time.perf_counter() - start
        sbkc = str(bench.best_known_size) if bench.best_known_size else "n/a"
        print(f"{bench.name:<10} {sbkc:>5} {bench.optimal_size:>4} "
              f"{ours:>6} {elapsed:>9.3f}s")

    written = sorted(p.name for p in out_dir.glob("*.real"))
    print(f"\nwrote {len(written)} optimal circuits to ./out/: "
          f"{', '.join(written)}")


if __name__ == "__main__":
    main()
