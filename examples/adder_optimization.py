#!/usr/bin/env python3
"""Figure 2 of the paper: optimizing the 1-bit full adder.

"The famous Shor's integer factoring algorithm is dominated by adders
like this" -- this example builds the reversible full-adder
specification, shows a textbook-style 6-gate circuit, proves that 4
gates are optimal, and demonstrates the peephole optimizer recovering
the optimal circuit automatically.

Run:  python examples/adder_optimization.py
"""

from __future__ import annotations

from repro import OptimalSynthesizer
from repro.apps.adder import (
    full_adder_permutation,
    optimal_adder_circuit,
    suboptimal_adder_circuit,
)
from repro.apps.peephole import PeepholeOptimizer


def main() -> None:
    spec = full_adder_permutation()
    print("1-bit full adder as a 4-bit reversible function (= rd32):")
    print(f"  {spec}\n")

    suboptimal = suboptimal_adder_circuit()
    print(f"textbook circuit ({suboptimal.gate_count} gates):")
    print(suboptimal.draw())
    assert suboptimal.implements(spec)

    synth = OptimalSynthesizer(k=4, max_list_size=3)
    synth.prepare()
    outcome = synth.search(spec)
    print(f"\nexhaustive search: the optimum is {outcome.size} gates")
    print(f"optimal circuit: {outcome.circuit}")
    print(outcome.circuit.draw())
    assert outcome.size == 4
    assert outcome.circuit.implements(spec)
    assert optimal_adder_circuit().implements(spec)

    print("\npeephole optimization of the textbook circuit:")
    optimizer = PeepholeOptimizer(synth)
    report = optimizer.optimize(suboptimal)
    print(f"  before: {report.original.gate_count} gates")
    print(f"  after : {report.optimized.gate_count} gates "
          f"({report.gates_saved} saved, {report.passes} pass(es))")
    assert report.optimized.implements(spec)

    print("\nwhy it matters: NCV quantum cost comparison")
    print(f"  textbook: {suboptimal.cost()}   optimal: {outcome.circuit.cost()}")


if __name__ == "__main__":
    main()
