#!/usr/bin/env python3
"""Testing heuristic synthesizers against the optimal baseline.

The paper (Section 1): optimal 4-bit synthesis gives a test "that allows
more room for improvement" than the saturated 3-bit comparisons.  This
example runs the MMD transformation-based heuristic (both variants)
against provably optimal sizes on a random sample and prints the
overhead profile -- exactly the evaluation the paper proposes.

Run:  python examples/heuristic_evaluation.py
"""

from __future__ import annotations

from repro import OptimalSynthesizer, Permutation
from repro.rng.mt19937 import MersenneTwister
from repro.rng.sampling import random_circuit
from repro.synth.heuristic import mmd_synthesize


def main() -> None:
    synth = OptimalSynthesizer(k=5, max_list_size=4)
    synth.prepare()

    # Sample functions of size <= 9 by drawing random 9-gate circuits
    # (uniform sampling over all of 16! would mostly produce sizes 11-13,
    # beyond this quick example's L = 9 reach).
    rng = MersenneTwister(5489)
    rows = []
    for _ in range(12):
        perm = Permutation(random_circuit(4, 9, rng).to_word(), 4)
        optimal = synth.size(perm)
        uni = mmd_synthesize(perm, bidirectional=False).gate_count
        bi = mmd_synthesize(perm, bidirectional=True).gate_count
        if optimal > 0:
            rows.append((optimal, uni, bi))

    print(f"{'optimal':>7}  {'MMD uni':>7}  {'MMD bi':>7}  "
          f"{'overhead(bi)':>12}")
    for optimal, uni, bi in sorted(rows):
        print(f"{optimal:>7}  {uni:>7}  {bi:>7}  {bi / optimal:>11.2f}x")

    total_opt = sum(r[0] for r in rows)
    total_bi = sum(r[2] for r in rows)
    print(f"\naverage overhead of the bidirectional heuristic: "
          f"{total_bi / total_opt:.2f}x")
    print("(3-bit benchmarks give heuristics ~1.0x -- no headroom; the")
    print(" 4-bit optimal baseline exposes the real gap, as the paper argues)")

    print("\nnote: sampled functions here have size <= 9; random 4-bit")
    print("functions average 11.94 gates, so the full-reach gap is larger.")


if __name__ == "__main__":
    main()
