#!/usr/bin/env python3
"""Peephole optimization of wider circuits with the optimal 4-bit core.

The paper: "The algorithm could easily be integrated as part of peephole
optimization, such as the one presented in [13]."  This example generates
random 6-wire circuits, slides <= 4-wire windows over them, resynthesizes
each window optimally, and reports the compression achieved -- the exact
workflow a reversible-logic toolchain would embed this library in.

Run:  python examples/peephole_optimization.py
"""

from __future__ import annotations

from repro import OptimalSynthesizer
from repro.apps.peephole import PeepholeOptimizer
from repro.rng.mt19937 import MersenneTwister
from repro.rng.sampling import random_circuit


def main() -> None:
    synth = OptimalSynthesizer(k=5, max_list_size=3)
    synth.prepare()
    optimizer = PeepholeOptimizer(synth)

    print("random 6-wire circuits, windows resynthesized optimally:\n")
    print(f"{'seed':>4}  {'before':>6}  {'after':>5}  {'saved':>5}  "
          f"{'windows':>7}  {'replaced':>8}")
    total_before = total_after = 0
    for seed in range(1, 9):
        circuit = random_circuit(6, 40, MersenneTwister(seed))
        report = optimizer.optimize(circuit)
        # The function is preserved bit-exactly -- verified internally,
        # and double-checked here.
        assert report.optimized.truth_table() == circuit.truth_table()
        total_before += report.original.gate_count
        total_after += report.optimized.gate_count
        print(f"{seed:>4}  {report.original.gate_count:>6}  "
              f"{report.optimized.gate_count:>5}  {report.gates_saved:>5}  "
              f"{report.windows_examined:>7}  {report.windows_replaced:>8}")

    saved = total_before - total_after
    print(f"\ntotal: {total_before} -> {total_after} gates "
          f"({saved} saved, {saved / total_before:.0%})")

    print("\nwhy this works: a window of many gates on <= 4 wires computes")
    print("a 4-bit reversible function whose true optimum is usually far")
    print("below the window's length (random functions average ~12 gates).")


if __name__ == "__main__":
    main()
