#!/usr/bin/env python3
"""Towards optimal stabilizer circuits (the paper's closing future work).

"Extending techniques reported in this paper to the synthesis of optimal
stabilizer circuits ... may become a very useful tool in optimizing
error correction circuits."  This example runs the first rung of that
program: complete optimal synthesis over the 1- and 2-qubit Clifford
groups, plus the linear-reversible connection the paper draws (CNOT
circuits are the classical shadow of stabilizer circuits).

Run:  python examples/stabilizer_circuits.py
"""

from __future__ import annotations

import time

from repro.stabilizer import CliffordSynthesizer, CliffordTableau
from repro.synth.linear import LinearSynthesizer


def main() -> None:
    print("=== optimal Clifford circuits over {H, S, S†, CNOT} ===\n")
    for n_qubits in (1, 2):
        start = time.perf_counter()
        synth = CliffordSynthesizer(n_qubits)
        distribution = synth.distribution()
        elapsed = time.perf_counter() - start
        print(f"n = {n_qubits}: |C_{n_qubits}| = {sum(distribution):,} "
              f"Cliffords enumerated in {elapsed:.2f}s")
        print(f"  optimal-size distribution: {distribution}")
        print(f"  hardest element needs {len(distribution) - 1} gates\n")

    print("=== synthesizing specific stabilizer operations ===\n")
    synth2 = CliffordSynthesizer(2)
    bell_prep = CliffordTableau.hadamard(0, 2).then(
        CliffordTableau.cnot(0, 1, 2)
    )
    labels = synth2.synthesize(bell_prep)
    print(f"Bell-basis transform : {' '.join(labels)} "
          f"({synth2.size(bell_prep)} gates, provably minimal)")

    cx01 = CliffordTableau.cnot(0, 1, 2)
    cx10 = CliffordTableau.cnot(1, 0, 2)
    swap = cx01.then(cx10).then(cx01)
    print(f"SWAP                 : {' '.join(synth2.synthesize(swap))} "
          f"({synth2.size(swap)} gates -- 3 CNOTs is optimal)")

    # An 'inverse QFT-like' Clifford: H S H on qubit 0.
    hsh = (
        CliffordTableau.hadamard(0, 2)
        .then(CliffordTableau.phase_gate(0, 2))
        .then(CliffordTableau.hadamard(0, 2))
    )
    print(f"H·S·H                : {' '.join(synth2.synthesize(hsh))} "
          f"({synth2.size(hsh)} gates)")

    print("\n=== the linear-reversible connection (paper §4.3) ===\n")
    print("CNOT subcircuits of stabilizer circuits are linear reversible")
    print("functions; their 4-bit optima are fully tabulated:")
    linear = LinearSynthesizer(4)
    db = linear.database
    print(f"  all {db.total_functions:,} linear functions synthesized; "
          f"hardest need {db.max_size} gates ({db.counts[db.max_size]} of them)")


if __name__ == "__main__":
    main()
