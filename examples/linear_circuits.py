#!/usr/bin/env python3
"""Section 4.3: optimal circuits for all 4-bit linear reversible functions.

"Linear reversible circuits are the most complex part of error correcting
circuits" -- this example reproduces Table 5 exactly (all 322,560
functions, distribution over sizes 0..10), exhibits the paper's example
of a hardest (10-gate) linear function, and synthesizes optimal NOT/CNOT
circuits for a few random stabilizer-style mappings.

Run:  python examples/linear_circuits.py
"""

from __future__ import annotations

import time

from repro import Permutation
from repro.synth.gf2 import AffineMap
from repro.synth.linear import LinearSynthesizer


def paper_example_function() -> Permutation:
    """a, b, c, d -> b⊕1, a⊕c⊕1, d⊕1, a  (one of the 138 hardest)."""
    values = []
    for x in range(16):
        a, b, c, d = x & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1
        values.append((b ^ 1) | ((a ^ c ^ 1) << 1) | ((d ^ 1) << 2) | (a << 3))
    return Permutation.from_values(values)


def main() -> None:
    synth = LinearSynthesizer(4)
    start = time.perf_counter()
    db = synth.database
    elapsed = time.perf_counter() - start
    print(f"synthesized all {db.total_functions:,} linear reversible "
          f"functions in {elapsed:.2f}s (paper: under 2s on a 2008 laptop)\n")

    print("Table 5 -- number of functions per optimal size:")
    print(f"{'Size':>4}  {'Functions':>9}")
    for size in range(db.max_size, -1, -1):
        print(f"{size:>4}  {db.counts[size]:>9}")

    print(f"\nhardest functions (size {db.max_size}): "
          f"{len(synth.hardest_functions())} of them")

    example = paper_example_function()
    print("\nthe paper's example hard function:")
    print(f"  {example}")
    circuit = synth.synthesize(example)
    print(f"  optimal circuit ({circuit.gate_count} gates): {circuit}")
    assert circuit.gate_count == 10

    print("\nrandom GF(2) transforms (the shape of stabilizer-circuit"
          " subproblems):")
    import random

    rng = random.Random(2010)
    for trial in range(3):
        rows = [1 << i for i in range(4)]
        for _ in range(12):
            i, j = rng.randrange(4), rng.randrange(4)
            if i != j:
                rows[i] ^= rows[j]
        affine = AffineMap(rows=tuple(rows), constant=rng.randrange(16))
        perm = Permutation(affine.to_word(), 4)
        circuit = synth.synthesize(perm)
        print(f"  #{trial + 1}: A={affine.rows}, c={affine.constant:04b}  ->  "
              f"{circuit.gate_count} gates: {circuit}")
        assert circuit.implements(perm)


if __name__ == "__main__":
    main()
