#!/usr/bin/env python3
"""Embedding irreversible Boolean functions into optimal reversible circuits.

Reversible benchmarks like rd32 arise by embedding ordinary Boolean
functions: constant input lines, garbage outputs, and don't-care rows.
The choice of completion changes the optimal gate count, so the
embedding layer searches over completions -- with the *natural
reversible extension* (apply the output-XOR rule on every row) seeded
as a candidate, which is how AND's embedding lands exactly on the
Toffoli gate.

Run:  python examples/boolean_embedding.py
"""

from __future__ import annotations

from repro import OptimalSynthesizer
from repro.io.qasm import to_qasm
from repro.synth.embedding import synthesize_boolean_embedding

FUNCTIONS = {
    "AND(a,b)": ([0, 0, 0, 1], 2),
    "OR(a,b)": ([0, 1, 1, 1], 2),
    "XOR(a,b)": ([0, 1, 1, 0], 2),
    "NAND(a,b)": ([1, 1, 1, 0], 2),
    "MAJ(a,b,c)": ([0, 0, 0, 1, 0, 1, 1, 1], 3),
    "XOR3(a,b,c)": ([0, 1, 1, 0, 1, 0, 0, 1], 3),
    "AND3(a,b,c)": ([0, 0, 0, 0, 0, 0, 0, 1], 3),
}


def main() -> None:
    synth = OptimalSynthesizer(k=4, max_list_size=3)
    synth.prepare()

    print("irreversible function -> optimal reversible embedding "
          "(output on wire d)\n")
    print(f"{'function':<12} {'gates':>5}  circuit")
    for name, (truth_table, n_inputs) in FUNCTIONS.items():
        result = synthesize_boolean_embedding(
            truth_table, n_inputs, synthesizer=synth
        )
        flag = "" if result.exhaustive else "  (sampled completions)"
        print(f"{name:<12} {result.size:>5}  {result.circuit}{flag}")

    print("\nexporting the AND embedding to OpenQASM 2.0:\n")
    and_result = synthesize_boolean_embedding([0, 0, 0, 1], 2, synth)
    print(to_qasm(and_result.circuit, comment="AND(a,b) -> d, optimal"))


if __name__ == "__main__":
    main()
