"""Head-to-head comparisons with the baselines (paper Section 2).

* Plain BFS (Prasad et al. [13]): no symmetry reduction -- measures the
  ×~48 state-count reduction and the wall-clock difference per level.
* SAT-based exact synthesis (Große et al. [3]): optimal but slow; the
  paper quotes 21,897 s for hwb4 via SAT vs 1.06e-4 s via lookup.  We
  reproduce the same cliff on a function small enough for our SAT solver.
* MMD heuristic (Miller et al.): fast but suboptimal -- measures the
  average overhead over optimal that the paper's Section 1 motivates.
"""

from __future__ import annotations

import time

import pytest

from repro.engines import SynthesisRequest, create_engine
from repro.rng.sampling import PermutationSampler
from repro.synth.bfs import build_database

from conftest import print_header


def test_reduced_vs_plain_bfs(benchmark):
    print_header("Symmetry reduction vs plain BFS (k = 4)")
    start = time.perf_counter()
    plain = create_engine("plain-bfs", n_wires=4, k=4).result
    plain_time = time.perf_counter() - start
    start = time.perf_counter()
    reduced = build_database(4, 4)
    reduced_time = time.perf_counter() - start
    plain_states = plain.states_stored
    reduced_states = sum(reduced.reduced_counts())
    ratio = plain_states / reduced_states
    print(f"plain BFS  : {plain_states:>9,} states, {plain_time:.2f}s")
    print(f"reduced BFS: {reduced_states:>9,} states, {reduced_time:.2f}s")
    print(f"state reduction factor: {ratio:.1f} (paper: 'almost 48')")
    assert 44 <= ratio <= 48
    benchmark.extra_info["reduction_factor"] = round(ratio, 2)

    result = benchmark.pedantic(build_database, args=(4, 4), rounds=1)
    assert result.reduced_counts()[-1] == 6538


def test_sat_vs_lookup(bench_engine, benchmark):
    """The Große et al. cliff: SAT seconds vs lookup microseconds."""
    from repro.benchmarks_data import get_benchmark

    rd32 = get_benchmark("rd32").permutation()
    print_header("SAT-based exact synthesis vs search-and-lookup (rd32)")

    sat_engine = create_engine("sat", max_gates=4)
    start = time.perf_counter()
    sat_result = sat_engine.synthesize(SynthesisRequest(spec=rd32))
    sat_time = time.perf_counter() - start
    assert sat_result.size == 4

    start = time.perf_counter()
    for _ in range(20):
        size = bench_engine.size_of(rd32.word)
    lookup_time = (time.perf_counter() - start) / 20
    assert size == 4

    speedup = sat_time / lookup_time
    print(f"SAT (iterative deepening to 4): {sat_time:.3f}s")
    print(f"search-and-lookup             : {lookup_time * 1e6:.1f}µs")
    print(f"speedup: {speedup:,.0f}x  (paper reports ~2e8x on hwb4)")
    assert speedup > 100
    benchmark.extra_info["speedup"] = round(speedup)

    benchmark(bench_engine.size_of, rd32.word)


def test_mmd_overhead_vs_optimal(bench_engine, benchmark):
    """Heuristic overhead over optimal on random permutations: the gap
    the paper proposes using optimal 4-bit synthesis to measure."""
    from repro.errors import SizeLimitExceededError

    print_header("MMD heuristic vs optimal on random 4-bit permutations")
    mmd = create_engine("heuristic")
    sampler = PermutationSampler(4, seed=5489)
    optimal_total = heuristic_total = counted = 0
    while counted < 12:
        perm = sampler.sample()
        try:
            optimal = bench_engine.size_of(perm.word)
        except SizeLimitExceededError:
            continue
        heuristic = mmd.synthesize(SynthesisRequest(spec=perm)).size
        optimal_total += optimal
        heuristic_total += heuristic
        counted += 1
    overhead = heuristic_total / optimal_total
    print(f"optimal total  : {optimal_total} gates over {counted} functions")
    print(f"heuristic total: {heuristic_total} gates")
    print(f"overhead factor: {overhead:.2f}x (3-bit heuristics are ~1.0x;")
    print("  the paper argues 4-bit tests leave far more room to improve)")
    assert overhead > 1.1
    benchmark.extra_info["overhead"] = round(overhead, 3)

    sample = sampler.sample()
    benchmark(lambda: mmd.synthesize(SynthesisRequest(spec=sample)).size)


def test_prasad_throughput_claim(benchmark):
    """Paper vs [13]: 'we extend this search into finding 117.8e9 optimal
    circuits ... over 65 times faster'.  Our miniature: circuits per
    second enumerated by the reduced BFS at k = 5."""
    print_header("BFS enumeration throughput (reduced engine, k = 5)")
    start = time.perf_counter()
    db = build_database(4, 5)
    elapsed = time.perf_counter() - start
    functions = sum(db.function_counts())
    rate = functions / elapsed
    print(f"{functions:,} optimal circuits' functions in {elapsed:.2f}s")
    print(f"= {rate:,.0f} functions/second (paper: 11.2M circuits/s on CS1)")
    benchmark.extra_info["functions_per_second"] = round(rate)
    assert functions == 1 + 32 + 784 + 16204 + 294507 + 4807552

    benchmark.pedantic(build_database, args=(4, 3), rounds=1)
