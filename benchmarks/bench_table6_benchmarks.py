"""Table 6: optimal implementations of the benchmark functions.

For every benchmark within the configured reach L we must synthesize a
circuit of exactly the paper's SOC size; for benchmarks beyond L the
exhausted search proves a lower bound, which combined with the verified
paper circuit (an upper bound) still pins the optimal size -- the same
two-sided argument the paper itself uses for hard functions.
"""

from __future__ import annotations

import time

import pytest

from repro.benchmarks_data import BENCHMARKS
from repro.errors import SizeLimitExceededError

from conftest import print_header


def test_table6_benchmark_suite(bench_synthesizer, benchmark):
    engine = bench_synthesizer.search_engine
    reach = engine.max_size
    print_header(f"Table 6: benchmark functions (search reach L = {reach})")
    print(
        f"{'Name':<10} {'SBKC':>5} {'SOC':>4} {'ours':>6} {'gates ok':>8} "
        f"{'seconds':>9}"
    )
    rows = []
    for bench in BENCHMARKS:
        perm = bench.permutation()
        start = time.perf_counter()
        try:
            outcome = engine.search(perm.word)
            elapsed = time.perf_counter() - start
            ours = outcome.size
            ours_text = str(ours)
            circuit_ok = outcome.circuit.implements(perm)
            assert ours == bench.optimal_size, bench.name
        except SizeLimitExceededError as exc:
            elapsed = time.perf_counter() - start
            # Lower bound from exhausted search + upper bound from the
            # verified paper circuit pin the optimum.
            lower = exc.lower_bound
            upper = bench.circuit().gate_count
            assert lower <= bench.optimal_size <= upper
            assert upper == bench.optimal_size
            ours_text = f">={lower}"
            circuit_ok = bench.circuit().implements(perm)
        sbkc = str(bench.best_known_size) if bench.best_known_size else "n/a"
        print(
            f"{bench.name:<10} {sbkc:>5} {bench.optimal_size:>4} "
            f"{ours_text:>6} {str(circuit_ok):>8} {elapsed:>9.3f}"
        )
        rows.append((bench.name, bench.optimal_size, ours_text, elapsed))
        assert circuit_ok
    benchmark.extra_info["rows"] = rows

    # Timing target: the fastest benchmark (rd32), mirroring the paper's
    # per-benchmark runtime column.
    rd32 = next(b for b in BENCHMARKS if b.name == "rd32")
    result = benchmark(engine.size_of, rd32.permutation().word)
    assert result == 4


def test_oc7_two_sided_bound(bench_synthesizer, benchmark):
    """oc7 = 13 gates: the deepest benchmark.  Within default reach we
    verify the upper bound (paper circuit) and the exhausted-search lower
    bound at our L; with REPRO_BENCH_MAX_L=12 the bound tightens to
    'size > 12', which together with the 13-gate circuit proves
    optimality exactly as the paper's argument goes."""
    engine = bench_synthesizer.search_engine
    oc7 = next(b for b in BENCHMARKS if b.name == "oc7")
    perm = oc7.permutation()
    circuit = oc7.circuit()
    assert circuit.implements(perm)
    assert circuit.gate_count == 13

    lower = benchmark.pedantic(
        engine.prove_lower_bound, args=(perm.word,), rounds=1
    )
    print_header("oc7 optimality argument")
    print(f"upper bound (paper circuit verified): 13")
    print(f"lower bound (exhausted search, L={engine.max_size}): {lower}")
    assert lower == engine.max_size + 1
    assert lower <= 13
    if engine.max_size >= 12:
        print("=> optimal size is exactly 13 (two-sided proof)")
