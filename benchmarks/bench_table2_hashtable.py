"""Table 2: parameters of the linear hash tables of canonical reps.

The paper reports, for k = 7/8/9: table size, memory usage, load factor,
and average/maximal chain length.  We regenerate the same statistics for
our own linear-probing tables at k = 4, 5, and the bench default.
"""

from __future__ import annotations

import pytest

from repro.synth.bfs import build_database

from conftest import BENCH_K, print_header


@pytest.mark.parametrize("k", sorted({4, 5, BENCH_K}))
def test_table2_hash_table_parameters(k, benchmark, bench_db):
    if k == bench_db.k:
        db = bench_db  # reuse the session database for the big k
    else:
        db = build_database(4, k)
    stats = db.table.stats()
    print_header(f"Table 2 analogue: canonical-representative table, k={k}")
    for row in stats.format_rows():
        print(row)
    print(f"Entries               {stats.count}")
    print(f"Average Probe Length  {stats.average_probe_length:.2f}")

    benchmark.extra_info.update(
        {
            "k": k,
            "capacity": stats.capacity,
            "entries": stats.count,
            "load_factor": round(stats.load_factor, 3),
            "memory_mb": round(stats.memory_bytes / (1 << 20), 2),
            "avg_chain": round(stats.average_cluster_length, 2),
            "max_chain": stats.maximal_cluster_length,
        }
    )

    # Structural checks mirroring the paper's table: moderate load factor,
    # short average chains, bounded maximal chains.
    assert 0.1 <= stats.load_factor <= 0.9
    assert stats.average_cluster_length < 25
    assert stats.maximal_cluster_length < stats.capacity // 4

    # Timing target: a batch of membership probes.
    keys = db.reps_by_size[min(3, k)]
    result = benchmark(db.table.lookup_batch, keys)
    assert (result != db.table.missing_value).all()
