"""Table 5: optimal circuits for all 322,560 4-bit linear functions.

The paper synthesizes every linear reversible function in under two
seconds on a laptop and reports the exact distribution 0..10.  This is
the one table we reproduce *completely and exactly*.
"""

from __future__ import annotations

import pytest

from repro.analysis.estimates import PAPER_TABLE5_LINEAR
from repro.core.circuit import Circuit
from repro.engines import create_engine
from repro.synth.linear import build_linear_database

from conftest import print_header


@pytest.fixture(scope="module")
def linear_db():
    return build_linear_database(4)


def test_table5_exact_distribution(linear_db, benchmark):
    print_header("Table 5: 4-bit linear reversible functions by size (EXACT)")
    print(f"{'Size':>4}  {'Functions':>9}  {'paper':>9}")
    for size in range(len(linear_db.counts) - 1, -1, -1):
        print(
            f"{size:>4}  {linear_db.counts[size]:>9}  "
            f"{PAPER_TABLE5_LINEAR[size]:>9}"
        )
    assert linear_db.counts == PAPER_TABLE5_LINEAR
    assert linear_db.total_functions == 322560
    print("all 11 rows match the paper exactly")
    benchmark.extra_info["counts"] = linear_db.counts

    # Timing target: the full exhaustive BFS, as the paper timed it
    # ("under two seconds on CS2").
    result = benchmark.pedantic(build_linear_database, args=(4,), rounds=1)
    assert result.total_functions == 322560


def test_table5_paper_example(linear_db, benchmark):
    """Section 4.3's 10-gate example function and printed circuit."""
    values = []
    for x in range(16):
        a, b, c, d = x & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1
        values.append((b ^ 1) | ((a ^ c ^ 1) << 1) | ((d ^ 1) << 2) | (a << 3))
    synth = create_engine("linear", n_wires=4).impl
    synth._db = linear_db
    synth._library = None
    _ = synth.database  # wires the peeling library
    assert synth.size(values) == 10
    paper_circuit = Circuit.parse(
        "CNOT(b,a) CNOT(c,d) CNOT(d,b) NOT(d) CNOT(a,b) CNOT(d,c) "
        "CNOT(b,d) CNOT(d,a) NOT(d) CNOT(c,b)",
        4,
    )
    assert paper_circuit.implements(values)
    ours = benchmark(synth.synthesize, values)
    assert ours.gate_count == 10
    assert ours.implements(values)
    print_header("Section 4.3 example (one of the 138 hardest linear functions)")
    print(f"paper circuit: {paper_circuit}")
    print(f"our circuit  : {ours}")
