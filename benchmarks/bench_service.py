"""Throughput benchmark for the synthesis service daemon.

Drives ``>= 1000`` mixed synthesis queries through one daemon lifetime
over real TCP connections with concurrent clients, then checks the
acceptance properties end to end:

* every response is byte-identical to a direct search call on the
  warm handle's engine;
* batch coalescing is observable in the ``stats`` output
  (mean batch size > 1 under concurrent load);
* the daemon drains gracefully on shutdown.

The workload mixes the three serving paths: ~70% database hits
(size <= k, answered by peeling), ~20% repeats (served from the
canonical-class result cache), ~10% hard queries (A_i-list scans).
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core import equivalence
from repro.core.permutation import Permutation
from repro.engines import create_engine
from repro.service import ServiceClient, ServiceConfig, SynthesisService, TCPDaemon

from conftest import print_header

TOTAL_QUERIES = 1100
CLIENT_THREADS = 8

# Optimal sizes 5 and 6 against the k=4 service database: hard path.
HARD_SPECS = [
    "[8,3,2,9,7,12,5,14,0,11,10,1,15,4,13,6]",
    "[6,7,13,5,0,1,10,3,15,14,4,12,8,9,2,11]",
    "[0,7,6,1,4,5,2,3,11,12,13,10,15,14,9,8]",
    "[13,8,10,2,9,12,14,6,3,15,0,1,7,11,4,5]",
    "[5,4,14,15,8,1,11,2,13,12,6,7,0,9,3,10]",
    "[0,1,2,3,7,14,15,13,8,9,10,11,12,4,5,6]",
]


@pytest.fixture(scope="module")
def service_handle():
    """A self-contained warm handle (k=4, L=6): builds in under a second
    and still exercises both the peel path and the hard scan path."""
    engine = create_engine(
        "optimal", n_wires=4, k=4, max_list_size=2, cache_dir=False
    )
    return engine.handle()


def build_workload(handle, rng: random.Random) -> list[str]:
    """A shuffled mix of easy, repeated, and hard specs."""
    db = handle.database
    easy: list[str] = []
    while len(easy) < 40:
        size = rng.randint(0, db.k)
        reps = db.reps_by_size[size]
        if not len(reps):
            continue
        word = int(reps[rng.randrange(len(reps))])
        members = sorted(equivalence.equivalence_class(word, handle.n_wires))
        member = members[rng.randrange(len(members))]
        easy.append(Permutation.from_word(member, handle.n_wires).spec())
    workload: list[str] = []
    while len(workload) < TOTAL_QUERIES:
        roll = rng.random()
        if roll < 0.10:
            workload.append(rng.choice(HARD_SPECS))
        elif roll < 0.30 and workload:
            workload.append(rng.choice(workload))  # repeat: cache territory
        else:
            workload.append(rng.choice(easy))
    rng.shuffle(workload)
    return workload


def test_service_throughput(benchmark, service_handle):
    rng = random.Random(0xDAC2010)
    workload = build_workload(service_handle, rng)
    distinct = sorted(set(workload))
    # Ground truth from the *same* engine, queried directly.
    expected = {}
    for spec in distinct:
        outcome = service_handle.engine.search(
            Permutation.from_spec(spec).word
        )
        expected[spec] = (outcome.size, str(outcome.circuit))

    service = SynthesisService(
        service_handle,
        config=ServiceConfig(
            n_wires=service_handle.n_wires,
            k=service_handle.k,
            max_list_size=service_handle.max_list_size,
            batch_window=0.002,
            max_batch=256,
        ),
    )
    daemon = TCPDaemon(service, port=0).start()
    host, port = daemon.address
    shards = [workload[i::CLIENT_THREADS] for i in range(CLIENT_THREADS)]
    mismatches: list[str] = []
    errors: list[BaseException] = []
    barrier = threading.Barrier(CLIENT_THREADS + 1)

    def run_client(shard: list[str]) -> None:
        try:
            with ServiceClient(host, port, timeout=120.0) as client:
                barrier.wait()
                for spec in shard:
                    result = client.synth(spec)
                    size, circuit = expected[spec]
                    if result["size"] != size or result["circuit"] != circuit:
                        mismatches.append(spec)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass

    def fire_all() -> float:
        threads = [
            threading.Thread(target=run_client, args=(shard,))
            for shard in shards
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        return time.perf_counter() - started

    try:
        elapsed = benchmark.pedantic(fire_all, rounds=1, iterations=1)
        assert not errors, errors[:3]
        assert not mismatches, mismatches[:5]

        with ServiceClient(host, port) as client:
            stats = client.stats()
        served = stats["metrics"]["requests_synth"]
        mean_batch = stats["mean_batch_size"]
        hit_rate = stats["cache"]["hit_rate"]

        print_header("Synthesis service throughput")
        print(f"queries served        {served}")
        print(f"client threads        {CLIENT_THREADS}")
        print(f"wall time             {elapsed:.3f} s")
        print(f"throughput            {served / elapsed:,.0f} queries/s")
        print(f"mean batch size       {mean_batch:.2f}")
        print(f"cache hit rate        {hit_rate:.1%}")
        print(f"hard queries (scan)   {stats['metrics'].get('hard_queries', 0)}")

        benchmark.extra_info.update(
            {
                "queries": served,
                "throughput_qps": round(served / elapsed, 1),
                "mean_batch_size": round(mean_batch, 2),
                "cache_hit_rate": round(hit_rate, 3),
            }
        )

        # Acceptance: >= 1000 queries in one lifetime, coalescing visible.
        assert served >= 1000
        assert mean_batch > 1.0, (
            f"expected coalescing under {CLIENT_THREADS} concurrent "
            f"clients, got mean batch size {mean_batch}"
        )
    finally:
        # Graceful shutdown with draining, part of the measured contract.
        try:
            with ServiceClient(host, port) as client:
                client.shutdown()
            deadline = time.monotonic() + 30
            while not service.stopped and time.monotonic() < deadline:
                time.sleep(0.05)
            assert service.stopped, "daemon failed to drain and stop"
        finally:
            daemon.stop()
