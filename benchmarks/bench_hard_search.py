"""Section 4.5: searching for hard permutations.

The paper extended its 13/14-gate optimal circuits by boundary gates for
12 hours without finding anything above 14 gates.  Our scaled version:

* n = 3 -- the question closes exactly: full enumeration gives L(3) = 8
  with 577 hardest functions, and the extension search re-discovers them.
* n = 4 -- extend the deepest stored representatives and report the
  hardest (possibly censored) sizes found within a candidate budget.
"""

from __future__ import annotations

import pytest

from repro.analysis.hard import extension_search, full_enumeration

from conftest import print_header


def test_hard_search_exact_n3(engine3_full, benchmark):
    print_header("Hard permutations, n = 3 (exact)")
    enumeration = full_enumeration(3)
    print(f"L(3) = {enumeration.max_size}; "
          f"{enumeration.hardest_count} hardest functions")
    assert enumeration.max_size == 8
    assert enumeration.hardest_count == 577

    seeds = engine3_full.db.reps_by_size[7][:30].tolist()
    result = benchmark.pedantic(
        extension_search, args=(engine3_full, seeds, 3), rounds=1
    )
    print(
        f"extension search over {result.candidates_examined} candidates "
        f"found size {result.hardest_size}"
    )
    assert result.hardest_size == 8  # rediscovers the maximum
    assert not result.exceeded_bound


def test_hard_search_n4(bench_engine, bench_db, benchmark):
    print_header(f"Hard permutations, n = 4 (seeds of size {bench_db.k})")
    seeds = bench_db.reps_by_size[bench_db.k][:4].tolist()
    result = benchmark.pedantic(
        extension_search,
        args=(bench_engine, seeds, 4),
        kwargs={"max_candidates": 120},
        rounds=1,
    )
    marker = ">=" if result.exceeded_bound else "=="
    print(
        f"hardest found over {result.candidates_examined} candidates: "
        f"size {marker} {result.hardest_size}"
    )
    # Extending a size-k function by one gate can reach at most k + 1.
    assert result.hardest_size <= bench_db.k + 1
    assert result.hardest_size >= bench_db.k - 1
    benchmark.extra_info["hardest"] = result.hardest_size
