"""Ablation: optimal-size distributions across gate libraries.

Section 5 of the paper notes the search adapts to "a different family of
gates"; Yang et al. (reference [17]) used NOT/CNOT/Peres.  This bench
runs the generalized BFS over four libraries and regenerates the exact
full-group distribution for n = 3 under each, plus reduced counts for
n = 4 at a fixed depth -- quantifying how much each extra gate family
compresses optimal circuits.
"""

from __future__ import annotations

import time

import pytest

from repro.synth.libraries import build_size_table, full_distribution, ncp, nct, ncts, nctsf

from conftest import print_header


def test_library_ablation_n3_exact(benchmark):
    print_header("Gate-library ablation, n = 3 (exact, full group)")
    print(f"{'library':<7} {'gates':>5} {'L(3)':>5}  distribution")
    results = {}
    for maker in (nct, ncts, nctsf, ncp):
        library = maker(3)
        start = time.perf_counter()
        dist = full_distribution(library)
        elapsed = time.perf_counter() - start
        results[library.name] = dist
        print(
            f"{library.name:<7} {len(library):>5} {len(dist) - 1:>5}  "
            f"{dist}  ({elapsed:.2f}s)"
        )
    # Monotone compression: adding gates never lengthens circuits.
    assert len(results["NCT"]) >= len(results["NCTS"]) >= len(results["NCTSF"])
    assert len(results["NCP"]) <= len(results["NCT"])
    # NCT reproduces the classic Shende et al. distribution.
    assert results["NCT"] == [1, 12, 102, 625, 2780, 8921, 17049, 10253, 577]
    benchmark.extra_info["distributions"] = results

    benchmark.pedantic(full_distribution, args=(nct(3),), rounds=1)


def test_library_ablation_n4_reduced(benchmark):
    print_header("Gate-library ablation, n = 4 (reduced classes to depth 4)")
    print(f"{'library':<7} {'gates':>5}  classes per size 0..4")
    rows = {}
    for maker in (nct, ncts, nctsf, ncp):
        library = maker(4)
        table = build_size_table(library, 4)
        rows[library.name] = table.reduced_counts
        print(f"{library.name:<7} {len(library):>5}  {table.reduced_counts}")
    # Larger libraries cover more classes per level.
    for size in range(1, 5):
        assert rows["NCTSF"][size] >= rows["NCT"][size]
    assert rows["NCT"] == [1, 4, 33, 425, 6538]
    benchmark.extra_info["rows"] = rows

    benchmark.pedantic(build_size_table, args=(nct(4), 3), rounds=1)
