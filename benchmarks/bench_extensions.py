"""Ablations of the paper's Section 5 extensions.

* Cost-aware optimal search (NCV quantum cost): shows functions where the
  minimum-cost circuit differs from the minimum-gate-count circuit.
* Depth-optimal search over parallel layers: shows depth savings over
  gate-count-optimal circuits.
* Symmetry ablation: canonicalization with and without the inversion
  symmetry, measuring each symmetry's contribution to the ×48 reduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.packed_np import canonical_conjugation_only_np, canonical_np
from repro.engines import create_engine
from repro.synth.cost import CostOptimalSynthesizer, build_cost_database  # repro: allow[engine-layering] ablation benchmark times the concrete synthesizer and its database build directly; the engine adapter would hide the build phase being measured
from repro.synth.depth import all_layers, build_depth_database

from conftest import print_header


def test_cost_optimal_ablation(bench_engine, benchmark):
    from repro.benchmarks_data import get_benchmark

    print_header("Ablation: NCV-cost-optimal vs gate-count-optimal")
    cost_db = build_cost_database(4, 12)
    synth = CostOptimalSynthesizer(4, max_cost=12)
    synth._db = cost_db

    rd32 = get_benchmark("rd32").permutation()
    gate_optimal = bench_engine.minimal_circuit(rd32.word)
    cost_optimal = synth.synthesize(rd32)
    print(f"{'':14}{'gates':>6}{'NCV cost':>9}")
    print(
        f"gate-optimal  {gate_optimal.gate_count:>6}{gate_optimal.cost():>9}"
    )
    print(
        f"cost-optimal  {cost_optimal.gate_count:>6}{cost_optimal.cost():>9}"
    )
    assert gate_optimal.gate_count < cost_optimal.gate_count
    assert cost_optimal.cost() < gate_optimal.cost()
    print("=> the two objectives genuinely diverge (rd32: 4g/12c vs 6g/9c)")

    counts = cost_db.counts_by_cost()
    print(f"classes by optimal NCV cost: {dict(list(counts.items())[:8])} ...")
    benchmark.extra_info["rd32"] = {
        "gate_optimal": (gate_optimal.gate_count, gate_optimal.cost()),
        "cost_optimal": (cost_optimal.gate_count, cost_optimal.cost()),
    }

    benchmark.pedantic(build_cost_database, args=(4, 8), rounds=1)


def test_depth_optimal_ablation(bench_engine, bench_db, benchmark):
    print_header("Ablation: depth-optimal vs gate-count-optimal")
    synth = create_engine("depth", n_wires=4, max_depth=4).prepare().impl

    layers = all_layers(4)
    print(f"parallel layers on 4 wires: {len(layers)} (32 single-gate)")
    assert len(layers) == 103

    saved_total = 0
    examined = 0
    from repro.core.permutation import Permutation
    from repro.errors import SynthesisError

    reps = bench_db.reps_by_size[4][:: len(bench_db.reps_by_size[4]) // 12][:12]
    for word in reps.tolist():
        perm = Permutation(int(word), 4)
        gate_optimal = bench_engine.minimal_circuit(perm.word)
        try:
            depth = synth.depth(perm)
        except SynthesisError:
            continue
        examined += 1
        saved_total += gate_optimal.depth() - depth
        assert depth <= gate_optimal.depth()
    print(
        f"over {examined} size-4 functions, depth-optimal synthesis saved "
        f"{saved_total} layers total vs gate-count-optimal circuits"
    )
    assert examined > 0
    benchmark.extra_info["layers_saved"] = saved_total

    benchmark.pedantic(build_depth_database, args=(4, 3), rounds=1)


def test_symmetry_ablation(bench_db, benchmark):
    """How much does each symmetry contribute?  Conjugation alone gives
    ~24x; adding inversion approaches the full ~48x (paper §3.2)."""
    print_header("Ablation: conjugation-only vs conjugation+inversion")
    words = bench_db.reps_by_size[4]
    # Expand back to all functions of size 4 and re-reduce both ways.
    from repro.core.packed_np import expand_classes_np

    functions = expand_classes_np(words, 4)
    conj_only = np.unique(canonical_conjugation_only_np(functions, 4))
    both = np.unique(canonical_np(functions, 4))
    factor_conj = functions.shape[0] / conj_only.shape[0]
    factor_both = functions.shape[0] / both.shape[0]
    print(f"functions of size 4      : {functions.shape[0]:,}")
    print(f"conjugation-only classes : {conj_only.shape[0]:,} (x{factor_conj:.1f})")
    print(f"with inversion           : {both.shape[0]:,} (x{factor_both:.1f})")
    assert 20 <= factor_conj <= 24
    assert 40 <= factor_both <= 48
    assert both.shape[0] == words.shape[0]
    benchmark.extra_info["conjugation_factor"] = round(factor_conj, 2)
    benchmark.extra_info["full_factor"] = round(factor_both, 2)

    benchmark(canonical_np, functions[:100000], 4)
