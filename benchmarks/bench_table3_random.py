"""Table 3: size distribution of random 4-bit reversible functions.

The paper synthesized 10,000,000 uniform random permutations (29 hours,
43 GB, 16-core server) and found the distribution peaking at size 12
with weighted average 11.94.  At our scale we (a) synthesize a smaller
sample with the same pipeline, right-censored at L, and (b) run the
*exact* control experiment on n = 3, where the whole group is covered.
"""

from __future__ import annotations

import pytest

from repro.analysis.distribution import sample_distribution
from repro.analysis.estimates import PAPER_TABLE3_RANDOM

from conftest import BENCH_SAMPLES, print_header


def test_table3_random_sample(bench_engine, benchmark):
    print_header(
        f"Table 3 analogue: {BENCH_SAMPLES} random 4-bit permutations "
        f"(L = {bench_engine.max_size}; paper: 10,000,000 at L = 18)"
    )
    dist = sample_distribution(bench_engine, BENCH_SAMPLES, seed=5489)
    print(dist.format_table())
    paper_total = sum(PAPER_TABLE3_RANDOM.values())
    print("\npaper reference fractions (10M sample):")
    for size in sorted(PAPER_TABLE3_RANDOM, reverse=True):
        print(f"{size:<5d} {PAPER_TABLE3_RANDOM[size] / paper_total:.4f}")
    if dist.observed:
        print(f"\nobserved average: {dist.weighted_average():.2f}")
    low, high = dist.weighted_average_bounds()
    print(f"average bounds incl. censored: [{low:.2f}, {high:.2f}]")
    print("paper weighted average: 11.94")

    benchmark.extra_info["distribution"] = dist.counts
    benchmark.extra_info["censored"] = dist.censored
    benchmark.extra_info["bound"] = dist.bound

    # Shape checks against the paper's distribution.
    paper_fraction_le = {  # P(size <= s) from the 10M sample
        s: sum(v for k, v in PAPER_TABLE3_RANDOM.items() if k <= s) / paper_total
        for s in range(5, 15)
    }
    observed_le_bound = dist.observed / dist.total
    expected = paper_fraction_le.get(dist.bound, 1.0)
    # Loose binomial sanity interval for small samples.
    assert abs(observed_le_bound - expected) < 0.25
    # The average must bracket the paper's 11.94.
    assert low <= 11.94 <= high + 1.0

    # Timing target: one end-to-end random synthesis.
    from repro.rng.sampling import PermutationSampler

    sampler = PermutationSampler(4, seed=7)
    words = [sampler.sample_word() for _ in range(50)]
    counter = iter(range(10**9))

    def one_query():
        from repro.errors import SizeLimitExceededError

        word = words[next(counter) % len(words)]
        try:
            return bench_engine.size_of(word)
        except SizeLimitExceededError:
            return None

    benchmark.pedantic(one_query, rounds=3, iterations=1)


def test_table3_exact_control_n3(engine3_full, benchmark):
    """The same experiment where ground truth is enumerable: sampling
    reproduces the exact n = 3 distribution."""
    from repro.analysis.estimates import exact_distribution_3bit

    print_header("Table 3 control: n = 3, sample vs exact enumeration")
    exact = exact_distribution_3bit()
    total = sum(exact)
    dist = sample_distribution(engine3_full, 600, seed=5489, n_wires=3)
    print(f"{'Size':>4}  {'sample frac':>11}  {'exact frac':>10}")
    for size in range(len(exact)):
        sample_frac = (
            dist.counts[size] / dist.total if size < len(dist.counts) else 0.0
        )
        print(f"{size:>4}  {sample_frac:>11.4f}  {exact[size] / total:>10.4f}")
    assert dist.censored == 0
    # Sample and exact averages agree to ~0.2 gates with 600 draws.
    exact_avg = sum(s * c for s, c in enumerate(exact)) / total
    assert abs(dist.weighted_average() - exact_avg) < 0.2

    benchmark(engine3_full.size_of, 0x01234567)
