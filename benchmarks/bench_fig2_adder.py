"""Figure 2: suboptimal vs optimal 1-bit full adder.

The paper's motivating example.  We verify both circuits implement the
adder, prove 4 gates optimal by exhaustive search, and demonstrate the
peephole application recovering the optimal adder from the suboptimal
circuit automatically.
"""

from __future__ import annotations

import pytest

from repro.apps.adder import (
    full_adder_permutation,
    optimal_adder_circuit,
    suboptimal_adder_circuit,
)
from repro.apps.peephole import PeepholeOptimizer

from conftest import print_header


def test_fig2_adder_optimality(bench_synthesizer, benchmark):
    spec = full_adder_permutation()
    suboptimal = suboptimal_adder_circuit()
    optimal = optimal_adder_circuit()
    print_header("Figure 2: 1-bit full adder")
    print(f"suboptimal (Fig 2a-style): {suboptimal}  [{suboptimal.gate_count} gates]")
    print(f"optimal    (Fig 2b)      : {optimal}  [{optimal.gate_count} gates]")
    assert suboptimal.implements(spec)
    assert optimal.implements(spec)

    outcome = bench_synthesizer.search(spec)
    assert outcome.size == 4
    print(f"search proves the optimum is {outcome.size} gates")

    result = benchmark(bench_synthesizer.size, spec)
    assert result == 4


def test_fig2_peephole_recovers_optimal(bench_synthesizer, benchmark):
    optimizer = PeepholeOptimizer(bench_synthesizer)
    report = benchmark.pedantic(
        optimizer.optimize, args=(suboptimal_adder_circuit(),), rounds=1
    )
    print_header("Peephole optimization of the suboptimal adder")
    print(f"before: {report.original}   [{report.original.gate_count} gates]")
    print(f"after : {report.optimized}   [{report.optimized.gate_count} gates]")
    assert report.optimized.gate_count == 4
    assert report.optimized.implements(full_adder_permutation())
