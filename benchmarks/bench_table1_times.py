"""Table 1: average time to compute minimal circuits, by circuit size.

The paper reports per-size synthesis times for k = 8 and k = 9 (from
5e-7 s at size 0 to seconds at size 14): negligible below k, growing
roughly exponentially above it as the lists A_1, A_2, ... are scanned.
We regenerate the same series at our k.  Exact-size query functions are
obtained from prefixes of a minimal circuit of a random permutation --
every prefix of a minimal circuit is itself minimal for the function it
computes.
"""

from __future__ import annotations

import time

import pytest

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation

from conftest import print_header


@pytest.fixture(scope="module")
def size_specimens(bench_engine):
    """One function of each exact size 0..L, from minimal-circuit prefixes."""
    from repro.rng.mt19937 import MersenneTwister
    from repro.rng.sampling import random_circuit

    rng = MersenneTwister(5489)
    specimens: dict[int, int] = {}
    for _ in range(12):
        # A random L-gate circuit has size <= L (almost always close to
        # it), so the search always succeeds; prefixes of its minimal
        # circuit supply one function of every exact size below.
        seed_word = random_circuit(4, bench_engine.max_size, rng).to_word()
        outcome = bench_engine.search(seed_word)
        circuit = outcome.circuit
        for prefix_len in range(circuit.gate_count + 1):
            prefix = Circuit.from_gates(circuit.gates[:prefix_len], 4)
            specimens.setdefault(prefix_len, prefix.to_word())
        if len(specimens) >= bench_engine.max_size + 1:
            break
    return specimens


def test_table1_time_by_size(bench_engine, size_specimens, benchmark):
    print_header(
        f"Table 1: average minimal-circuit time by size (k={bench_engine.db.k})"
    )
    rows = []
    print(f"{'Size':>4}  {'avg seconds':>12}  {'paper (k=9)':>12}")
    paper_k9 = {
        0: 5.15e-7, 1: 8.8e-7, 2: 1.27e-6, 3: 1.68e-6, 4: 2.14e-6,
        5: 2.52e-6, 6: 3.96e-6, 7: 4.85e-6, 8: 4.45e-6, 9: 5.65e-6,
        10: 1.79e-5, 11: 2.38e-4, 12: 3.74e-3, 13: 3.18e-2, 14: 3.26e-1,
    }
    for size in sorted(size_specimens):
        word = size_specimens[size]
        repeats = 3 if size > bench_engine.db.k else 25
        start = time.perf_counter()
        for _ in range(repeats):
            result = bench_engine.size_of(word)
        elapsed = (time.perf_counter() - start) / repeats
        assert result == size
        reference = paper_k9.get(size)
        ref_text = f"{reference:.2e}" if reference else "-"
        print(f"{size:>4}  {elapsed:>12.6f}  {ref_text:>12}")
        rows.append((size, elapsed))
    benchmark.extra_info["rows"] = rows

    # Shape assertions: flat below k, growing above it.
    below_k = [t for s, t in rows if s <= bench_engine.db.k]
    above_k = [t for s, t in rows if s > bench_engine.db.k + 1]
    if above_k:
        assert max(above_k) > 5 * max(below_k)
        # Monotone-ish growth above k: last point is the slowest region.
        assert above_k[-1] >= above_k[0]

    # Give pytest-benchmark a representative timing target: the fast path.
    fast_word = size_specimens[min(bench_engine.db.k, max(size_specimens))]
    benchmark(bench_engine.size_of, fast_word)


def test_fast_path_microseconds(bench_engine, benchmark):
    """The paper's headline: below-k queries are microsecond-scale even
    in Python (hash lookup + canonicalization)."""
    word = Permutation.from_spec(
        "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"
    ).word
    size = benchmark(bench_engine.size_of, word)
    assert size == 4
    assert benchmark.stats["mean"] < 1e-3  # sub-millisecond in Python
