"""Paper §5 future work: towards optimal stabilizer circuits.

The paper closes with "extending techniques reported in this paper to
the synthesis of optimal stabilizer circuits" as a goal.  This bench
runs the first rung of that ladder: complete optimal-gate-count tables
for the 1- and 2-qubit Clifford groups over {H, S, S†, CNOT}, produced
by the same BFS-from-identity strategy as Algorithm 2.
"""

from __future__ import annotations

import time

import pytest

from repro.engines import create_engine
from repro.stabilizer import CliffordTableau, clifford_group_size

from conftest import print_header


def test_clifford_distributions(benchmark):
    print_header("Optimal Clifford circuits over {H, S, S†, CNOT}")
    start = time.perf_counter()
    c1 = create_engine("clifford", n_qubits=1).impl
    d1 = c1.distribution()
    t1 = time.perf_counter() - start
    start = time.perf_counter()
    c2 = create_engine("clifford", n_qubits=2).impl
    d2 = c2.distribution()
    t2 = time.perf_counter() - start
    print(f"|C1| = {sum(d1):>6,} enumerated in {t1:.2f}s: {d1}")
    print(f"|C2| = {sum(d2):>6,} enumerated in {t2:.2f}s: {d2}")
    print(f"max gates: C1 = {len(d1) - 1}, C2 = {len(d2) - 1}")
    assert sum(d1) == clifford_group_size(1) == 24
    assert sum(d2) == clifford_group_size(2) == 11520
    benchmark.extra_info["c1"] = d1
    benchmark.extra_info["c2"] = d2

    # Timing target: one synthesis query against the full C2 table.
    target = (
        CliffordTableau.hadamard(0, 2)
        .then(CliffordTableau.cnot(0, 1, 2))
        .then(CliffordTableau.phase_gate(1, 2))
    )
    labels = benchmark(c2.synthesize, target)
    assert len(labels) == c2.size(target)


def test_clifford_hardest_elements(benchmark):
    """Exhibit a maximally hard 2-qubit Clifford (10 gates)."""
    c2 = create_engine("clifford", n_qubits=2).impl
    distribution = c2.distribution()
    hardest_size = len(distribution) - 1
    hardest_keys = [
        key for key, size in c2.sizes.items() if size == hardest_size
    ]
    print_header("Hardest 2-qubit Cliffords")
    print(
        f"{distribution[hardest_size]} elements need {hardest_size} gates"
    )
    example = c2._elements[hardest_keys[0]]
    labels = c2.synthesize(example)
    print(f"example: {' '.join(labels)}")
    print(f"tableau: {example.labels()}")
    assert len(labels) == hardest_size

    benchmark(c2.size, example)
