"""Paper §5: towards optimal 5-bit circuits.

The paper estimates that all optimal 5-bit circuits of up to six gates
are computable on its 64 GB server.  This bench runs the width-generic
engine to the depth a single core affords (k = 3 by default; set
``REPRO_WIDE_K=4`` for the ~1 GB level-4 run) and reports the exact
5-bit function counts per optimal size -- numbers not in the paper, but
produced by its proposed method.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engines import SynthesisRequest, create_engine

from conftest import print_header

WIDE_K = int(os.environ.get("REPRO_WIDE_K", "3"))


def test_wide_five_bit_counts(benchmark):
    print_header(f"5-bit optimal function counts (plain BFS, k = {WIDE_K})")
    engine = create_engine(
        "wide", n_wires=5, k=WIDE_K, max_frontier=40_000_000
    )
    start = time.perf_counter()
    result = engine.result
    elapsed = time.perf_counter() - start
    print(f"{'Size':>4}  {'Functions':>12}")
    for size, count in enumerate(result.counts):
        print(f"{size:>4}  {count:>12,}")
    print(f"states stored: {result.states_stored:,} in {elapsed:.1f}s")
    assert result.counts[0] == 1
    assert result.counts[1] == 80
    benchmark.extra_info["counts"] = result.counts

    # Timing target: synthesize the 5-bit ripple-carry prefix of depth k.
    from repro.core.gates import Gate
    from repro.core.circuit import Circuit

    ripple = Circuit(
        gates=(
            Gate(controls=(0, 1, 2, 3), target=4),
            Gate(controls=(0, 1, 2), target=3),
            Gate(controls=(0, 1), target=2),
        )[: WIDE_K],
        n_wires=5,
    )
    table = ripple.truth_table()
    synthesized = benchmark(
        lambda: engine.synthesize(SynthesisRequest(spec=table))
    )
    assert synthesized.size <= WIDE_K
