"""Micro-benchmarks of the paper's core operations (Section 3.3).

The paper counts machine instructions: composition 94, inversion 59, one
conjugation 14, a full canonical representative ~750.  Here we measure
the Python/numpy equivalents -- both per-call scalar cost and per-element
vectorized cost (the ratio is the reason the heavy searches are
vectorized).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import equivalence, packed
from repro.core.packed_np import canonical_np, compose_np, inverse_np
from repro.hashing.wang import hash64shift, hash64shift_np
from repro.rng.sampling import PermutationSampler

N_VECTOR = 1 << 16


@pytest.fixture(scope="module")
def words():
    sampler = PermutationSampler(4, seed=1)
    return sampler.sample_words(N_VECTOR)


@pytest.fixture(scope="module")
def pair():
    sampler = PermutationSampler(4, seed=2)
    return sampler.sample_word(), sampler.sample_word()


def test_compose_scalar(benchmark, pair):
    p, q = pair
    result = benchmark(packed.compose, p, q, 4)
    assert packed.is_valid(result, 4)


def test_compose_paper_port(benchmark, pair):
    p, q = pair
    result = benchmark(packed.compose4_paper, p, q)
    assert result == packed.compose(p, q, 4)


def test_inverse_scalar(benchmark, pair):
    p, _ = pair
    result = benchmark(packed.inverse, p, 4)
    assert packed.compose(p, result, 4) == packed.identity(4)


def test_conjugate_scalar(benchmark, pair):
    p, _ = pair
    benchmark(packed.conjugate_adjacent, p, 0, 4)


def test_canonical_scalar(benchmark, pair):
    p, _ = pair
    result = benchmark(equivalence.canonical, p, 4)
    assert result <= p


def test_hash_scalar(benchmark, pair):
    p, _ = pair
    benchmark(hash64shift, p)


def test_compose_vectorized(benchmark, words, pair):
    _, q = pair
    result = benchmark(compose_np, words, np.uint64(q), 4)
    benchmark.extra_info["per_element_ns"] = (
        benchmark.stats["mean"] / N_VECTOR * 1e9
    )
    assert result.shape == words.shape


def test_inverse_vectorized(benchmark, words):
    result = benchmark(inverse_np, words, 4)
    benchmark.extra_info["per_element_ns"] = (
        benchmark.stats["mean"] / N_VECTOR * 1e9
    )
    assert result.shape == words.shape


def test_canonical_vectorized(benchmark, words):
    result = benchmark(canonical_np, words, 4)
    benchmark.extra_info["per_element_ns"] = (
        benchmark.stats["mean"] / N_VECTOR * 1e9
    )
    assert (result <= words).all()


def test_hash_vectorized(benchmark, words):
    result = benchmark(hash64shift_np, words)
    benchmark.extra_info["per_element_ns"] = (
        benchmark.stats["mean"] / N_VECTOR * 1e9
    )
    assert result.shape == words.shape


def test_table_lookup_batch(benchmark, words):
    from repro.hashing.table import LinearProbingTable

    table = LinearProbingTable(capacity_bits=18)
    table.insert_batch(words[: N_VECTOR // 2], 1)
    result = benchmark(table.lookup_batch, words)
    hits = (result != table.missing_value).sum()
    assert hits >= N_VECTOR // 2 - 1
