"""Shared fixtures for the benchmark harness.

Scale knobs (environment variables, shared with ``repro bench`` via
:mod:`repro.perf.env`):

* ``REPRO_BENCH_K``      -- BFS database depth (default 6; the paper used 9).
* ``REPRO_BENCH_MAX_L``  -- search reach L = k + m (default 11; set 12 to
  cover every Table 6 benchmark except oc7, at the cost of materializing
  the 70.7M-entry list A_6, ~0.6 GB and ~a minute of query time).
* ``REPRO_SAMPLES``      -- random permutations for the Table 3 experiment
  (default 60; the paper used 10,000,000 on a 16-core server).
* ``REPRO_BENCH_CACHE``  -- database cache directory (default:
  ``.bench-cache`` at the repo root), so CI can restore a persistent
  cache volume and every bench consumer skips the BFS build.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engines import create_engine
from repro.perf.env import BenchScale, bench_cache_dir
from repro.synth.search import MeetInTheMiddleSearch

_SCALE = BenchScale.from_env()
BENCH_K = _SCALE.k
BENCH_MAX_L = _SCALE.max_l
BENCH_SAMPLES = _SCALE.samples

CACHE_DIR = bench_cache_dir(
    default=Path(__file__).resolve().parent.parent / ".bench-cache"
)


@pytest.fixture(scope="session")
def bench_synthesizer():
    """The big synthesizer shared by all table benchmarks."""
    engine = create_engine(
        "optimal",
        n_wires=4,
        k=BENCH_K,
        max_list_size=_SCALE.max_list_size,
        cache_dir=CACHE_DIR,
        verbose=True,
    )
    return engine.prepare().impl


@pytest.fixture(scope="session")
def bench_engine(bench_synthesizer):
    return bench_synthesizer.search_engine


@pytest.fixture(scope="session")
def bench_db(bench_synthesizer):
    return bench_synthesizer.database


@pytest.fixture(scope="session")
def engine3_full():
    """Exhaustive n = 3 engine (covers all 40,320 functions)."""
    from repro.synth.bfs import build_database

    db = build_database(3, 8)
    lists = MeetInTheMiddleSearch.build_lists(db, 2)
    return MeetInTheMiddleSearch(db, lists)


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")
