"""Table 4: number of 4-bit permutations requiring 0..k gates.

The paper lists exact function and equivalence-class counts for sizes
0..9 and sampling-based estimates for 10..17.  We regenerate the exact
rows up to our k -- they must match the paper digit for digit -- and
reproduce the estimation method for the tail from the Table 3 sample.
"""

from __future__ import annotations

import pytest

from repro.analysis.distribution import sample_distribution
from repro.analysis.estimates import (
    PAPER_TABLE4_FUNCTIONS,
    PAPER_TABLE4_REDUCED,
    estimate_total_counts,
)

from conftest import print_header


def test_table4_exact_rows(bench_db, benchmark):
    print_header(f"Table 4 (exact rows 0..{bench_db.k})")
    reduced = bench_db.reduced_counts()
    functions = bench_db.function_counts()
    print(f"{'Size':>4}  {'Functions':>15}  {'Reduced':>12}  match")
    for size in range(bench_db.k, -1, -1):
        match = (
            functions[size] == PAPER_TABLE4_FUNCTIONS[size]
            and reduced[size] == PAPER_TABLE4_REDUCED[size]
        )
        print(
            f"{size:>4}  {functions[size]:>15,}  {reduced[size]:>12,}  "
            f"{'EXACT' if match else 'MISMATCH'}"
        )
        assert match, f"size {size} diverges from the paper"
    benchmark.extra_info["functions"] = functions
    benchmark.extra_info["reduced"] = reduced

    # Reduction factor approaches 48 as sizes grow (paper §3.2).
    ratio = functions[bench_db.k] / reduced[bench_db.k]
    print(f"reduction factor at size {bench_db.k}: {ratio:.2f} (limit 48)")
    assert 44 < ratio < 48

    # Timing target: the class-size accounting pass for one level.
    benchmark(
        lambda: __import__("repro.core.packed_np", fromlist=["class_sizes_np"])
        .class_sizes_np(bench_db.reps_by_size[4], 4)
        .sum()
    )


def test_table4_tail_estimates(bench_engine, benchmark):
    """The '~' rows: scale sampled frequencies by 16! (paper §4.2)."""
    print_header("Table 4 tail estimates from the random sample")
    dist = sample_distribution(bench_engine, 40, seed=97)
    estimates = estimate_total_counts(dist, 4)
    print(f"{'Size':>4}  {'estimated':>12}  {'paper value/estimate':>22}")
    paper_reference = dict(PAPER_TABLE4_FUNCTIONS)
    paper_reference.update({10: 8.2e11, 11: 4.29e12, 12: 1.07e13, 13: 4.96e12})
    for size, estimate in estimates:
        reference = paper_reference.get(size)
        ref_text = f"{reference:,.0f}" if reference else "-"
        print(f"{size:>4}  {estimate:>12.3e}  {ref_text:>22}")
        if reference and dist.counts[size] >= 5:
            # Order-of-magnitude agreement for well-sampled sizes.
            assert 0.1 < estimate / reference < 10
    benchmark.extra_info["estimates"] = [(s, float(e)) for s, e in estimates]

    benchmark(dist.fractions)
