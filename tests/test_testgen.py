"""Tests for the representative test-suite generator (paper §5 goal)."""

import pytest

from repro.analysis.testgen import TestCase, TestSuite, generate_suite
from repro.core.permutation import Permutation


@pytest.fixture(scope="module")
def suite(request):
    db = request.getfixturevalue("db4_k4")
    return generate_suite(db, per_size=6, seed=1)


class TestGeneration:
    def test_strata_cover_sizes(self, db4_k4):
        suite = generate_suite(db4_k4, per_size=6, seed=1)
        by_size = suite.by_size()
        assert set(by_size) == {1, 2, 3, 4}
        # Strata cap at the number of available classes (4 at size 1).
        assert len(by_size[1]) == 4
        for size in (2, 3, 4):
            assert len(by_size[size]) == 6

    def test_optimal_sizes_are_correct(self, db4_k4, engine4_l7):
        suite = generate_suite(db4_k4, per_size=4, seed=2)
        for case in suite.cases:
            assert engine4_l7.size_of(case.permutation.word) == case.optimal_size

    def test_deterministic(self, db4_k4):
        a = generate_suite(db4_k4, per_size=3, seed=7)
        b = generate_suite(db4_k4, per_size=3, seed=7)
        assert [c.spec_line() for c in a.cases] == [
            c.spec_line() for c in b.cases
        ]

    def test_randomized_members_not_all_canonical(self, db4_k4):
        suite = generate_suite(db4_k4, per_size=10, seed=3)
        non_canonical = sum(
            1 for case in suite.cases if not case.permutation.is_canonical()
        )
        assert non_canonical > 0

    def test_canonical_only_mode(self, db4_k4):
        suite = generate_suite(
            db4_k4, per_size=5, seed=3, randomize_class_members=False
        )
        assert all(case.permutation.is_canonical() for case in suite.cases)


class TestPersistence:
    def test_save_load_roundtrip(self, db4_k4, tmp_path):
        suite = generate_suite(db4_k4, per_size=3, seed=4)
        path = tmp_path / "suite.txt"
        suite.save(path)
        loaded = TestSuite.load(path)
        assert [c.spec_line() for c in loaded.cases] == [
            c.spec_line() for c in suite.cases
        ]

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "suite.txt"
        path.write_text("# header\n\n1 [1,0,2,3,4,5,6,7,8,9,10,11,12,13,14,15]\n")
        loaded = TestSuite.load(path)
        assert len(loaded.cases) == 1
        assert loaded.cases[0].optimal_size == 1


class TestScoring:
    def test_score_optimal_synthesizer_is_one(self, db4_k4, engine4_l7):
        suite = generate_suite(db4_k4, per_size=3, seed=5)
        score = suite.score_heuristic(
            lambda perm: engine4_l7.minimal_circuit(perm.word)
        )
        assert score.overhead == 1.0
        assert all(ratio == 1.0 for ratio in score.per_size.values())

    def test_score_mmd_overhead_above_one(self, db4_k4):
        from repro.synth.heuristic import mmd_synthesize

        suite = generate_suite(db4_k4, per_size=6, seed=6)
        score = suite.score_heuristic(mmd_synthesize)
        assert score.overhead >= 1.0
        assert score.total_heuristic >= score.total_optimal

    def test_score_rejects_wrong_circuits(self, db4_k4):
        from repro.core.circuit import Circuit

        suite = generate_suite(db4_k4, per_size=2, seed=8)
        with pytest.raises(AssertionError):
            suite.score_heuristic(lambda perm: Circuit.empty(4))

    def test_spec_line_format(self):
        case = TestCase(
            permutation=Permutation.identity(4), optimal_size=0
        )
        assert case.spec_line().startswith("0 [0,1,2,")
