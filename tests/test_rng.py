"""Tests for the Mersenne-twister substrate (paper reference [7])."""

import pytest

from repro.rng.mt19937 import MersenneTwister
from repro.rng.sampling import PermutationSampler, random_circuit

#: The first ten outputs of the MT19937 reference implementation
#: (mt19937ar.c, ``init_genrand(5489)`` followed by ``genrand_int32``).
REFERENCE_SEED_5489 = [
    3499211612,
    581869302,
    3890346734,
    3586334585,
    545404204,
    4161255391,
    3922919429,
    949333985,
    2715962298,
    1323567403,
]


class TestMT19937:
    def test_reference_vector(self):
        rng = MersenneTwister(5489)
        assert [rng.next_uint32() for _ in range(10)] == REFERENCE_SEED_5489

    def test_default_seed_is_reference(self):
        assert MersenneTwister().next_uint32() == REFERENCE_SEED_5489[0]

    def test_reseeding_restarts(self):
        rng = MersenneTwister(5489)
        first = [rng.next_uint32() for _ in range(5)]
        rng.seed(5489)
        assert [rng.next_uint32() for _ in range(5)] == first

    def test_different_seeds_differ(self):
        a = MersenneTwister(1)
        b = MersenneTwister(2)
        assert [a.next_uint32() for _ in range(4)] != [
            b.next_uint32() for _ in range(4)
        ]

    def test_uint64_combines_two_draws(self):
        rng_a = MersenneTwister(99)
        rng_b = MersenneTwister(99)
        high = rng_b.next_uint32()
        low = rng_b.next_uint32()
        assert rng_a.next_uint64() == (high << 32) | low

    def test_next_below_range_and_rejection(self):
        rng = MersenneTwister(7)
        draws = [rng.next_below(10) for _ in range(2000)]
        assert min(draws) == 0 and max(draws) == 9
        # Roughly uniform: every value appears.
        assert len(set(draws)) == 10

    def test_next_below_validates(self):
        rng = MersenneTwister(7)
        with pytest.raises(ValueError):
            rng.next_below(0)
        with pytest.raises(ValueError):
            rng.next_below((1 << 32) + 1)

    def test_random_unit_interval(self):
        rng = MersenneTwister(11)
        values = [rng.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_uniformity_chi_squared(self):
        """Chi-squared smoke test over 16 buckets."""
        rng = MersenneTwister(5489)
        buckets = [0] * 16
        n = 16000
        for _ in range(n):
            buckets[rng.next_below(16)] += 1
        expected = n / 16
        chi2 = sum((b - expected) ** 2 / expected for b in buckets)
        # 15 degrees of freedom; 99.9th percentile is ~37.7.
        assert chi2 < 37.7

    def test_shuffle_is_permutation(self):
        rng = MersenneTwister(3)
        items = list(range(16))
        rng.shuffle(items)
        assert sorted(items) == list(range(16))


class TestPermutationSampler:
    def test_reproducible(self):
        a = PermutationSampler(4, seed=123)
        b = PermutationSampler(4, seed=123)
        assert [a.sample_word() for _ in range(5)] == [
            b.sample_word() for _ in range(5)
        ]

    def test_sample_valid(self):
        from repro.core import packed

        sampler = PermutationSampler(4, seed=9)
        for _ in range(25):
            assert packed.is_valid(sampler.sample_word(), 4)

    def test_sample_words_array(self):
        sampler = PermutationSampler(3, seed=1)
        words = sampler.sample_words(10)
        assert words.shape == (10,) and words.dtype.name == "uint64"

    def test_permutation_sampler_uniformity(self):
        """All 24 permutations of 4 elements appear with a small sample."""
        sampler = PermutationSampler(2, seed=5)
        seen = {sampler.sample_word() for _ in range(600)}
        assert len(seen) == 24


class TestRandomCircuit:
    def test_gate_count_and_wires(self):
        circuit = random_circuit(4, 12)
        assert circuit.gate_count == 12
        assert circuit.n_wires == 4

    def test_reproducible_with_rng(self):
        from repro.rng.mt19937 import MersenneTwister

        a = random_circuit(4, 8, MersenneTwister(42))
        b = random_circuit(4, 8, MersenneTwister(42))
        assert a == b
