"""Self-tests for the repro.checks static-analysis framework.

Every rule gets a must-flag and a must-pass fixture (run through
``check_source`` with a path inside the rule's scope), plus suppression
behaviour and the JSON reporter's golden output.
"""

import json
import textwrap

import pytest

from repro.checks import (
    CheckConfig,
    all_rules,
    check_source,
    render_json,
    render_text,
)
from repro.checks.registry import select_rules
from repro.checks.runner import CheckReport

CORE = "src/repro/core/example.py"
SERVICE = "src/repro/service/example.py"
SYNTH = "src/repro/synth/example.py"


def findings(source, path=CORE, select=None):
    report = check_source(textwrap.dedent(source), path=path, select=select)
    return [f.rule_id for f in report.findings]


# ---------------------------------------------------------------------------
# mask64
# ---------------------------------------------------------------------------
class TestMask64:
    def test_flags_unmasked_shift_on_word(self):
        assert "unmasked-op" in findings(
            """
            def f(word: int) -> int:
                return word << 4
            """
        )

    def test_passes_masked_shift(self):
        assert findings(
            """
            MASK64 = (1 << 64) - 1

            def f(word: int) -> int:
                return (word << 4) & MASK64
            """
        ) == []

    def test_passes_mask64_call(self):
        assert findings(
            """
            def f(word: int) -> int:
                return mask64(word << 4)
            """
        ) == []

    def test_flags_unmasked_invert(self):
        assert "unmasked-op" in findings(
            """
            def f(key: int) -> int:
                return ~key
            """
        )

    def test_constant_mask_clears_taint(self):
        # `word & 0xF` cannot exceed 4 bits; shifting it is safe.
        assert findings(
            """
            def f(word: int) -> int:
                return (word & 0xF0F0) >> 4 | (word & 0x0F0F) << 4 & 0xFFFF
            """
        ) == []

    def test_np_suffix_exempt(self):
        assert findings(
            """
            def f_np(words):
                return words << 4
            """
        ) == []

    def test_out_of_scope_path_ignored(self):
        assert findings(
            """
            def f(word: int) -> int:
                return word << 4
            """,
            path=SYNTH,
        ) == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------
class TestLockDiscipline:
    def test_flags_mixed_mutation(self):
        assert "mixed-lock-mutation" in findings(
            """
            class C:
                def locked(self):
                    with self._lock:
                        self.count = 1

                def unlocked(self):
                    self.count = 2
            """,
            path=SERVICE,
        )

    def test_passes_consistent_locking(self):
        assert findings(
            """
            class C:
                def a(self):
                    with self._lock:
                        self.count = 1

                def b(self):
                    with self._lock:
                        self.count = 2
            """,
            path=SERVICE,
        ) == []

    def test_init_mutations_exempt(self):
        assert findings(
            """
            class C:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    with self._lock:
                        self.count += 1
            """,
            path=SERVICE,
        ) == []

    def test_flags_blocking_wait_under_lock(self):
        assert "blocking-call-under-lock" in findings(
            """
            class C:
                def stop(self):
                    with self._lock:
                        self._event.wait()
            """,
            path=SERVICE,
        )

    def test_condition_wait_on_held_lock_allowed(self):
        assert findings(
            """
            class C:
                def next_item(self):
                    with self._cond:
                        while not self._items:
                            self._cond.wait(timeout=0.5)
            """,
            path=SERVICE,
        ) == []

    def test_dict_get_under_lock_allowed(self):
        assert findings(
            """
            class C:
                def lookup(self, key):
                    with self._lock:
                        return self._entries.get(key)
            """,
            path=SERVICE,
        ) == []

    def test_queue_get_under_lock_flagged(self):
        assert "blocking-call-under-lock" in findings(
            """
            class C:
                def take(self):
                    with self._lock:
                        return self.queue.get()
            """,
            path=SERVICE,
        )


# ---------------------------------------------------------------------------
# unbounded-wait
# ---------------------------------------------------------------------------
class TestUnboundedWait:
    def test_flags_bare_wait(self):
        assert "unbounded-wait" in findings(
            """
            def stop(event):
                event.wait()
            """,
            path=SERVICE,
        )

    def test_flags_bare_join(self):
        assert "unbounded-wait" in findings(
            """
            def stop(thread):
                thread.join()
            """,
            path=SERVICE,
        )

    def test_passes_timeout_keyword(self):
        assert findings(
            """
            def stop(event):
                while not event.wait(timeout=1.0):
                    pass
            """,
            path=SERVICE,
        ) == []

    def test_passes_positional_timeout(self):
        assert findings(
            """
            def stop(thread):
                thread.join(5)
            """,
            path=SERVICE,
        ) == []

    def test_suppression_comment(self):
        assert findings(
            """
            def stop(pool):
                # repro: allow[unbounded-wait] Pool.join has no timeout parameter
                pool.join()
            """,
            path=SERVICE,
        ) == []

    def test_out_of_scope_path_ignored(self):
        assert findings(
            """
            def stop(thread):
                thread.join()
            """,
            path=SYNTH,
        ) == []


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_flags_global_random(self):
        assert "nondeterminism" in findings(
            """
            import random

            def pick():
                return random.random()
            """,
            path=SYNTH,
        )

    def test_flags_wall_clock(self):
        assert "nondeterminism" in findings(
            """
            import time

            def stamp():
                return time.time()
            """,
            path=SYNTH,
        )

    def test_monotonic_allowed(self):
        assert findings(
            """
            import time

            def elapsed(start):
                return time.monotonic() - start
            """,
            path=SYNTH,
        ) == []

    def test_seeded_rng_allowed(self):
        assert findings(
            """
            import random

            def pick(seed):
                return random.Random(seed).random()
            """,
            path=SYNTH,
        ) == []

    def test_unseeded_default_rng_flagged(self):
        assert "nondeterminism" in findings(
            """
            import numpy as np

            def draw():
                return np.random.default_rng()
            """,
            path=SYNTH,
        )

    def test_seeded_default_rng_allowed(self):
        assert findings(
            """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed)
            """,
            path=SYNTH,
        ) == []

    def test_metrics_file_exempt(self):
        assert findings(
            """
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/service/metrics.py",
        ) == []


# ---------------------------------------------------------------------------
# api-misuse
# ---------------------------------------------------------------------------
class TestApiMisuse:
    def test_flags_bare_except(self):
        assert "bare-except" in findings(
            """
            def f():
                try:
                    work()
                except:
                    pass
            """,
            path=SYNTH,
        )

    def test_passes_typed_except(self):
        assert findings(
            """
            def f():
                try:
                    work()
                except ValueError:
                    pass
            """,
            path=SYNTH,
        ) == []

    def test_flags_mutable_default(self):
        assert "mutable-default" in findings(
            """
            def f(items=[]):
                return items
            """,
            path=SYNTH,
        )

    def test_passes_none_default(self):
        assert findings(
            """
            def f(items=None):
                return items or []
            """,
            path=SYNTH,
        ) == []

    def test_flags_uncanonicalized_lookup(self):
        assert "unrouted-lookup" in findings(
            """
            def size_of(table, value):
                return table.get(value)
            """,
            path=SYNTH,
        )

    def test_passes_canonical_arg_name(self):
        assert findings(
            """
            def size_of(table, canon):
                return table.get(canon)
            """,
            path=SYNTH,
        ) == []

    def test_passes_canonical_call(self):
        assert findings(
            """
            def size_of(table, value):
                return table.get(canonical_representative(value))
            """,
            path=SYNTH,
        ) == []

    def test_passes_name_assigned_from_canonical(self):
        assert findings(
            """
            def size_of(table, value):
                c = canonical(value)
                return table.get(c)
            """,
            path=SYNTH,
        ) == []


# ---------------------------------------------------------------------------
# todo-tracking
# ---------------------------------------------------------------------------
class TestTodoTracking:
    def test_flags_untracked_todo(self):
        assert "untracked-todo" in findings(
            "x = 1  # TODO: make this faster\n", path=SYNTH
        )

    def test_passes_tracked_todo(self):
        assert findings(
            "x = 1  # TODO(roadmap-depth): make this faster\n", path=SYNTH
        ) == []

    def test_fixme_in_string_not_flagged(self):
        assert findings('x = "TODO: not a comment"\n', path=SYNTH) == []


# ---------------------------------------------------------------------------
# engine-layering
# ---------------------------------------------------------------------------
class TestEngineLayering:
    IMPORT = "from repro.synth.synthesizer import OptimalSynthesizer\n"

    def test_flags_concrete_import_in_service(self):
        assert "engine-layering" in findings(self.IMPORT, path=SERVICE)

    def test_flags_function_entry_points(self):
        assert "engine-layering" in findings(
            "from repro.synth.heuristic import mmd_synthesize\n",
            path="src/repro/apps/example.py",
        )

    def test_passes_inside_engines_package(self):
        assert findings(
            self.IMPORT, path="src/repro/engines/example.py"
        ) == []

    def test_passes_inside_defining_package(self):
        assert findings(self.IMPORT, path=SYNTH) == []

    def test_passes_top_level_reexport(self):
        assert findings(self.IMPORT, path="src/repro/__init__.py") == []

    def test_tests_are_globally_excluded(self):
        assert findings(self.IMPORT, path="repo/tests/example.py") == []

    def test_engine_layer_imports_allowed_elsewhere(self):
        assert findings(
            "from repro.engines import create_engine\n", path=SERVICE
        ) == []


# ---------------------------------------------------------------------------
# store-layering
# ---------------------------------------------------------------------------
class TestStoreLayering:
    LOAD = "import numpy as np\ndata = np.load('db.npz')\n"

    def test_flags_np_load_in_service(self):
        assert "store-layering" in findings(self.LOAD, path=SERVICE)

    def test_flags_np_savez_and_memmap(self):
        source = (
            "import numpy as np\n"
            "np.savez('db.npz', a=1)\n"
            "m = np.memmap('db.rdb', mode='r')\n"
        )
        assert findings(source, path=SERVICE).count("store-layering") == 2

    def test_flags_full_numpy_alias(self):
        assert "store-layering" in findings(
            "import numpy\nnumpy.savez_compressed('db.npz')\n", path=SERVICE
        )

    def test_passes_inside_store_package(self):
        assert findings(self.LOAD, path="src/repro/store/example.py") == []

    def test_passes_legacy_codec_module(self):
        assert findings(
            self.LOAD, path="src/repro/synth/database.py"
        ) == []

    def test_non_persistence_numpy_calls_allowed(self):
        assert findings(
            "import numpy as np\nx = np.zeros(4)\n", path=SERVICE
        ) == []

    def test_memmap_isinstance_not_flagged(self):
        assert findings(
            "import numpy as np\nok = isinstance(x, np.memmap)\n",
            path=SERVICE,
        ) == []

    def test_non_numpy_load_not_flagged(self):
        assert findings(
            "data = pickle.load(fh)\n", path=SERVICE
        ) == []

    def test_infrastructure_names_not_flagged(self):
        # SynthesisHandle / peel_minimal_circuit are serving
        # infrastructure, not engine entry points.
        assert findings(
            "from repro.synth.synthesizer import SynthesisHandle\n",
            path=SERVICE,
        ) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_suppression_with_reason(self):
        report = check_source(
            "def f(word):\n"
            "    return word << 4  # repro: allow[unmasked-op] shift is bounded by construction\n",
            path=CORE,
        )
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["unmasked-op"]

    def test_standalone_suppression_covers_next_line(self):
        report = check_source(
            "def f(word):\n"
            "    # repro: allow[unmasked-op] bounded by construction\n"
            "    return word << 4\n",
            path=CORE,
        )
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_family_name_suppresses(self):
        report = check_source(
            "def f(word):\n"
            "    return word << 4  # repro: allow[mask64] bounded\n",
            path=CORE,
        )
        assert report.findings == []

    def test_reasonless_suppression_is_a_finding(self):
        report = check_source(
            "def f(word):\n"
            "    return word << 4  # repro: allow[unmasked-op]\n",
            path=CORE,
        )
        ids = [f.rule_id for f in report.findings]
        assert "bad-suppression" in ids

    def test_suppression_for_other_rule_does_not_hide(self):
        report = check_source(
            "def f(word):\n"
            "    return word << 4  # repro: allow[bare-except] wrong rule\n",
            path=CORE,
        )
        assert [f.rule_id for f in report.findings] == ["unmasked-op"]

    def test_standalone_covers_parenthesized_continuation(self):
        # The finding lands on a continuation line of the statement, not
        # the line right after the comment; the suppression must still
        # cover it because it anchors to the whole statement.
        report = check_source(
            "def f(word):\n"
            "    # repro: allow[unmasked-op] wraparound handled by caller\n"
            "    result = (\n"
            "        word\n"
            "        << 4\n"
            "    )\n"
            "    return result\n",
            path=CORE,
        )
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["unmasked-op"]

    def test_standalone_covers_through_decorators(self):
        report = check_source(
            "import functools\n"
            "\n"
            "# repro: allow[mutable-default] shared default is intentional\n"
            "@functools.lru_cache\n"
            "def f(items=[]):\n"
            "    return items\n",
            path=CORE,
        )
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["mutable-default"]

    def test_consecutive_standalone_comments_share_a_target(self):
        report = check_source(
            "import random\n"
            "\n"
            "def f(word):\n"
            "    # repro: allow[unmasked-op] wraparound handled downstream\n"
            "    # repro: allow[nondeterminism] jitter is intentional\n"
            "    return word << random.getrandbits(2)\n",
            path=CORE,
        )
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_standalone_does_not_cover_compound_body(self):
        # Anchoring stops at the header of a compound statement: the
        # body keeps its own discipline.
        report = check_source(
            "# repro: allow[unmasked-op] header only\n"
            "def f(word):\n"
            "    return word << 4\n",
            path=CORE,
        )
        assert [f.rule_id for f in report.findings] == ["unmasked-op"]

    def test_trailing_comment_stays_line_scoped(self):
        report = check_source(
            "def f(word):\n"
            "    x = 1  # repro: allow[unmasked-op] wrong line\n"
            "    return word << 4\n",
            path=CORE,
        )
        assert [f.rule_id for f in report.findings] == ["unmasked-op"]


# ---------------------------------------------------------------------------
# Registry / selection
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_all_rule_families_present(self):
        families = {rule.family for rule in all_rules()}
        assert {
            "mask64",
            "lock-discipline",
            "determinism",
            "api-misuse",
            "todo-tracking",
        } <= families

    def test_select_by_family(self):
        rules = select_rules(["lock-discipline"])
        assert {r.id for r in rules} == {
            "mixed-lock-mutation",
            "blocking-call-under-lock",
            "unbounded-wait",
            "lock-order-cycle",
        }

    def test_select_unknown_raises(self):
        with pytest.raises(ValueError):
            select_rules(["no-such-rule"])

    def test_select_restricts_check(self):
        source = """
        def f(word, items=[]):
            return word << 4
        """
        assert findings(source, select=["mutable-default"]) == [
            "mutable-default"
        ]


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------
class TestReporters:
    def test_json_golden(self):
        report = check_source(
            "def f(word):\n    return word << 4\n", path=CORE
        )
        golden = {
            "version": 1,
            "ok": False,
            "files_checked": 1,
            "findings": [
                {
                    "path": CORE,
                    "line": 2,
                    "col": 11,
                    "rule": "unmasked-op",
                    "family": "mask64",
                    "severity": "error",
                    "message": (
                        "unmasked << on a packed-word value can exceed 64 "
                        "bits; route the result through mask64() or & MASK64"
                    ),
                }
            ],
            "suppressed": [],
        }
        assert json.loads(render_json(report)) == golden

    def test_text_summary_counts(self):
        report = check_source(
            "def f(word):\n    return word << 4\n", path=CORE
        )
        text = render_text(report)
        assert f"{CORE}:2:12: error [unmasked-op]" in text
        assert "1 finding (0 suppressed) in 1 file" in text

    def test_text_ok_summary(self):
        text = render_text(CheckReport(files_checked=3))
        assert text == "ok: 0 findings (0 suppressed) in 3 files"

    def test_parse_error_reported(self):
        report = check_source("def f(:\n", path=CORE)
        assert [f.rule_id for f in report.findings] == ["parse-error"]


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------
class TestConfig:
    def test_scope_override_per_rule(self):
        config = CheckConfig(scopes={"unmasked-op": ["src/other/"]})
        report = check_source(
            "def f(word):\n    return word << 4\n",
            path=CORE,
            config=config,
        )
        assert report.findings == []

    def test_excluded_paths_skip_all_rules(self):
        report = check_source(
            "def f(word):\n    return word << 4\n",
            path="src/repro/core/tests/x.py",
            config=CheckConfig(exclude=("/tests/",)),
        )
        assert report.findings == []
