"""Tests for the GF(2) linear-algebra substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permutation import Permutation
from repro.errors import InvalidPermutationError
from repro.synth.gf2 import (
    AffineMap,
    affine_from_permutation,
    all_affine_words,
    count_invertible_matrices,
    is_affine_permutation,
    is_linear_permutation,
    matrix_inverse,
    matrix_multiply,
    rank,
    transpose,
)


def invertible_matrices(n):
    """Hypothesis strategy: random invertible GF(2) matrix via row ops."""

    def build(seed):
        import random

        rng = random.Random(seed)
        rows = [1 << i for i in range(n)]
        for _ in range(25):
            i, j = rng.randrange(n), rng.randrange(n)
            if i != j:
                rows[i] ^= rows[j]
        rng.shuffle(rows)
        return tuple(rows)

    return st.integers(0, 10**9).map(build)


class TestMatrixOps:
    def test_rank_identity(self):
        assert rank([1, 2, 4, 8]) == 4

    def test_rank_singular(self):
        assert rank([1, 2, 3, 0]) == 2  # row3 = row1 ^ row2, row4 = 0

    @given(invertible_matrices(4))
    def test_inverse_roundtrip(self, rows):
        inverse = matrix_inverse(rows)
        identity = tuple(1 << i for i in range(4))
        assert matrix_multiply(rows, inverse) == identity
        assert matrix_multiply(inverse, rows) == identity

    def test_inverse_singular_raises(self):
        with pytest.raises(InvalidPermutationError):
            matrix_inverse((1, 2, 3, 0))

    @given(invertible_matrices(4))
    def test_transpose_involution(self, rows):
        assert transpose(transpose(rows)) == rows

    def test_count_invertible(self):
        assert count_invertible_matrices(4) == 20160
        assert count_invertible_matrices(3) == 168
        assert count_invertible_matrices(2) == 6


class TestAffineMaps:
    @given(invertible_matrices(4), st.integers(0, 15))
    def test_affine_roundtrip(self, rows, constant):
        affine = AffineMap(rows=rows, constant=constant)
        assert affine.is_invertible()
        perm = Permutation(affine.to_word(), 4)
        recovered = affine_from_permutation(perm)
        assert recovered == affine

    def test_singular_map_not_packable(self):
        affine = AffineMap(rows=(1, 2, 3, 0), constant=0)
        with pytest.raises(InvalidPermutationError):
            affine.to_word()

    def test_strictly_linear(self):
        linear = AffineMap(rows=(1, 3, 4, 8), constant=0)
        affine = AffineMap(rows=(1, 3, 4, 8), constant=5)
        assert linear.is_strictly_linear()
        assert not affine.is_strictly_linear()


class TestRecognition:
    def test_not_gate_affine_not_linear(self):
        not_a = Permutation.from_values([x ^ 1 for x in range(16)])
        assert is_affine_permutation(not_a)
        assert not is_linear_permutation(not_a)

    def test_toffoli_not_affine(self):
        tof = Permutation.from_values(
            [x ^ (((x & 1) & ((x >> 1) & 1)) << 2) for x in range(16)]
        )
        assert not is_affine_permutation(tof)
        assert affine_from_permutation(tof) is None

    def test_paper_linear_example(self):
        """Section 4.3's example: a,b,c,d -> b⊕1, a⊕c⊕1, d⊕1, a."""
        values = []
        for x in range(16):
            a, b, c, d = x & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1
            values.append(
                (b ^ 1) | ((a ^ c ^ 1) << 1) | ((d ^ 1) << 2) | (a << 3)
            )
        perm = Permutation.from_values(values)
        assert is_affine_permutation(perm)
        assert not is_linear_permutation(perm)


class TestEnumeration:
    def test_all_affine_words_n2(self):
        words = all_affine_words(2)
        assert len(words) == count_invertible_matrices(2) * 4 == 24
        assert len(set(words)) == 24
        for word in words:
            assert is_affine_permutation(Permutation(word, 2))

    def test_all_affine_words_n3_count(self):
        words = all_affine_words(3)
        assert len(set(words)) == count_invertible_matrices(3) * 8 == 1344
