"""Tests for the bench harness: schema, runner, env knobs, compare gate.

The compare tests pin down the CI gate's exact semantics -- tolerance
boundary, new/missing ops, calibration normalization, scale mismatch --
because a perf gate with fuzzy edges either wedges CI or gates nothing.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import BenchDataError
from repro.perf.bench import run_op, run_suite
from repro.perf.compare import (
    STATUS_IMPROVED,
    STATUS_MISSING,
    STATUS_NEW,
    STATUS_OK,
    STATUS_REGRESSION,
    compare_records,
)
from repro.perf.env import BenchScale, bench_cache_dir
from repro.perf.schema import (
    CALIBRATION_OP,
    SCHEMA,
    BenchRecord,
    OpStats,
    bench_filename,
    host_fingerprint,
)
from repro.perf.suites import BenchOp, suite_names, suite_ops


def make_stats(median=1e-3, **overrides) -> OpStats:
    fields = dict(
        median_s=median,
        p90_s=median * 1.2,
        min_s=median * 0.8,
        mean_s=median * 1.05,
        samples=10,
        inner_iterations=1,
    )
    fields.update(overrides)
    return OpStats(**fields)


def make_record(ops, *, scale=None, calibration=CALIBRATION_OP, suite="quick"):
    full_ops = {CALIBRATION_OP: make_stats(5e-3)} if calibration else {}
    full_ops.update(ops)
    return BenchRecord(
        suite=suite,
        scale=scale if scale is not None else {"k": 5, "max_list_size": 3},
        host={"platform": "test"},
        ops=full_ops,
        created_unix=1_700_000_000.0,
        calibration_op=calibration,
    )


# ----------------------------------------------------------------------
# Schema round-trip and validation
# ----------------------------------------------------------------------
class TestSchema:
    def test_json_round_trip(self):
        record = make_record({"micro.hash_scalar": make_stats(2e-6)})
        restored = BenchRecord.from_json(record.to_json())
        assert restored == record
        assert restored.schema == SCHEMA

    def test_dump_and_load(self, tmp_path):
        record = make_record({"op.a": make_stats()})
        path = record.dump(tmp_path / "BENCH_x.json")
        assert BenchRecord.load(path) == record
        # The file is real, sorted, newline-terminated JSON.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["schema"] == SCHEMA

    def test_rejects_wrong_schema(self):
        data = make_record({"op.a": make_stats()}).to_dict()
        data["schema"] = "repro-bench/999"
        with pytest.raises(BenchDataError, match="unsupported bench schema"):
            BenchRecord.from_dict(data)

    def test_rejects_non_object(self):
        with pytest.raises(BenchDataError):
            BenchRecord.from_dict([1, 2, 3])
        with pytest.raises(BenchDataError, match="not valid JSON"):
            BenchRecord.from_json("{truncated")

    def test_rejects_empty_ops(self):
        data = make_record({"op.a": make_stats()}).to_dict()
        data["ops"] = {}
        with pytest.raises(BenchDataError, match="ops"):
            BenchRecord.from_dict(data)

    @pytest.mark.parametrize(
        "key,value",
        [
            ("median_s", "fast"),
            ("median_s", True),
            ("p90_s", -1.0),
            ("samples", 0),
            ("samples", 2.5),
            ("inner_iterations", False),
        ],
    )
    def test_rejects_bad_stats(self, key, value):
        data = make_record({"op.a": make_stats()}).to_dict()
        data["ops"]["op.a"][key] = value
        with pytest.raises(BenchDataError, match="op 'op.a'"):
            BenchRecord.from_dict(data)

    def test_rejects_non_integer_scale(self):
        data = make_record({"op.a": make_stats()}).to_dict()
        data["scale"]["k"] = "five"
        with pytest.raises(BenchDataError, match="scale knob"):
            BenchRecord.from_dict(data)

    def test_calibration_op_cleared_when_absent_from_ops(self):
        data = make_record({"op.a": make_stats()}).to_dict()
        data["calibration_op"] = "calibration.gone"
        record = BenchRecord.from_dict(data)
        assert record.calibration_op is None

    def test_bench_filename_is_compact_utc(self):
        assert bench_filename(0.0) == "BENCH_19700101T000000Z.json"
        name = bench_filename(1_700_000_000.0)
        assert name.startswith("BENCH_2023") and name.endswith("Z.json")

    def test_host_fingerprint_keys(self):
        host = host_fingerprint()
        for key in ("platform", "python", "numpy", "cpu_count"):
            assert key in host
        assert host["cpu_count"] >= 1


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------
class TestEnv:
    def test_scale_defaults(self):
        scale = BenchScale.from_env(env={})
        assert (scale.k, scale.max_l, scale.samples) == (6, 11, 60)
        assert scale.max_list_size == 5

    def test_scale_from_env_mapping(self):
        scale = BenchScale.from_env(
            env={"REPRO_BENCH_K": "4", "REPRO_BENCH_MAX_L": "6"}
        )
        assert scale.k == 4
        assert scale.max_list_size == 2

    def test_max_list_size_clamped_to_k(self):
        # L - k > k: lists deeper than the database cannot exist.
        assert BenchScale(k=3, max_l=12).max_list_size == 3
        # L <= k: never negative.
        assert BenchScale(k=6, max_l=4).max_list_size == 0

    def test_bad_integer_raises(self):
        with pytest.raises(ValueError, match="REPRO_BENCH_K"):
            BenchScale.from_env(env={"REPRO_BENCH_K": "lots"})

    def test_cache_dir_env_wins(self):
        path = bench_cache_dir(
            default="/elsewhere", env={"REPRO_BENCH_CACHE": "/from-env"}
        )
        assert path == Path("/from-env")

    def test_cache_dir_default_then_cwd(self, monkeypatch, tmp_path):
        assert bench_cache_dir(default="/fallback", env={}) == Path("/fallback")
        monkeypatch.chdir(tmp_path)
        assert bench_cache_dir(env={}) == tmp_path / ".bench-cache"

    def test_cache_dir_blank_env_ignored(self):
        path = bench_cache_dir(default="/fallback", env={"REPRO_BENCH_CACHE": "  "})
        assert path == Path("/fallback")


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_run_op_batches_cheap_thunks(self):
        op = BenchOp(
            name="unit.cheap",
            setup=lambda ctx: (lambda: None),
            target_time=0.02,
            min_samples=3,
            max_samples=5,
        )
        stats = run_op(op, ctx=None)
        assert stats.inner_iterations > 1  # sub-5ms thunk gets batched
        assert 3 <= stats.samples <= 5
        assert stats.min_s <= stats.median_s <= stats.p90_s

    def test_run_op_once_skips_batching(self):
        calls = []
        op = BenchOp(
            name="unit.build",
            setup=lambda ctx: (lambda: calls.append(1)),
            min_samples=3,
            once=True,
        )
        stats = run_op(op, ctx=None)
        assert stats.inner_iterations == 1
        assert stats.samples == 3
        assert len(calls) == 4  # warmup + 3 samples

    def test_suite_registry(self):
        assert suite_names() == ["full", "quick"]
        quick = {op.name for op in suite_ops("quick")}
        full = {op.name for op in suite_ops("full")}
        assert CALIBRATION_OP in quick
        assert quick < full  # full is a strict superset
        with pytest.raises(BenchDataError, match="unknown bench suite"):
            suite_ops("nightly")

    def test_run_suite_rejects_unknown_select(self):
        with pytest.raises(BenchDataError, match="unknown op"):
            run_suite("quick", select=["micro.typo"])

    def test_run_suite_selected_ops(self, tmp_path):
        record = run_suite(
            "quick",
            scale_env=BenchScale(k=3, max_l=4, samples=5),
            cache_dir=tmp_path / "cache",
            select=["micro.hash_scalar"],
        )
        # Calibration rides along so the record stays normalizable.
        assert set(record.ops) == {CALIBRATION_OP, "micro.hash_scalar"}
        assert record.calibration_op == CALIBRATION_OP
        assert record.suite == "quick"
        assert record.scale["k"] == 3
        # The emitted record passes its own strict validation.
        assert BenchRecord.from_json(record.to_json()) == record


# ----------------------------------------------------------------------
# Compare gate
# ----------------------------------------------------------------------
class TestCompare:
    def test_identical_records_pass(self):
        record = make_record({"op.a": make_stats(1e-3)})
        report = compare_records(record, record)
        assert report.ok
        assert report.normalized
        assert {c.status for c in report.comparisons} == {STATUS_OK}
        assert "PASS" in report.render()

    def test_doubled_median_regresses(self):
        base = make_record({"op.a": make_stats(1e-3)})
        cur = make_record({"op.a": make_stats(2e-3)})
        report = compare_records(cur, base, tolerance_pct=25.0)
        assert not report.ok
        (reg,) = report.regressions
        assert reg.op == "op.a"
        assert reg.gated_ratio == pytest.approx(2.0)
        rendered = report.render()
        assert "SLOW" in rendered and "FAIL" in rendered

    def test_tolerance_boundary_is_exclusive(self):
        base = make_record({"op.a": make_stats(1e-3)})
        exactly = make_record({"op.a": make_stats(1.25e-3)})
        assert compare_records(exactly, base, tolerance_pct=25.0).ok
        just_over = make_record({"op.a": make_stats(1.26e-3)})
        assert not compare_records(just_over, base, tolerance_pct=25.0).ok

    def test_improvement_flagged_not_failed(self):
        base = make_record({"op.a": make_stats(2e-3)})
        cur = make_record({"op.a": make_stats(1e-3)})
        report = compare_records(cur, base)
        assert report.ok
        (comp,) = [c for c in report.comparisons if c.op == "op.a"]
        assert comp.status == STATUS_IMPROVED
        assert "FAST" in report.render()

    def test_new_op_passes(self):
        base = make_record({})
        cur = make_record({"op.fresh": make_stats()})
        report = compare_records(cur, base)
        assert report.ok
        (comp,) = [c for c in report.comparisons if c.op == "op.fresh"]
        assert comp.status == STATUS_NEW
        assert "NEW" in report.render()

    def test_missing_op_warns_but_passes(self):
        base = make_record({"op.retired": make_stats()})
        cur = make_record({})
        report = compare_records(cur, base)
        assert report.ok
        (comp,) = [c for c in report.comparisons if c.op == "op.retired"]
        assert comp.status == STATUS_MISSING
        assert "GONE" in report.render()

    def test_scale_mismatch_fails_outright(self):
        base = make_record({"op.a": make_stats()}, scale={"k": 5})
        cur = make_record({"op.a": make_stats()}, scale={"k": 6})
        report = compare_records(cur, base)
        assert not report.ok
        assert report.scale_mismatch is not None
        assert "k" in report.scale_mismatch
        assert report.render().startswith("FAIL scale mismatch")

    def test_calibration_normalizes_a_slow_host(self):
        # Current host: everything (calibration included) 3x slower.
        base = make_record({"op.a": make_stats(1e-3)})
        cur = BenchRecord(
            suite="quick",
            scale=dict(base.scale),
            host={"platform": "slow"},
            ops={
                CALIBRATION_OP: make_stats(15e-3),
                "op.a": make_stats(3e-3),
            },
            created_unix=1_700_000_100.0,
        )
        report = compare_records(cur, base, tolerance_pct=25.0)
        assert report.normalized
        assert report.ok
        (comp,) = [c for c in report.comparisons if c.op == "op.a"]
        assert comp.ratio == pytest.approx(3.0)
        assert comp.gated_ratio == pytest.approx(1.0)
        # The same records compared raw must fail: that is the entire
        # point of the calibration op.
        assert not compare_records(
            cur, base, tolerance_pct=25.0, normalize=False
        ).ok

    def test_calibration_op_itself_never_gated(self):
        base = make_record({"op.a": make_stats(1e-3)})
        cur = BenchRecord(
            suite="quick",
            scale=dict(base.scale),
            host={"platform": "slow"},
            ops={
                CALIBRATION_OP: make_stats(50e-3),  # 10x slower host
                "op.a": make_stats(10e-3),
            },
            created_unix=1_700_000_100.0,
        )
        report = compare_records(cur, base)
        (calib,) = [c for c in report.comparisons if c.op == CALIBRATION_OP]
        assert calib.status == STATUS_OK
        assert report.ok

    def test_normalize_required_but_unavailable(self):
        base = make_record({"op.a": make_stats()}, calibration=None)
        cur = make_record({"op.a": make_stats()})
        report = compare_records(cur, base, normalize=True)
        assert not report.ok
        assert "calibration" in report.scale_mismatch
        # The default auto-detects and falls back to raw instead.
        auto = compare_records(cur, base)
        assert auto.ok and not auto.normalized


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
class TestCli:
    def test_bench_list(self, capsys):
        from repro.cli import main

        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert CALIBRATION_OP in out
        assert "search.scan" in out

    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        base = make_record({"op.a": make_stats(1e-3)})
        good = make_record({"op.a": make_stats(1.1e-3)})
        slow = make_record({"op.a": make_stats(9e-3)})
        base_path = str(base.dump(tmp_path / "base.json"))
        good_path = str(good.dump(tmp_path / "good.json"))
        slow_path = str(slow.dump(tmp_path / "slow.json"))

        assert main(["bench", "--input", good_path, "--compare", base_path]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["bench", "--input", slow_path, "--compare", base_path]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_rejects_corrupt_input(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["bench", "--input", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
