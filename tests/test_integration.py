"""Cross-module integration tests: the full pipeline end to end."""

import pytest

import repro
from repro import Circuit, OptimalSynthesizer, Permutation
from repro.core import packed


class TestPublicApi:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_readme_quickstart(self):
        """The exact snippet from the package docstring works."""
        synth = OptimalSynthesizer(k=4, max_list_size=2, cache_dir=False)
        circuit = synth.synthesize("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
        assert str(circuit) == "TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)"


class TestEndToEnd:
    def test_synthesize_verify_roundtrip(self, engine4_l9):
        """Random circuits of <= 9 gates re-synthesize to <= their length
        and the results verify."""
        from repro.rng.mt19937 import MersenneTwister
        from repro.rng.sampling import random_circuit

        for seed in range(10):
            original = random_circuit(4, 9, MersenneTwister(seed))
            perm = Permutation(original.to_word(), 4)
            outcome = engine4_l9.search(perm.word)
            assert outcome.size <= original.gate_count
            assert outcome.circuit.implements(perm)

    def test_synthesized_inverse_is_reversed_circuit(self, engine4_l9):
        """Paper §3.2 symmetry 2, validated through the synthesizer."""
        from repro.benchmarks_data import get_benchmark

        perm = get_benchmark("4bit-7-8").permutation()
        circuit = engine4_l9.minimal_circuit(perm.word)
        reversed_circuit = circuit.inverse()
        assert reversed_circuit.implements(perm.inverse())
        assert engine4_l9.size_of(perm.inverse().word) == circuit.gate_count

    def test_equivalent_functions_have_equal_size(self, engine4_l9, rng):
        """Paper §3.2: every member of an equivalence class has the same
        optimal size."""
        from repro.rng.mt19937 import MersenneTwister
        from repro.rng.sampling import random_circuit

        rng = MersenneTwister(2)
        for _ in range(3):
            perm = Permutation(random_circuit(4, 8, rng).to_word(), 4)
            size = engine4_l9.size_of(perm.word)
            for member in perm.equivalence_class()[:8]:
                assert engine4_l9.size_of(member.word) == size

    def test_relabeled_circuit_implements_conjugate(self, engine4_l9):
        from repro.benchmarks_data import get_benchmark

        perm = get_benchmark("rd32").permutation()
        circuit = engine4_l9.minimal_circuit(perm.word)
        sigma = (3, 1, 0, 2)
        relabeled = circuit.relabeled(sigma)
        conjugate = Permutation(
            packed.conjugate_by_wire_perm(perm.word, sigma, 4), 4
        )
        assert relabeled.implements(conjugate)
        assert engine4_l9.size_of(conjugate.word) == circuit.gate_count

    def test_three_engines_agree_on_n3(self, engine3, db3):
        """Optimal lookup, plain BFS, and SAT agree on 3-bit sizes."""
        from repro.sat.synth import sat_synthesize
        from repro.synth.plain_bfs import plain_bfs

        raw = plain_bfs(3, 10)
        from repro.rng.sampling import PermutationSampler

        sampler = PermutationSampler(3, seed=55)
        for _ in range(3):
            word = sampler.sample_word()
            size = engine3.size_of(word)
            assert raw.size_of(word) == size
            if size <= 4:  # keep SAT runtime sane
                result = sat_synthesize(Permutation(word, 3), max_gates=4)
                assert result.circuit.gate_count == size

    def test_heuristic_vs_optimal_pipeline(self, engine3):
        """MMD output re-synthesized optimally matches direct synthesis."""
        from repro.rng.sampling import PermutationSampler
        from repro.synth.heuristic import mmd_synthesize

        sampler = PermutationSampler(3, seed=21)
        for _ in range(10):
            perm = sampler.sample()
            heuristic_circuit = mmd_synthesize(perm)
            assert heuristic_circuit.implements(perm)
            optimal = engine3.size_of(perm.word)
            assert heuristic_circuit.gate_count >= optimal

    def test_real_file_through_synthesizer(self, engine4_l9, tmp_path):
        """Write an optimal circuit to .real, read back, verify function."""
        from repro.benchmarks_data import get_benchmark
        from repro.io.real_format import read_real, write_real

        perm = get_benchmark("imark").permutation()
        circuit = engine4_l9.minimal_circuit(perm.word)
        path = tmp_path / "imark.real"
        write_real(circuit, path, comment="imark, 7 gates, optimal")
        assert read_real(path).implements(perm)
