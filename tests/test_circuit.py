"""Tests for the Circuit value type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.gates import CNOT, NOT, TOF, all_gates
from repro.errors import InvalidCircuitError

gates_strategy = st.lists(st.sampled_from(all_gates(4)), max_size=12)


class TestConstruction:
    def test_empty(self):
        circuit = Circuit.empty(4)
        assert circuit.gate_count == 0
        assert circuit.apply(7) == 7
        assert str(circuit) == "(identity)"

    def test_gate_must_fit(self):
        with pytest.raises(InvalidCircuitError):
            Circuit(gates=(TOF(1, 2, 3),), n_wires=3)

    def test_bad_wire_count(self):
        with pytest.raises(InvalidCircuitError):
            Circuit(gates=(), n_wires=0)

    def test_parse_and_str_roundtrip(self):
        text = "TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)"
        circuit = Circuit.parse(text, 4)
        assert str(circuit) == text
        assert Circuit.parse(str(circuit), 4) == circuit

    def test_parse_empty(self):
        assert Circuit.parse("  ", 4) == Circuit.empty(4)


class TestSemantics:
    def test_application_order_is_left_to_right(self):
        """NOT(a) then CNOT(a,b): on input 0, a flips first, then b := a."""
        circuit = Circuit.from_gates([NOT(0), CNOT(0, 1)], 4)
        assert circuit.apply(0) == 0b11

    def test_truth_table_matches_apply(self):
        circuit = Circuit.parse("TOF(a,b,c) NOT(d) CNOT(c,a)", 4)
        table = circuit.truth_table()
        for x in range(16):
            assert table[x] == circuit.apply(x)

    @given(gates_strategy)
    def test_to_word_matches_truth_table(self, gates):
        from repro.core import packed

        circuit = Circuit.from_gates(gates, 4)
        word = circuit.to_word()
        for x in range(16):
            assert packed.get(word, x) == circuit.apply(x)

    @given(gates_strategy)
    def test_inverse_circuit(self, gates):
        circuit = Circuit.from_gates(gates, 4)
        identity = circuit.then(circuit.inverse())
        for x in range(16):
            assert identity.apply(x) == x

    @given(gates_strategy, gates_strategy)
    def test_concatenation(self, first, second):
        a = Circuit.from_gates(first, 4)
        b = Circuit.from_gates(second, 4)
        combined = a + b
        for x in range(16):
            assert combined.apply(x) == b.apply(a.apply(x))

    def test_concatenation_width_mismatch(self):
        with pytest.raises(InvalidCircuitError):
            Circuit.empty(4).then(Circuit.empty(3))

    @given(gates_strategy)
    def test_relabeling_preserves_gate_count_and_conjugates(self, gates):
        from repro.core import packed

        circuit = Circuit.from_gates(gates, 4)
        sigma = (2, 0, 3, 1)
        relabeled = circuit.relabeled(sigma)
        assert relabeled.gate_count == circuit.gate_count
        assert relabeled.to_word() == packed.conjugate_by_wire_perm(
            circuit.to_word(), sigma, 4
        )

    def test_implements(self):
        circuit = Circuit.parse("NOT(a)", 4)
        spec = [x ^ 1 for x in range(16)]
        assert circuit.implements(spec)
        assert not circuit.implements(list(range(16)))

    def test_repeated(self):
        circuit = Circuit.parse("NOT(a)", 4)
        assert circuit.repeated(2).to_word() == Circuit.empty(4).to_word()
        with pytest.raises(InvalidCircuitError):
            circuit.repeated(-1)


class TestMetrics:
    def test_depth_sequential(self):
        # All four gates share wire a: depth == gate count.
        circuit = Circuit.parse("NOT(a) CNOT(a,b) TOF(a,b,c) NOT(a)", 4)
        assert circuit.depth() == 4

    def test_depth_parallel(self):
        # NOT(a) and CNOT(c,d) commute on disjoint wires: depth 1.
        circuit = Circuit.parse("NOT(a) CNOT(c,d)", 4)
        assert circuit.depth() == 1

    def test_depth_empty(self):
        assert Circuit.empty(4).depth() == 0

    @given(gates_strategy)
    def test_depth_at_most_gate_count(self, gates):
        circuit = Circuit.from_gates(gates, 4)
        assert circuit.depth() <= circuit.gate_count
        if circuit.gate_count:
            assert circuit.depth() >= 1

    def test_ncv_cost(self):
        circuit = Circuit.parse("NOT(a) CNOT(a,b) TOF(a,b,c) TOF4(a,b,c,d)", 4)
        assert circuit.cost() == 1 + 1 + 5 + 13

    def test_custom_cost_model(self):
        circuit = Circuit.parse("NOT(a) TOF(a,b,c)", 4)
        assert circuit.cost({0: 2, 1: 3, 2: 7, 3: 11}) == 9

    def test_gate_histogram(self):
        circuit = Circuit.parse("NOT(a) NOT(b) TOF(a,b,c)", 4)
        assert circuit.gate_histogram() == {"NOT": 2, "TOF": 1}

    def test_used_wires(self):
        circuit = Circuit.parse("CNOT(a,b)", 4)
        assert circuit.used_wires() == frozenset({0, 1})


class TestSequenceProtocol:
    def test_len_iter_getitem(self):
        circuit = Circuit.parse("NOT(a) CNOT(a,b) TOF(a,b,c)", 4)
        assert len(circuit) == 3
        assert list(circuit) == list(circuit.gates)
        assert circuit[0] == NOT(0)
        sliced = circuit[1:]
        assert isinstance(sliced, Circuit)
        assert sliced.gate_count == 2

    def test_draw_contains_symbols(self):
        drawing = Circuit.parse("TOF(a,b,d)", 4).draw()
        assert "●" in drawing and "⊕" in drawing
        assert drawing.count("\n") == 3
