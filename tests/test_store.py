"""Tests for the repro.store subsystem: the .rdb flat binary store.

Covers the format round trip (write -> map -> byte-identical lookups),
the corruption edges (truncated header, bad magic, version skew,
checksum mismatch, capacity/length disagreement -- each a DatabaseError
naming the path), the registry (extension resolution, conversion,
sidecars), the read-only mapped table, and the db.map/db.verify trace
spans.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.perf as perf
from repro import store
from repro.errors import DatabaseError
from repro.store.format import _FIXED  # noqa: PLC2701 - format edge tests
from repro.synth.database import OptimalDatabase


@pytest.fixture(scope="module")
def rdb3(tmp_path_factory, db3):
    """The n=3 session database persisted as an .rdb store."""
    path = tmp_path_factory.mktemp("store") / "db-n3-k8.rdb"
    store.write_rdb(db3, path)
    return path


def _all_reps(db):
    return np.concatenate(
        [np.asarray(r, dtype=np.uint64) for r in db.reps_by_size if len(r)]
    )


# ----------------------------------------------------------------------
# Round trip and parity
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_map_preserves_parameters(self, rdb3, db3):
        mapped = store.map_database(rdb3)
        assert mapped.n_wires == db3.n_wires
        assert mapped.k == db3.k
        assert len(mapped.table) == len(db3.table)

    def test_lookup_batch_byte_identical(self, rdb3, db3):
        mapped = store.map_database(rdb3)
        rng = np.random.default_rng(7)
        keys = np.concatenate([
            rng.integers(0, 2**64, size=50_000, dtype=np.uint64),
            _all_reps(db3),
        ])
        expected = db3.table.lookup_batch(keys)
        got = mapped.table.lookup_batch(keys)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    def test_scalar_get_parity(self, rdb3, db3):
        mapped = store.map_database(rdb3)
        for rep in _all_reps(db3)[:200]:
            assert mapped.table.get(int(rep)) == db3.table.get(int(rep))
        assert mapped.table.get(0xDEAD_BEEF_0000_0001) is None

    def test_reps_views_identical(self, rdb3, db3):
        mapped = store.map_database(rdb3)
        assert len(mapped.reps_by_size) == len(db3.reps_by_size)
        for ours, theirs in zip(mapped.reps_by_size, db3.reps_by_size):
            assert np.array_equal(np.asarray(ours), np.asarray(theirs))

    def test_stats_match_in_ram_table(self, rdb3, db3):
        ours = store.map_database(rdb3).table.stats()
        theirs = db3.table.stats()
        assert ours.capacity == theirs.capacity
        assert ours.count == theirs.count
        assert ours.average_probe_length == theirs.average_probe_length
        assert ours.maximal_cluster_length == theirs.maximal_cluster_length

    def test_mapped_database_synthesizes(self, rdb3, db3):
        # The mapped database drives the search engine end to end.
        from repro.synth.search import MeetInTheMiddleSearch

        mapped = store.map_database(rdb3)
        lists = MeetInTheMiddleSearch.build_lists(mapped, 1)
        engine = MeetInTheMiddleSearch(mapped, lists)
        word = int(db3.reps_by_size[3][0])
        circuit = engine.minimal_circuit(word)
        assert circuit.gate_count == 3

    def test_optimal_database_map_staticmethod(self, rdb3):
        mapped = OptimalDatabase.map(rdb3)
        assert store.is_mapped(mapped)
        assert store.mapped_path(mapped) == rdb3

    def test_write_is_deterministic(self, tmp_path, db3):
        a = tmp_path / "a.rdb"
        b = tmp_path / "b.rdb"
        store.write_rdb(db3, a)
        store.write_rdb(db3, b)
        assert a.read_bytes() == b.read_bytes()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=64))
def test_hypothesis_npz_rdb_lookups_identical(tmp_path_factory, probes):
    """Property: .npz -> .rdb conversion preserves every lookup result."""
    base = tmp_path_factory.mktemp("hyp")
    from repro.synth.bfs import build_database

    db = build_database(2, 3)
    npz = base / "db.npz"
    rdb = base / "db.rdb"
    db.save(npz)
    store.convert(npz, rdb)
    loaded = OptimalDatabase.load(npz)
    mapped = store.map_database(rdb)
    keys = np.concatenate([
        np.array(probes, dtype=np.uint64),
        _all_reps(db),
    ])
    assert np.array_equal(
        mapped.table.lookup_batch(keys), loaded.table.lookup_batch(keys)
    )


# ----------------------------------------------------------------------
# Read-only mapped table
# ----------------------------------------------------------------------
class TestMmapTableReadOnly:
    def test_insert_refused_with_path(self, rdb3):
        table = store.map_database(rdb3).table
        with pytest.raises(DatabaseError, match="read-only mapping"):
            table.insert(1, 1)

    def test_insert_batch_refused(self, rdb3):
        table = store.map_database(rdb3).table
        with pytest.raises(DatabaseError, match=str(rdb3)):
            table.insert_batch(np.array([1], dtype=np.uint64), 1)

    def test_reserve_refused(self, rdb3):
        table = store.map_database(rdb3).table
        with pytest.raises(DatabaseError, match="read-only"):
            table.reserve(10)

    def test_keys_and_items_materialize(self, rdb3, db3):
        table = store.map_database(rdb3).table
        keys = table.keys()
        assert keys.shape[0] == len(db3.table)
        got_keys, got_values = table.items()
        assert got_keys.shape == got_values.shape == keys.shape

    def test_contains(self, rdb3, db3):
        table = store.map_database(rdb3).table
        rep = int(db3.reps_by_size[2][0])
        assert rep in table
        assert 0xDEAD_BEEF_0000_0001 not in table


# ----------------------------------------------------------------------
# Corruption edges (every error names the path)
# ----------------------------------------------------------------------
class TestCorruption:
    def test_missing_file(self, tmp_path):
        ghost = tmp_path / "ghost.rdb"
        with pytest.raises(DatabaseError, match="ghost.rdb"):
            store.map_database(ghost)

    def test_truncated_header(self, tmp_path, rdb3):
        stub = tmp_path / "stub.rdb"
        stub.write_bytes(rdb3.read_bytes()[:100])
        with pytest.raises(DatabaseError, match=r"truncated.*100 bytes"):
            store.map_database(stub)

    def test_bad_magic(self, tmp_path, rdb3):
        raw = bytearray(rdb3.read_bytes())
        raw[:8] = b"notanrdb"
        bad = tmp_path / "bad-magic.rdb"
        bad.write_bytes(bytes(raw))
        with pytest.raises(DatabaseError, match="bad magic"):
            store.map_database(bad)
        with pytest.raises(DatabaseError, match="bad-magic.rdb"):
            store.map_database(bad)

    def test_version_skew(self, tmp_path, rdb3):
        raw = bytearray(rdb3.read_bytes())
        struct.pack_into("<I", raw, 8, store.RDB_VERSION + 1)
        skewed = tmp_path / "skewed.rdb"
        skewed.write_bytes(bytes(raw))
        with pytest.raises(DatabaseError, match="repro db convert"):
            store.map_database(skewed)

    def test_checksum_mismatch(self, tmp_path, rdb3):
        raw = bytearray(rdb3.read_bytes())
        raw[store.HEADER_SIZE + 5] ^= 0xFF
        rotted = tmp_path / "rotted.rdb"
        rotted.write_bytes(bytes(raw))
        # Mapping alone does not checksum (O(page-fault) cold start)...
        store.map_database(rotted)
        # ...but the full verify pass catches the flipped byte.
        with pytest.raises(DatabaseError, match="checksum"):
            store.verify_store(rotted)
        with pytest.raises(DatabaseError, match="rotted.rdb"):
            store.verify_store(rotted)

    def test_capacity_bits_length_disagreement(self, tmp_path, rdb3):
        header = store.read_header(rdb3)
        raw = bytearray(rdb3.read_bytes())
        struct.pack_into("<I", raw, 24, header.capacity_bits + 1)
        liar = tmp_path / "liar.rdb"
        liar.write_bytes(bytes(raw))
        with pytest.raises(DatabaseError, match="liar.rdb"):
            store.map_database(liar)

    def test_truncated_payload(self, tmp_path, rdb3):
        raw = rdb3.read_bytes()
        short = tmp_path / "short.rdb"
        short.write_bytes(raw[:-64])
        with pytest.raises(DatabaseError, match=r"short.rdb.*requires"):
            store.map_database(short)

    def test_capacity_bits_out_of_range(self, tmp_path, rdb3):
        raw = bytearray(rdb3.read_bytes())
        struct.pack_into("<I", raw, 24, 60)
        wild = tmp_path / "wild.rdb"
        wild.write_bytes(bytes(raw))
        with pytest.raises(DatabaseError, match="capacity_bits"):
            store.map_database(wild)

    def test_header_roundtrip(self, rdb3):
        header = store.read_header(rdb3)
        assert header.version == store.RDB_VERSION
        repacked = store.StoreHeader.unpack(header.pack(), rdb3)
        assert repacked == header

    def test_fixed_header_fits(self):
        assert _FIXED.size + 8 * (store.MAX_K + 1) <= store.HEADER_SIZE


# ----------------------------------------------------------------------
# Registry: resolution, conversion, verify
# ----------------------------------------------------------------------
class TestRegistry:
    def test_store_format(self):
        assert store.store_format("x/a.rdb") == "rdb"
        assert store.store_format("x/a.NPZ") == "npz"
        with pytest.raises(DatabaseError, match="a.json"):
            store.store_format("x/a.json")

    def test_open_database_both_formats(self, tmp_path, db3):
        npz = tmp_path / "db.npz"
        rdb = tmp_path / "db.rdb"
        db3.save(npz)
        store.write_rdb(db3, rdb)
        via_npz = store.open_database(npz)
        via_rdb = store.open_database(rdb)
        assert not store.is_mapped(via_npz)
        assert store.is_mapped(via_rdb)
        keys = _all_reps(db3)
        assert np.array_equal(
            via_npz.table.lookup_batch(keys), via_rdb.table.lookup_batch(keys)
        )

    def test_rdb_sidecar_and_resolution(self, tmp_path, db3):
        npz = tmp_path / "db-n3-k8.npz"
        db3.save(npz)
        assert store.rdb_sidecar(npz) == tmp_path / "db-n3-k8.rdb"
        assert store.resolve_store(npz) == npz  # no sidecar yet
        store.write_rdb(db3, store.rdb_sidecar(npz))
        assert store.resolve_store(npz) == tmp_path / "db-n3-k8.rdb"

    def test_convert_rdb_to_npz(self, tmp_path, rdb3, db3):
        npz = tmp_path / "exported.npz"
        store.convert(rdb3, npz)
        exported = OptimalDatabase.load(npz)
        keys = _all_reps(db3)
        assert np.array_equal(
            exported.table.lookup_batch(keys), db3.table.lookup_batch(keys)
        )

    def test_verify_ok(self, rdb3, db3):
        info = store.verify_store(rdb3)
        assert info.format == "rdb"
        assert info.entries == len(db3.table)
        assert info.k == db3.k

    def test_verify_npz(self, tmp_path, db3):
        npz = tmp_path / "db.npz"
        db3.save(npz)
        info = store.verify_store(npz)
        assert info.format == "npz"
        assert info.entries == len(db3.table)

    def test_describe_reports_stats(self, rdb3, db3):
        info = store.describe(rdb3)
        assert info.size_bytes == rdb3.stat().st_size
        assert info.stats.count == len(db3.table)
        assert any("Load Factor" in row for row in info.format_rows())


# ----------------------------------------------------------------------
# Synthesizer integration: sidecar write and store preference
# ----------------------------------------------------------------------
class TestSynthesizerIntegration:
    def test_prepare_writes_sidecar_then_maps(self, tmp_path):
        from repro.synth.synthesizer import OptimalSynthesizer

        first = OptimalSynthesizer(n_wires=3, k=3, cache_dir=tmp_path)
        first.prepare()
        assert first.store_path.exists(), "sidecar not written after build"
        assert not store.is_mapped(first.database)

        second = OptimalSynthesizer(n_wires=3, k=3, cache_dir=tmp_path)
        second.prepare()
        assert store.is_mapped(second.database), "sidecar not preferred"
        assert store.mapped_path(second.database) == first.store_path

    def test_prepare_falls_back_on_corrupt_sidecar(self, tmp_path):
        from repro.synth.synthesizer import OptimalSynthesizer

        OptimalSynthesizer(n_wires=3, k=3, cache_dir=tmp_path).prepare()
        sidecar = tmp_path / "db-n3-k3.rdb"
        sidecar.write_bytes(b"garbage")
        synth = OptimalSynthesizer(n_wires=3, k=3, cache_dir=tmp_path)
        synth.prepare()  # must not raise: falls back to the .npz
        assert not store.is_mapped(synth.database)
        assert synth.size("[1,0,3,2,5,4,7,6]") == 1

    def test_prepare_from_store(self, rdb3):
        from repro.synth.synthesizer import OptimalSynthesizer

        synth = OptimalSynthesizer(n_wires=3, k=8, cache_dir=False)
        synth.prepare_from_store(rdb3)
        assert store.is_mapped(synth.database)
        assert synth.size("[1,0,3,2,5,4,7,6]") == 1

    def test_prepare_from_store_rejects_mismatch(self, rdb3):
        from repro.synth.synthesizer import OptimalSynthesizer

        synth = OptimalSynthesizer(n_wires=4, k=4, cache_dir=False)
        with pytest.raises(DatabaseError, match="n_wires"):
            synth.prepare_from_store(rdb3)

    def test_handle_carries_store_path(self, tmp_path):
        from repro.synth.synthesizer import OptimalSynthesizer

        synth = OptimalSynthesizer(n_wires=3, k=3, cache_dir=tmp_path)
        handle = synth.handle()
        assert handle.store_path == tmp_path / "db-n3-k3.rdb"
        assert handle.store_path.exists()


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_map_and_verify_emit_spans(self, rdb3):
        tracer = perf.enable()
        tracer.reset()
        try:
            store.map_database(rdb3)
            store.verify_store(rdb3)
        finally:
            perf.disable()
        aggregate = tracer.aggregate()
        assert "db.map" in aggregate
        assert "db.verify" in aggregate
