"""Tests for OptimalDatabase: lookups, persistence, peeling."""

import numpy as np
import pytest

from repro.core import equivalence, packed
from repro.errors import DatabaseError
from repro.synth.database import OptimalDatabase


class TestLookups:
    def test_identity_size_zero(self, db4_k4):
        assert db4_k4.size_of(packed.identity(4)) == 0

    def test_gate_size_one(self, db4_k4):
        from repro.core.gates import gate_words

        for word in gate_words(4):
            assert db4_k4.size_of(word) == 1

    def test_size_lookup_entire_class(self, db4_k4, rng):
        """Every member of a class gets the class size."""
        for _ in range(10):
            reps = db4_k4.reps_by_size[3]
            word = int(reps[rng.randrange(len(reps))])
            for member in equivalence.equivalence_class(word, 4):
                assert db4_k4.size_of(member) == 3

    def test_missing_beyond_k(self, db4_k4):
        from repro.benchmarks_data import get_benchmark

        hwb4 = get_benchmark("hwb4").permutation()  # size 11 > 4
        assert db4_k4.size_of(hwb4.word) is None
        assert hwb4.word not in db4_k4

    def test_sizes_batch(self, db4_k4):
        words = np.concatenate(
            [db4_k4.reps_by_size[2][:10], db4_k4.reps_by_size[4][:10]]
        )
        sizes = db4_k4.sizes_batch(words, assume_canonical=True)
        assert sizes[:10].tolist() == [2] * 10
        assert sizes[10:].tolist() == [4] * 10

    def test_sizes_batch_canonicalizes_by_default(self, db4_k4, rng):
        word = int(db4_k4.reps_by_size[3][7])
        member = sorted(equivalence.equivalence_class(word, 4))[-1]
        sizes = db4_k4.sizes_batch(np.array([member], dtype=np.uint64))
        assert sizes.tolist() == [3]


class TestPersistence:
    def test_save_load_roundtrip(self, db4_k4, tmp_path):
        path = tmp_path / "db.npz"
        db4_k4.save(path)
        loaded = OptimalDatabase.load(path)
        assert loaded.n_wires == 4 and loaded.k == 4
        assert loaded.reduced_counts() == db4_k4.reduced_counts()
        for a, b in zip(loaded.reps_by_size, db4_k4.reps_by_size):
            assert np.array_equal(a, b)
        assert loaded.size_of(packed.identity(4)) == 0

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatabaseError):
            OptimalDatabase.load(tmp_path / "nope.npz")

    def test_save_creates_directories(self, db4_k4, tmp_path):
        path = tmp_path / "deep" / "nested" / "db.npz"
        db4_k4.save(path)
        assert path.exists()


class TestPeeling:
    def test_peel_last_gate_reduces_size(self, db4_k4, rng):
        for size in (2, 3, 4):
            reps = db4_k4.reps_by_size[size]
            for _ in range(5):
                word = int(reps[rng.randrange(len(reps))])
                gate, rest = db4_k4.peel_last_gate(word, size)
                assert db4_k4.size_of(rest) == size - 1
                # Appending the gate back reproduces the function.
                assert packed.compose(rest, gate.to_word(4), 4) == word

    def test_peel_inconsistent_raises(self, db4_k4):
        from repro.benchmarks_data import get_benchmark

        word = get_benchmark("hwb4").permutation().word
        with pytest.raises(DatabaseError):
            db4_k4.peel_last_gate(word, 1)
