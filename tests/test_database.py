"""Tests for OptimalDatabase: lookups, persistence, peeling."""

import numpy as np
import pytest

from repro.core import equivalence, packed
from repro.errors import DatabaseError
from repro.synth.database import OptimalDatabase


class TestLookups:
    def test_identity_size_zero(self, db4_k4):
        assert db4_k4.size_of(packed.identity(4)) == 0

    def test_gate_size_one(self, db4_k4):
        from repro.core.gates import gate_words

        for word in gate_words(4):
            assert db4_k4.size_of(word) == 1

    def test_size_lookup_entire_class(self, db4_k4, rng):
        """Every member of a class gets the class size."""
        for _ in range(10):
            reps = db4_k4.reps_by_size[3]
            word = int(reps[rng.randrange(len(reps))])
            for member in equivalence.equivalence_class(word, 4):
                assert db4_k4.size_of(member) == 3

    def test_missing_beyond_k(self, db4_k4):
        from repro.benchmarks_data import get_benchmark

        hwb4 = get_benchmark("hwb4").permutation()  # size 11 > 4
        assert db4_k4.size_of(hwb4.word) is None
        assert hwb4.word not in db4_k4

    def test_sizes_batch(self, db4_k4):
        words = np.concatenate(
            [db4_k4.reps_by_size[2][:10], db4_k4.reps_by_size[4][:10]]
        )
        sizes = db4_k4.sizes_batch(words, assume_canonical=True)
        assert sizes[:10].tolist() == [2] * 10
        assert sizes[10:].tolist() == [4] * 10

    def test_sizes_batch_canonicalizes_by_default(self, db4_k4, rng):
        word = int(db4_k4.reps_by_size[3][7])
        member = sorted(equivalence.equivalence_class(word, 4))[-1]
        sizes = db4_k4.sizes_batch(np.array([member], dtype=np.uint64))
        assert sizes.tolist() == [3]

    def test_sizes_batch_assume_canonical_missing_is_255(self, db4_k4):
        """Canonical words of absent classes come back as MISSING = 255."""
        from repro.benchmarks_data import get_benchmark

        hwb4 = get_benchmark("hwb4").permutation()  # size 11 > k = 4
        canon = equivalence.canonical(hwb4.word, 4)
        present = int(db4_k4.reps_by_size[2][0])
        sizes = db4_k4.sizes_batch(
            np.array([canon, present], dtype=np.uint64), assume_canonical=True
        )
        assert db4_k4.MISSING == 255
        assert sizes.tolist() == [255, 2]
        assert sizes.dtype == np.uint8

    def test_sizes_batch_assume_canonical_skips_folding(self, db4_k4):
        """With assume_canonical=True a non-canonical member is NOT folded
        to its representative, so it reads as MISSING."""
        word = int(db4_k4.reps_by_size[3][7])
        member = sorted(equivalence.equivalence_class(word, 4))[-1]
        assert member != word  # genuinely non-canonical
        sizes = db4_k4.sizes_batch(
            np.array([member], dtype=np.uint64), assume_canonical=True
        )
        assert sizes.tolist() == [db4_k4.MISSING]

    def test_canonical_key_matches_equivalence(self, db4_k4, rng):
        reps = db4_k4.reps_by_size[3]
        word = int(reps[rng.randrange(len(reps))])
        for member in equivalence.equivalence_class(word, 4):
            assert db4_k4.canonical_key(member) == word

    def test_lookup_with_keys(self, db4_k4):
        word = int(db4_k4.reps_by_size[3][1])
        members = sorted(equivalence.equivalence_class(word, 4))
        keys, sizes = db4_k4.lookup_with_keys(
            np.array(members, dtype=np.uint64)
        )
        assert set(keys.tolist()) == {word}
        assert set(sizes.tolist()) == {3}


class TestPersistence:
    def test_save_load_roundtrip(self, db4_k4, tmp_path):
        path = tmp_path / "db.npz"
        db4_k4.save(path)
        loaded = OptimalDatabase.load(path)
        assert loaded.n_wires == 4 and loaded.k == 4
        assert loaded.reduced_counts() == db4_k4.reduced_counts()
        for a, b in zip(loaded.reps_by_size, db4_k4.reps_by_size):
            assert np.array_equal(a, b)
        assert loaded.size_of(packed.identity(4)) == 0

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DatabaseError):
            OptimalDatabase.load(tmp_path / "nope.npz")

    def test_save_creates_directories(self, db4_k4, tmp_path):
        path = tmp_path / "deep" / "nested" / "db.npz"
        db4_k4.save(path)
        assert path.exists()

    def test_load_not_an_archive(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(DatabaseError, match="garbage.npz"):
            OptimalDatabase.load(path)

    def test_load_truncated_zip(self, db4_k4, tmp_path):
        """A file cut off mid-archive (still starting with the zip magic)
        raises DatabaseError, not a raw zipfile.BadZipFile."""
        path = tmp_path / "cut.npz"
        db4_k4.save(path)
        path.write_bytes(path.read_bytes()[:200])
        with pytest.raises(DatabaseError, match="cut.npz"):
            OptimalDatabase.load(path)

    def test_load_missing_meta(self, tmp_path):
        path = tmp_path / "no_meta.npz"
        np.savez(path, reps_0=np.array([0], dtype=np.uint64))
        with pytest.raises(DatabaseError, match="missing 'meta'"):
            OptimalDatabase.load(path)

    def test_load_malformed_meta(self, tmp_path):
        path = tmp_path / "bad_meta.npz"
        np.savez(path, meta=np.array([4], dtype=np.int64))
        with pytest.raises(DatabaseError, match="meta"):
            OptimalDatabase.load(path)

    def test_load_invalid_meta_values(self, tmp_path):
        path = tmp_path / "bad_values.npz"
        np.savez(path, meta=np.array([9, -1], dtype=np.int64))
        with pytest.raises(DatabaseError, match="invalid meta"):
            OptimalDatabase.load(path)

    def test_load_truncated_reps(self, db4_k4, tmp_path):
        """A save missing one reps_{size} array names the gap and the path."""
        path = tmp_path / "truncated.npz"
        arrays = {
            f"reps_{size}": reps
            for size, reps in enumerate(db4_k4.reps_by_size)
            if size != 2
        }
        arrays["meta"] = np.array([4, 4], dtype=np.int64)
        np.savez(path, **arrays)
        with pytest.raises(DatabaseError) as excinfo:
            OptimalDatabase.load(path)
        assert "reps_2" in str(excinfo.value)
        assert "truncated.npz" in str(excinfo.value)

    def test_from_reps_empty_rejected(self):
        with pytest.raises(DatabaseError, match="empty"):
            OptimalDatabase.from_reps(4, 0, [])
        with pytest.raises(DatabaseError, match="empty"):
            OptimalDatabase.from_reps(
                4, 1, [np.array([], dtype=np.uint64)] * 2
            )


class TestPeeling:
    def test_peel_last_gate_reduces_size(self, db4_k4, rng):
        for size in (2, 3, 4):
            reps = db4_k4.reps_by_size[size]
            for _ in range(5):
                word = int(reps[rng.randrange(len(reps))])
                gate, rest = db4_k4.peel_last_gate(word, size)
                assert db4_k4.size_of(rest) == size - 1
                # Appending the gate back reproduces the function.
                assert packed.compose(rest, gate.to_word(4), 4) == word

    def test_peel_inconsistent_raises(self, db4_k4):
        from repro.benchmarks_data import get_benchmark

        word = get_benchmark("hwb4").permutation().word
        with pytest.raises(DatabaseError):
            db4_k4.peel_last_gate(word, 1)

    def test_peel_inconsistent_message_names_word(self, db4_k4):
        """The inconsistency error identifies the offending word and size."""
        from repro.benchmarks_data import get_benchmark

        word = get_benchmark("hwb4").permutation().word
        with pytest.raises(DatabaseError, match="inconsistent") as excinfo:
            db4_k4.peel_last_gate(word, 1)
        assert f"{word:#x}" in str(excinfo.value)

    def test_peel_wrong_claimed_size_raises(self, db4_k4):
        """Claiming size s for a word whose true size is not s cannot find
        a peel that lands on size s - 1 ... unless a neighbor happens to
        have that size; use size 1 against identity (size 0) which would
        need a size-0 neighbor == identity itself."""
        from repro.core import packed

        identity = packed.identity(4)
        # identity has size 0; peeling at claimed size 0 loops zero times in
        # callers, but a direct call with size=-1 finds nothing of size -2.
        with pytest.raises(DatabaseError):
            db4_k4.peel_last_gate(identity, -1)
