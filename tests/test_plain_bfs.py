"""Tests for the non-reduced BFS baseline (Prasad-style)."""

from repro.core import packed
from repro.synth.plain_bfs import plain_bfs, plain_bfs_counts


class TestPlainBfs:
    def test_counts_match_table4(self):
        assert plain_bfs_counts(4, 3) == [1, 32, 784, 16204]

    def test_reduction_factor_vs_reduced_engine(self, db4_k4):
        """The paper's ×48 claim: raw states / reduced states ≈ 48."""
        raw = plain_bfs(4, 4)
        raw_total = raw.states_stored
        reduced_total = sum(db4_k4.reduced_counts())
        ratio = raw_total / reduced_total
        assert 44 <= ratio <= 48

    def test_sizes_agree_with_reduced_database(self, db4_k4, rng):
        raw = plain_bfs(4, 4)
        keys = raw.table.keys()
        for _ in range(40):
            word = int(keys[rng.randrange(len(keys))])
            assert raw.size_of(word) == db4_k4.size_of(word)

    def test_identity(self):
        result = plain_bfs(4, 1)
        assert result.size_of(packed.identity(4)) == 0

    def test_n3_exhaustive(self):
        result = plain_bfs(3, 10)
        assert sum(result.counts) == 40320
        assert result.counts[-2:] == [10253, 577] or result.counts[-1] == 0
