"""Tests for the equivalence-class machinery (paper §3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import equivalence, packed
from repro.core.combinatorics import factorial
from repro.core.gates import gate_words


def perm_words(n_wires):
    size = 1 << n_wires
    return st.permutations(list(range(size))).map(packed.pack)


class TestConjugates:
    @given(perm_words(4))
    def test_conjugates_count(self, word):
        conj = equivalence.conjugates(word, 4)
        assert len(conj) == factorial(4)
        assert conj[0] == word

    @given(perm_words(4))
    @settings(deadline=None)
    def test_conjugates_match_wire_perm_reference(self, word):
        """The plain-changes walk produces exactly the set of conjugates
        by all 24 wire permutations (slow reference check)."""
        from repro.core.combinatorics import all_permutations

        expected = {
            packed.conjugate_by_wire_perm(word, sigma, 4)
            for sigma in all_permutations(4)
        }
        assert set(equivalence.conjugates(word, 4)) == expected

    @given(perm_words(4))
    def test_conjugates_with_wire_perms_are_consistent(self, word):
        for conjugate, sigma in equivalence.conjugates_with_wire_perms(word, 4):
            assert packed.conjugate_by_wire_perm(word, sigma, 4) == conjugate


class TestCanonical:
    @given(perm_words(4))
    def test_canonical_is_minimum_of_class(self, word):
        members = equivalence.equivalence_class(word, 4)
        assert equivalence.canonical(word, 4) == min(members)

    @given(perm_words(4))
    def test_canonical_is_class_invariant(self, word):
        canon = equivalence.canonical(word, 4)
        for member in equivalence.equivalence_class(word, 4):
            assert equivalence.canonical(member, 4) == canon

    @given(perm_words(4))
    def test_canonical_invariant_under_inversion(self, word):
        inverse = packed.inverse(word, 4)
        assert equivalence.canonical(word, 4) == equivalence.canonical(inverse, 4)

    @given(perm_words(4))
    def test_is_canonical(self, word):
        canon = equivalence.canonical(word, 4)
        assert equivalence.is_canonical(canon, 4)
        if word != canon:
            assert not equivalence.is_canonical(word, 4)

    def test_identity_is_its_own_class(self):
        identity = packed.identity(4)
        assert equivalence.equivalence_class(identity, 4) == {identity}
        assert equivalence.class_size(identity, 4) == 1


class TestClassSize:
    @given(perm_words(4))
    def test_class_size_divides_48(self, word):
        """Orbit sizes divide the acting group order 2 * 4! = 48."""
        size = equivalence.class_size(word, 4)
        assert 48 % size == 0

    def test_gates_form_four_classes(self):
        """The 32 gates split into the 4 classes of Table 4 (size 1)."""
        canons = {equivalence.canonical(w, 4) for w in gate_words(4)}
        assert len(canons) == 4

    def test_not_gate_class_smaller_than_48(self):
        """Paper: 'if f = NOT(a), there exist only 4 distinct functions of
        the form f_sigma' -- with inversion the class stays at 4 because
        NOT gates are involutions."""
        from repro.core.gates import NOT

        word = NOT(0).to_word(4)
        conjugates = set(equivalence.conjugates(word, 4))
        assert len(conjugates) == 4
        assert equivalence.class_size(word, 4) == 4

    @given(perm_words(3))
    def test_class_size_divides_12_n3(self, word):
        size = equivalence.class_size(word, 3)
        assert 12 % size == 0


class TestFindConjugatingPerm:
    @given(perm_words(4))
    def test_finds_witness_for_conjugates(self, word):
        for conjugate in list(equivalence.conjugates(word, 4))[:6]:
            sigma = equivalence.find_conjugating_perm(word, conjugate, 4)
            assert sigma is not None
            assert packed.conjugate_by_wire_perm(word, sigma, 4) == conjugate

    def test_returns_none_for_non_conjugates(self):
        from repro.core.gates import CNOT, NOT

        not_word = NOT(0).to_word(4)
        cnot_word = CNOT(0, 1).to_word(4)
        assert equivalence.find_conjugating_perm(not_word, cnot_word, 4) is None
