"""Unit and property tests for the packed-word arithmetic (paper §3.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import packed
from repro.errors import InvalidPermutationError


def perm_words(n_wires):
    """Hypothesis strategy: a random packed permutation on n wires."""
    size = 1 << n_wires
    return st.permutations(list(range(size))).map(packed.pack)


class TestIdentityAndPacking:
    def test_identity_word_n4(self):
        assert packed.identity(4) == 0xFEDCBA9876543210

    def test_identity_word_n2(self):
        assert packed.identity(2) == 0x3210

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_identity_fixes_everything(self, n):
        word = packed.identity(n)
        for x in range(1 << n):
            assert packed.get(word, x) == x

    def test_pack_unpack_roundtrip(self):
        values = [3, 1, 0, 2]
        assert packed.unpack(packed.pack(values), 2) == tuple(values)

    def test_pack_rejects_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            packed.pack([0, 0, 1, 2])

    def test_pack_rejects_bad_length(self):
        with pytest.raises(InvalidPermutationError):
            packed.pack([0, 1, 2])

    @given(perm_words(4))
    def test_is_valid_accepts_permutations(self, word):
        assert packed.is_valid(word, 4)

    def test_is_valid_rejects_sentinel(self):
        assert not packed.is_valid(packed.EMPTY_WORD, 4)

    def test_is_valid_rejects_high_bits_for_small_n(self):
        word = packed.identity(3) | (1 << 60)
        assert not packed.is_valid(word, 3)


class TestComposeInverse:
    @given(perm_words(4), perm_words(4))
    def test_compose_matches_pointwise(self, p, q):
        r = packed.compose(p, q, 4)
        for x in range(16):
            assert packed.get(r, x) == packed.get(q, packed.get(p, x))

    @given(perm_words(4), perm_words(4))
    def test_compose_matches_paper_port(self, p, q):
        assert packed.compose(p, q, 4) == packed.compose4_paper(p, q)

    @given(perm_words(3), perm_words(3))
    def test_compose_n3(self, p, q):
        r = packed.compose(p, q, 3)
        for x in range(8):
            assert packed.get(r, x) == packed.get(q, packed.get(p, x))

    @given(perm_words(4))
    def test_inverse_roundtrip(self, p):
        identity = packed.identity(4)
        assert packed.compose(p, packed.inverse(p, 4), 4) == identity
        assert packed.compose(packed.inverse(p, 4), p, 4) == identity
        assert packed.inverse(packed.inverse(p, 4), 4) == p

    @given(perm_words(4), perm_words(4), perm_words(4))
    def test_compose_associative(self, p, q, r):
        left = packed.compose(packed.compose(p, q, 4), r, 4)
        right = packed.compose(p, packed.compose(q, r, 4), 4)
        assert left == right

    @given(perm_words(4))
    def test_identity_is_neutral(self, p):
        identity = packed.identity(4)
        assert packed.compose(p, identity, 4) == p
        assert packed.compose(identity, p, 4) == p


class TestConjugation:
    @given(perm_words(4))
    def test_adjacent_conjugation_matches_paper_port(self, p):
        assert packed.conjugate_adjacent(p, 0, 4) == packed.conjugate01_paper(p)

    @given(perm_words(4))
    def test_adjacent_conjugation_is_involution(self, p):
        for pair in range(3):
            twice = packed.conjugate_adjacent(
                packed.conjugate_adjacent(p, pair, 4), pair, 4
            )
            assert twice == p

    @given(perm_words(4))
    def test_adjacent_matches_general_conjugation(self, p):
        swaps = {0: (1, 0, 2, 3), 1: (0, 2, 1, 3), 2: (0, 1, 3, 2)}
        for pair, wire_perm in swaps.items():
            assert packed.conjugate_adjacent(
                p, pair, 4
            ) == packed.conjugate_by_wire_perm(p, wire_perm, 4)

    @given(perm_words(4))
    def test_conjugation_preserves_validity(self, p):
        for pair in range(3):
            assert packed.is_valid(packed.conjugate_adjacent(p, pair, 4), 4)

    @given(perm_words(3))
    def test_conjugation_n3(self, p):
        for pair in range(2):
            conjugated = packed.conjugate_adjacent(p, pair, 3)
            assert packed.is_valid(conjugated, 3)
            twice = packed.conjugate_adjacent(conjugated, pair, 3)
            assert twice == p

    @given(perm_words(4), perm_words(4))
    def test_conjugation_is_homomorphism(self, p, q):
        """conj(p·q) == conj(p)·conj(q) for the adjacent swap."""
        composed = packed.compose(p, q, 4)
        lhs = packed.conjugate_adjacent(composed, 0, 4)
        rhs = packed.compose(
            packed.conjugate_adjacent(p, 0, 4),
            packed.conjugate_adjacent(q, 0, 4),
            4,
        )
        assert lhs == rhs

    def test_identity_is_conjugation_fixed_point(self):
        identity = packed.identity(4)
        for pair in range(3):
            assert packed.conjugate_adjacent(identity, pair, 4) == identity


class TestRandomWord:
    def test_random_word_is_valid(self, rng):
        for _ in range(50):
            assert packed.is_valid(packed.random_word(4, rng), 4)

    def test_bad_wire_count_rejected(self):
        with pytest.raises(InvalidPermutationError):
            packed.identity(5)
