"""Tests for the Reed-Muller/ANF spectral analysis (paper §4.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.reed_muller import (
    ReedMullerSpectrum,
    anf_degree,
    anf_to_terms,
    anf_transform,
    degree_profile,
)
from repro.core.permutation import Permutation


class TestAnfTransform:
    def test_constant_zero(self):
        assert anf_transform([0, 0, 0, 0]) == [0, 0, 0, 0]

    def test_constant_one(self):
        assert anf_transform([1, 1, 1, 1]) == [1, 0, 0, 0]

    def test_single_variable(self):
        # f(x0, x1) = x0: truth column [0,1,0,1]
        assert anf_transform([0, 1, 0, 1]) == [0, 1, 0, 0]

    def test_and_function(self):
        # f = x0 AND x1: [0,0,0,1] -> monomial x0·x1 only.
        assert anf_transform([0, 0, 0, 1]) == [0, 0, 0, 1]

    def test_xor_function(self):
        assert anf_transform([0, 1, 1, 0]) == [0, 1, 1, 0]

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=8))
    def test_transform_is_involution(self, column):
        assert anf_transform(anf_transform(column)) == column

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            anf_transform([0, 1, 0])

    def test_degree_and_terms(self):
        coefficients = anf_transform([0, 0, 0, 1])
        assert anf_degree(coefficients) == 2
        assert anf_to_terms(coefficients, 2) == ["a·b"]


class TestSpectra:
    def test_identity_is_linear(self):
        spectrum = ReedMullerSpectrum.of(Permutation.identity(4))
        assert spectrum.is_linear()
        assert spectrum.degree() == 1

    def test_not_gate_is_linear_with_constant(self):
        perm = Permutation.from_values([x ^ 1 for x in range(16)])
        spectrum = ReedMullerSpectrum.of(perm)
        assert spectrum.is_linear()
        assert "1" in spectrum.output_terms(0)

    def test_toffoli_is_quadratic(self):
        perm = Permutation.from_values(
            [x ^ (((x & 1) & ((x >> 1) & 1)) << 2) for x in range(16)]
        )
        spectrum = ReedMullerSpectrum.of(perm)
        assert spectrum.degree() == 2
        assert not spectrum.is_linear()
        assert degree_profile(perm) == [1, 1, 2, 1]

    def test_spectral_linearity_matches_gf2(self):
        """Paper §4.3's spectral definition agrees with the matrix one
        on every stored linear function sample and on benchmarks."""
        from repro.benchmarks_data import BENCHMARKS

        for bench in BENCHMARKS:
            perm = bench.permutation()
            assert ReedMullerSpectrum.of(perm).is_linear() == perm.is_affine()

    def test_paper_linear_example_spectrum(self):
        values = []
        for x in range(16):
            a, b, c, d = x & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1
            values.append(
                (b ^ 1) | ((a ^ c ^ 1) << 1) | ((d ^ 1) << 2) | (a << 3)
            )
        spectrum = ReedMullerSpectrum.of(Permutation.from_values(values))
        assert spectrum.is_linear()
        # Output 0 is b ⊕ 1.
        assert sorted(spectrum.output_terms(0)) == ["1", "b"]
        # Output 1 is a ⊕ c ⊕ 1.
        assert sorted(spectrum.output_terms(1)) == ["1", "a", "c"]

    def test_hwb4_is_maximally_nonlinear(self):
        from repro.benchmarks_data import get_benchmark

        spectrum = ReedMullerSpectrum.of(get_benchmark("hwb4").permutation())
        assert spectrum.degree() == 3

    def test_term_count_positive(self):
        spectrum = ReedMullerSpectrum.of(Permutation.identity(3))
        assert spectrum.term_count() == 3  # one linear term per output

    @given(st.permutations(list(range(16))))
    def test_linear_test_agrees_with_gf2_everywhere(self, values):
        perm = Permutation.from_values(list(values))
        assert ReedMullerSpectrum.of(perm).is_linear() == perm.is_affine()
