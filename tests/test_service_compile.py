"""Tests for the service-layer compile op: daemon wiring, deadline
degradation, shard routing byte-identity, and the TCP client helper."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    ServiceClient,
    ServiceConfig,
    SynthesisService,
    TCPDaemon,
)
from repro.service import protocol
from repro.service.resilience import Deadline
from repro.service.sharding import (
    InProcessShard,
    ShardingConfig,
    ShardRouter,
    ShardSupervisor,
)
from repro.specs import TruthTableSpec

# The designated don't-care table: f(x) = x3 with rows 10 and 13 free
# (2 completions, exhaustive, optimal size 3 at k=4 reach).
DC_SPEC = {
    "kind": "truth_table",
    "n_inputs": 4,
    "rows": [0, 0, 0, 0, 0, 0, 0, 0, 1, 1, None, 1, 1, None, 1, 1],
}
AFFINE_SPEC = {
    "kind": "affine_xor",
    "matrix": [[1, 0], [1, 1]],
    "constant": [0, 1],
}
SHIFT = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"


@pytest.fixture()
def service(handle4):
    svc = SynthesisService(
        handle4,
        config=ServiceConfig(
            n_wires=4, k=4, max_list_size=3, batch_window=0.0
        ),
    )
    svc.start()
    yield svc
    svc.shutdown()


def submit(target, op, **fields) -> dict:
    line = json.dumps({"id": fields.pop("id", 1), "op": op, **fields})
    return json.loads(target.handle_line(line))


def make_cluster(handle4, count=3):
    supervisor = ShardSupervisor(config=ShardingConfig(probe_interval=30.0))
    shards = []
    for index in range(count):
        svc = SynthesisService(
            handle4,
            config=ServiceConfig(
                n_wires=4, k=4, max_list_size=3, batch_window=0.0
            ),
        ).start()
        shard = InProcessShard(f"shard-{index}", svc).start()
        shards.append(shard)
        supervisor.add(shard)
    return ShardRouter(supervisor, n_wires=4), supervisor, shards


# ----------------------------------------------------------------------
# Single daemon
# ----------------------------------------------------------------------
class TestDaemonCompile:
    def test_compile_dc_table(self, service):
        body = submit(service, "compile", spec=DC_SPEC)
        assert body["ok"], body
        result = body["result"]
        assert result["source"] == "engine"
        assert result["guarantee"] == "optimal"
        assert result["size"] == 3
        emb = result["embedding"]
        assert emb["exhaustive"] is True and emb["completions_tried"] == 2
        assert emb["dont_care_rows"] == 2
        assert emb["output_wires"] == [3]
        # Re-simulate the chosen completion on every specified row.
        values = json.loads(emb["spec"])
        for x, want in enumerate(DC_SPEC["rows"]):
            if want is not None:
                assert (values[x] >> 3) & 1 == want

    def test_repeat_is_byte_identical(self, service):
        line = json.dumps({"id": 1, "op": "compile", "spec": DC_SPEC})
        assert service.handle_line(line) == service.handle_line(line)

    def test_affine_compiles_optimal(self, service):
        body = submit(service, "compile", spec=AFFINE_SPEC)
        assert body["ok"], body
        assert body["result"]["guarantee"] == "optimal"
        assert body["result"]["embedding"]["garbage_wires"] == []

    def test_batch_matches_singles(self, service):
        singles = [
            submit(service, "compile", spec=DC_SPEC)["result"],
            submit(service, "compile", spec=AFFINE_SPEC)["result"],
        ]
        body = submit(
            service,
            "batch",
            requests=[
                {"op": "compile", "spec": DC_SPEC},
                {"op": "compile", "spec": AFFINE_SPEC},
            ],
        )
        assert body["ok"], body
        batched = [item["result"] for item in body["result"]["results"]]
        assert batched == singles

    def test_named_engine(self, service):
        body = submit(service, "compile", spec=DC_SPEC, engine="heuristic")
        assert body["ok"], body
        result = body["result"]
        assert result["engine"] == "heuristic"
        assert result["source"] == "engine"
        values = json.loads(result["embedding"]["spec"])
        for x, want in enumerate(DC_SPEC["rows"]):
            if want is not None:
                assert (values[x] >> 3) & 1 == want

    def test_samples_option_is_honoured(self, service):
        # AND has a huge completion space: `samples` caps the tries.
        and_spec = {"kind": "truth_table", "n_inputs": 2,
                    "rows": [0, 0, 0, 1]}
        body = submit(service, "compile", spec=and_spec, samples=5)
        assert body["ok"], body
        emb = body["result"]["embedding"]
        # natural-extension seed + at most 5 sampled completions
        assert emb["completions_tried"] <= 6
        assert body["result"]["guarantee"] == "upper_bound"

    @pytest.mark.parametrize(
        "fields, kind",
        [
            ({"spec": {"kind": "nope"}}, "invalid_spec"),
            ({"spec": {"kind": "truth_table", "n_inputs": 4,
                       "rows": [None] * 16}}, "invalid_spec"),
            ({"spec": DC_SPEC, "wires": 3}, "invalid_spec"),
            ({"spec": DC_SPEC, "samples": 0}, "protocol"),
            ({"spec": DC_SPEC, "samples": "many"}, "protocol"),
            ({"spec": DC_SPEC, "engine": "made-up"}, "protocol"),
        ],
    )
    def test_error_envelopes(self, service, fields, kind):
        body = submit(service, "compile", **fields)
        assert not body["ok"], body
        assert body["error"]["kind"] == kind

    def test_spec_must_be_an_object(self, service):
        body = submit(service, "compile", spec="[0,1,2,3]")
        assert not body["ok"]
        assert "JSON object" in body["error"]["message"]

    def test_metrics_count_compiles(self, service):
        before = submit(service, "stats")["result"]["metrics"].get(
            "requests_compile", 0
        )
        submit(service, "compile", spec=DC_SPEC)
        stats = submit(service, "stats")["result"]
        assert stats["metrics"]["requests_compile"] == before + 1
        assert "compile" not in stats.get("cache", {})  # never cached

    def test_expired_deadline_degrades(self, service):
        request = protocol.decode_request(
            json.dumps({"id": 9, "op": "compile", "spec": DC_SPEC})
        )
        body = json.loads(
            service._compile_submit(request, Deadline(-1.0))
        )
        assert body["ok"], body
        result = body["result"]
        assert result["source"] == "degraded"
        assert result["guarantee"] == "upper_bound"
        assert result["degraded_reason"] == "deadline"
        # Degraded answers still honour every specified row.
        values = json.loads(result["embedding"]["spec"])
        for x, want in enumerate(DC_SPEC["rows"]):
            if want is not None:
                assert (values[x] >> 3) & 1 == want
        metrics = submit(service, "stats")["result"]["metrics"]
        assert metrics["degraded_deadline"] >= 1


# ----------------------------------------------------------------------
# Sharded router
# ----------------------------------------------------------------------
class TestRouterCompile:
    def test_sharded_matches_solo_byte_for_byte(self, service, handle4):
        router, _sup, _shards = make_cluster(handle4)
        try:
            for spec in (DC_SPEC, AFFINE_SPEC):
                line = json.dumps({"id": 1, "op": "compile", "spec": spec})
                assert router.handle_line(line) == service.handle_line(line)
        finally:
            router.shutdown()

    def test_mixed_batch_matches_solo(self, service, handle4):
        router, _sup, _shards = make_cluster(handle4)
        try:
            line = json.dumps({
                "id": 2,
                "op": "batch",
                "requests": [
                    {"op": "compile", "spec": DC_SPEC},
                    {"op": "synth", "spec": SHIFT},
                    {"op": "compile", "spec": AFFINE_SPEC},
                ],
            })
            assert router.handle_line(line) == service.handle_line(line)
        finally:
            router.shutdown()

    def test_degrades_when_no_live_shard(self, handle4):
        router, _sup, shards = make_cluster(handle4, count=2)
        try:
            for shard in shards:
                shard.restartable = False
                shard.kill()
            body = submit(router, "compile", spec=DC_SPEC)
            assert body["ok"], body
            result = body["result"]
            assert result["source"] == "degraded"
            assert result["guarantee"] == "upper_bound"
            assert result["degraded_reason"] in (
                "no_live_shard", "shard_unreachable"
            )
            values = json.loads(result["embedding"]["spec"])
            for x, want in enumerate(DC_SPEC["rows"]):
                if want is not None:
                    assert (values[x] >> 3) & 1 == want
        finally:
            for shard in shards:
                shard.restartable = True
            router.shutdown()


# ----------------------------------------------------------------------
# TCP client helper
# ----------------------------------------------------------------------
class TestClientCompile:
    def test_compile_over_tcp(self, service):
        daemon = TCPDaemon(service, port=0)
        with daemon:
            host, port = daemon.address
            with ServiceClient(host, port) as client:
                result = client.compile(DC_SPEC)
                assert result["guarantee"] == "optimal"
                assert result["size"] == 3
                # The form object (not just its wire dict) works too.
                spec = TruthTableSpec(
                    rows=tuple(DC_SPEC["rows"]), n_inputs=4
                )
                again = client.compile(spec, samples=50)
                assert again["embedding"] == result["embedding"]
