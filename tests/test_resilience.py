"""Unit tests for the service resilience layer: deadlines, the circuit
breaker, retry policy, worker supervision, fault plans, crash-safe cache
persistence, and the typed client timeout errors.

Everything here runs with fake clocks, fake pools, and throwaway
sockets -- no synthesis database is needed.  End-to-end recovery against
a real daemon lives in ``tests/test_chaos.py``.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import (
    ServiceConnectError,
    ServiceError,
    ServiceTimeoutError,
    WorkerPoolError,
)
from repro.service import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    ResultCache,
    RetryPolicy,
    ServiceClient,
    WorkerSupervisor,
)
from repro.service.client import SAFE_RETRY_OPS


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# ResilienceConfig
# ----------------------------------------------------------------------
class TestResilienceConfig:
    def test_defaults_from_empty_extra(self):
        config = ResilienceConfig.from_extra(None)
        assert config.breaker_failure_threshold == 5
        assert config.fallback_engine == "heuristic"

    def test_overrides(self):
        config = ResilienceConfig.from_extra(
            {"resilience": {"hard_timeout": 1.5, "max_restarts": 0}}
        )
        assert config.hard_timeout == 1.5
        assert config.max_restarts == 0

    def test_unknown_key_rejected(self):
        with pytest.raises(ServiceError, match="unknown resilience option"):
            ResilienceConfig.from_extra({"resilience": {"hard_timeot": 1}})


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_counts_down_with_clock(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(0.6)
        assert deadline.expired()

    def test_from_ms_none_means_no_deadline(self):
        assert Deadline.from_ms(None) is None

    def test_from_ms_converts(self):
        clock = FakeClock()
        deadline = Deadline.from_ms(250, clock=clock)
        assert deadline.remaining() == pytest.approx(0.25)


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0,
                                 clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=10.0,
                                 clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=5.0,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()  # probe failed: open immediately
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_deadline_misses_count_toward_tripping(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=5.0,
                                 clock=FakeClock())
        breaker.record_deadline_miss()
        breaker.record_deadline_miss()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.snapshot()["deadline_misses"] == 2

    def test_snapshot_shape(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5.0,
                                 clock=clock)
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["trips"] == 0 and snap["open_for"] is None
        breaker.record_failure()
        clock.advance(2.0)
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["trips"] == 1
        assert snap["open_for"] == pytest.approx(2.0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.35, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.35)  # capped
        assert policy.delay(9) == pytest.approx(0.35)

    def test_jitter_bounded_and_deterministic(self):
        import random

        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             backoff_max=1.0, jitter=0.25)
        rng = random.Random(42)
        delays = [policy.delay(0, rng) for _ in range(50)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1  # jitter actually varies
        # Same seed, same schedule.
        rng2 = random.Random(42)
        assert delays == [policy.delay(0, rng2) for _ in range(50)]

    def test_no_jitter_without_rng(self):
        policy = RetryPolicy(backoff_base=0.5, jitter=0.5)
        assert policy.delay(0) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_from_dicts_roundtrip(self):
        plan = FaultPlan.from_dicts(
            [{"kind": "drop_connection"}, {"kind": "delay", "delay": 0.1}]
        )
        assert [s.kind for s in plan.specs] == ["drop_connection", "delay"]

    @pytest.mark.parametrize(
        "raw, match",
        [
            ({"kind": "explode"}, "unknown fault kind"),
            ({"kind": "delay"}, "positive 'delay'"),
            ({"kind": "delay", "delay": 0.1, "times": 0}, "times"),
            ({"kind": "kill_worker", "op": "synth"}, "only supported"),
            ({"kind": "delay", "delay": 0.1, "zap": 1}, "unknown fault field"),
        ],
    )
    def test_validation(self, raw, match):
        with pytest.raises(ServiceError, match=match):
            FaultPlan.from_dicts([raw])

    def test_not_a_list(self):
        with pytest.raises(ServiceError, match="must be a list"):
            FaultPlan.from_dicts({"kind": "delay"})


class TestFaultInjector:
    def test_from_extra_none_without_plan(self):
        assert FaultInjector.from_extra(None) is None
        assert FaultInjector.from_extra({}) is None

    def test_fires_bounded_times(self):
        injector = FaultInjector(
            FaultPlan([FaultSpec(kind="drop_connection", times=2)])
        )
        assert injector.should_drop_connection()
        assert injector.should_drop_connection()
        assert not injector.should_drop_connection()
        snap = injector.snapshot()
        assert snap == {"armed": 0, "fired": {"drop_connection": 2}}

    def test_delay_respects_op_filter(self):
        injector = FaultInjector(
            FaultPlan([FaultSpec(kind="delay", delay=0.01, op="synth")])
        )
        assert injector.delay_request("ping") == 0.0
        assert injector.delay_request("synth") == pytest.approx(0.01)
        assert injector.delay_request("synth") == 0.0  # disarmed

    def test_corrupt_cache_file(self, tmp_path):
        target = tmp_path / "cache.json"
        target.write_text(json.dumps({"version": 1, "entries": []}))
        injector = FaultInjector(FaultPlan([FaultSpec(kind="corrupt_cache")]))
        assert injector.corrupt_cache_file(target)
        assert b"\x00garbled" in target.read_bytes()
        # Disarmed: a second save survives untouched.
        target.write_text("{}")
        assert not injector.corrupt_cache_file(target)
        assert target.read_text() == "{}"


# ----------------------------------------------------------------------
# WorkerSupervisor (with a scriptable fake pool)
# ----------------------------------------------------------------------
class FakePool:
    """Pool double whose first ``fail_times`` batches raise."""

    def __init__(self, fail_times: int = 0) -> None:
        self.fail_times = fail_times
        self.calls = 0
        self.closed = False
        self.processes = 2
        self.is_parallel = True

    def solve_many(self, words, timeout=None, on_dispatch=None):
        self.calls += 1
        if on_dispatch is not None:
            on_dispatch(self)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise WorkerPoolError("worker died")
        return [f"answer:{w}" for w in words]

    def restarted(self):
        fresh = FakePool(fail_times=self.fail_times)
        fresh.processes = self.processes
        self.closed = True
        return fresh

    def alive_workers(self):
        return self.processes

    def close(self):
        self.closed = True


class TestWorkerSupervisor:
    def test_passthrough_when_healthy(self):
        supervisor = WorkerSupervisor(FakePool(), hard_timeout=1.0)
        assert supervisor.solve_many([1, 2]) == ["answer:1", "answer:2"]
        assert supervisor.restarts == 0

    def test_restart_and_requeue_on_failure(self):
        first = FakePool(fail_times=1)
        supervisor = WorkerSupervisor(first, hard_timeout=1.0, max_restarts=2)
        assert supervisor.solve_many([7]) == ["answer:7"]
        assert supervisor.restarts == 1
        assert first.closed  # the dead pool was torn down
        assert supervisor.pool is not first

    def test_gives_up_after_max_restarts(self):
        supervisor = WorkerSupervisor(
            FakePool(fail_times=5), hard_timeout=1.0, max_restarts=2
        )
        with pytest.raises(WorkerPoolError):
            supervisor.solve_many([1])
        assert supervisor.restarts == 2

    def test_liveness_shape(self):
        supervisor = WorkerSupervisor(FakePool(), hard_timeout=1.0)
        live = supervisor.liveness()
        assert live["parallel"] is True
        assert live["alive"] == 2 and live["dead"] == 0
        assert live["restarts"] == 0

    def test_close_prevents_restart(self):
        pool = FakePool()
        supervisor = WorkerSupervisor(pool, hard_timeout=1.0)
        supervisor.close()
        assert pool.closed
        with pytest.raises(ServiceError, match="closed"):
            supervisor.restart()


# ----------------------------------------------------------------------
# Crash-safe cache persistence
# ----------------------------------------------------------------------
class TestCachePersistence:
    def test_save_writes_checksum(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.store_size(4, 0x1234, 3)
        cache.save()
        assert cache.last_save_ok is True
        payload = json.loads(path.read_text())
        assert len(payload["checksum"]) == 64
        assert not path.with_suffix(".json.tmp").exists()

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.store_circuit(4, 0x1234, 0x1234, 5, "t1 t2")
        cache.save()
        warm = ResultCache(path=path)
        hit = warm.lookup(4, 0x1234, 0x1234)
        assert hit.size == 5 and hit.circuit == "t1 t2"
        assert warm.quarantined is None

    def test_corrupt_file_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.store_size(4, 0x1234, 3)
        cache.save()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2] + b"\x00garbled")
        survivor = ResultCache(path=path)
        assert len(survivor) == 0
        assert survivor.quarantined is not None
        assert survivor.quarantined.exists()
        assert not path.exists()  # moved aside, next save recreates it
        assert "unreadable" in survivor.load_error
        health = survivor.health()
        assert health["quarantined"] is not None

    def test_checksum_mismatch_detected(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(path=path)
        cache.store_size(4, 0x1234, 3)
        cache.save()
        payload = json.loads(path.read_text())
        # Valid JSON, valid version, silently altered entries: only the
        # checksum catches this.
        payload["entries"][0]["size"] = 2
        path.write_text(json.dumps(payload, separators=(",", ":")))
        with pytest.raises(ServiceError, match="checksum"):
            ResultCache().load(path)

    def test_legacy_file_without_checksum_loads(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"n": 4, "canon": "0x12", "size": 3,
                         "lower_bound": None, "max_size": None,
                         "circuits": {}}],
        }))
        cache = ResultCache()
        assert cache.load(path) == 1

    def test_explicit_load_still_raises(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("garbage")
        with pytest.raises(ServiceError, match="unreadable"):
            ResultCache().load(path)


# ----------------------------------------------------------------------
# Client: typed timeouts and retries
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestClientTypedErrors:
    def test_refused_connection_raises_connect_error(self):
        client = ServiceClient("127.0.0.1", _free_port(), connect_timeout=0.5)
        with pytest.raises(ServiceConnectError, match="cannot connect"):
            client.ping()

    def test_silent_server_raises_read_timeout(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        _, port = server.getsockname()
        try:
            client = ServiceClient(
                "127.0.0.1", port, connect_timeout=1.0, read_timeout=0.2
            )
            with pytest.raises(ServiceTimeoutError) as info:
                client.ping()
            assert info.value.phase == "read"
            client.close()
        finally:
            server.close()

    def test_legacy_single_timeout_sets_both(self):
        client = ServiceClient("127.0.0.1", 1, timeout=7.0)
        assert client.connect_timeout == 7.0
        assert client.read_timeout == 7.0

    def test_split_timeouts_override(self):
        client = ServiceClient(
            "127.0.0.1", 1, connect_timeout=1.0, read_timeout=30.0
        )
        assert client.connect_timeout == 1.0
        assert client.read_timeout == 30.0

    def test_shutdown_not_in_safe_retry_ops(self):
        assert "shutdown" not in SAFE_RETRY_OPS
        assert "synth" in SAFE_RETRY_OPS


class _FlakyServer(threading.Thread):
    """Accepts connections; drops the first ``drops`` of them after the
    request arrives, answers the rest."""

    def __init__(self, drops: int = 1) -> None:
        super().__init__(daemon=True)
        self.drops = drops
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.port = self.sock.getsockname()[1]
        self.served = 0

    def run(self) -> None:
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                data = conn.makefile("rb").readline()
                if not data:
                    continue
                if self.drops > 0:
                    self.drops -= 1
                    continue  # close without answering
                request = json.loads(data)
                response = json.dumps({
                    "id": request["id"], "ok": True,
                    "result": {"pong": True},
                })
                conn.sendall(response.encode() + b"\n")
                self.served += 1

    def stop(self) -> None:
        self.sock.close()


class TestClientRetry:
    def test_retries_through_dropped_connection(self):
        server = _FlakyServer(drops=1)
        server.start()
        try:
            client = ServiceClient(
                "127.0.0.1", server.port,
                connect_timeout=1.0, read_timeout=1.0,
                retry=RetryPolicy(retries=2, backoff_base=0.01, jitter=0.0),
            )
            assert client.ping() == {"pong": True}
            client.close()
        finally:
            server.stop()

    def test_no_retry_without_policy(self):
        server = _FlakyServer(drops=1)
        server.start()
        try:
            client = ServiceClient(
                "127.0.0.1", server.port,
                connect_timeout=1.0, read_timeout=1.0,
            )
            with pytest.raises(ServiceError):
                client.ping()
            client.close()
        finally:
            server.stop()


# ----------------------------------------------------------------------
# TCPDaemon.stop surfacing a wedged serving thread
# ----------------------------------------------------------------------
class TestTCPDaemonStop:
    def test_hung_serving_thread_raises(self, handle4):
        from repro.service import ServiceConfig, SynthesisService, TCPDaemon

        service = SynthesisService(
            handle4,
            config=ServiceConfig(n_wires=4, k=4, max_list_size=3),
        )
        daemon = TCPDaemon(service, port=0)
        daemon.start()

        class WedgedThread:
            name = "repro-tcp-wedged"

            def join(self, timeout=None):
                pass  # pretends the join timed out

            def is_alive(self):
                return True

        daemon._thread = WedgedThread()
        with pytest.raises(ServiceError, match="failed to stop within"):
            daemon.stop()
        # The listener socket was still closed (finally block).
        with pytest.raises(OSError):
            daemon._server.socket.getsockname()
