"""Tests for the meet-in-the-middle search (paper Algorithm 1)."""

import pytest

from repro.core import packed
from repro.core.permutation import Permutation
from repro.errors import SizeLimitExceededError
from repro.rng.sampling import PermutationSampler
from repro.synth.search import MeetInTheMiddleSearch, peel_minimal_circuit


class TestPeel:
    def test_peel_reconstructs_minimal_circuits(self, db4_k4, rng):
        for size in range(5):
            reps = db4_k4.reps_by_size[size]
            for _ in range(4):
                word = int(reps[rng.randrange(len(reps))])
                circuit = peel_minimal_circuit(word, db4_k4)
                assert circuit.gate_count == size
                assert circuit.to_word() == word

    def test_peel_works_on_non_canonical_members(self, db4_k4, rng):
        from repro.core import equivalence

        reps = db4_k4.reps_by_size[4]
        word = int(reps[rng.randrange(len(reps))])
        for member in sorted(equivalence.equivalence_class(word, 4))[:8]:
            circuit = peel_minimal_circuit(member, db4_k4)
            assert circuit.gate_count == 4
            assert circuit.to_word() == member

    def test_peel_rejects_out_of_reach(self, db4_k4):
        from repro.benchmarks_data import get_benchmark

        with pytest.raises(SizeLimitExceededError):
            peel_minimal_circuit(get_benchmark("hwb4").permutation().word, db4_k4)


class TestSearchCorrectness:
    def test_exhaustive_n3(self, engine3, db3):
        """For n = 3 every function is reachable; spot-check sizes against
        the full database and validate all returned circuits."""
        sampler = PermutationSampler(3, seed=77)
        for _ in range(60):
            word = sampler.sample_word()
            outcome = engine3.search(word)
            assert outcome.circuit.to_word() == word
            assert outcome.size == db3.size_of(word)

    def test_benchmarks_within_reach(self, engine4_l9):
        from repro.benchmarks_data import BENCHMARKS

        for bench in BENCHMARKS:
            if bench.optimal_size > engine4_l9.max_size:
                continue
            perm = bench.permutation()
            outcome = engine4_l9.search(perm.word)
            assert outcome.size == bench.optimal_size, bench.name
            assert outcome.circuit.implements(perm)

    def test_sizes_match_between_engines(self, engine4_l7, engine4_l9):
        """Two engines with different (k, m) splits agree on sizes.

        Query functions are drawn as random 7-gate circuits so their
        sizes are guaranteed within both engines' reach (uniform random
        permutations almost surely exceed L = 7).
        """
        from repro.rng.mt19937 import MersenneTwister
        from repro.rng.sampling import random_circuit

        rng = MersenneTwister(31)
        for _ in range(15):
            word = random_circuit(4, 7, rng).to_word()
            assert engine4_l7.size_of(word) == engine4_l9.size_of(word)

    def test_minimality_against_reference_bfs(self, engine4_l7):
        """Every size-5..7 result is confirmed minimal by independent
        exhaustive BFS levels (via list membership)."""
        # A function on list A_i has size exactly i; the search must agree.
        for i, candidates in enumerate(engine4_l7.lists, start=1):
            for word in candidates[:: max(1, len(candidates) // 10)][:10].tolist():
                assert engine4_l7.size_of(word) == i

    def test_search_statistics(self, engine4_l7):
        from repro.benchmarks_data import get_benchmark

        outcome = engine4_l7.search(get_benchmark("4bit-7-8").permutation().word)
        assert outcome.size == 7
        assert outcome.lists_scanned == 3  # needed A_3 (7 = 4 + 3)
        assert outcome.candidates_tested > 0

    def test_fast_path_statistics(self, engine4_l7):
        outcome = engine4_l7.search(packed.identity(4))
        assert outcome.size == 0
        assert outcome.lists_scanned == 0
        assert outcome.candidates_tested == 0


class TestSearchProperties:
    """Property-based invariants of the optimal search."""

    def test_size_never_exceeds_any_circuit_length(self, engine4_l7):
        """For any circuit C, size(function(C)) <= |C| and the returned
        circuit implements the same function (hypothesis over gates)."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.circuit import Circuit
        from repro.core.gates import all_gates

        @given(gates=st.lists(st.sampled_from(all_gates(4)), max_size=6))
        @settings(deadline=None, max_examples=40)
        def run(gates):
            circuit = Circuit.from_gates(gates, 4)
            word = circuit.to_word()
            outcome = engine4_l7.search(word)
            assert outcome.size <= circuit.gate_count
            assert outcome.circuit.to_word() == word

        run()

    def test_size_is_invariant_under_inversion(self, engine4_l7):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.circuit import Circuit
        from repro.core.gates import all_gates

        @given(gates=st.lists(st.sampled_from(all_gates(4)), max_size=6))
        @settings(deadline=None, max_examples=25)
        def run(gates):
            word = Circuit.from_gates(gates, 4).to_word()
            assert engine4_l7.size_of(word) == engine4_l7.size_of(
                packed.inverse(word, 4)
            )

        run()

    def test_subadditivity(self, engine4_l7):
        """size(f·g) <= size(f) + size(g) (concatenate the circuits)."""
        from repro.rng.mt19937 import MersenneTwister
        from repro.rng.sampling import random_circuit

        rng = MersenneTwister(17)
        for _ in range(10):
            f = random_circuit(4, 3, rng).to_word()
            g = random_circuit(4, 3, rng).to_word()
            combined = packed.compose(f, g, 4)
            assert engine4_l7.size_of(combined) <= engine4_l7.size_of(
                f
            ) + engine4_l7.size_of(g)


class TestBounds:
    def test_size_limit_exceeded_carries_bound(self, engine4_l7):
        from repro.benchmarks_data import get_benchmark

        hwb4 = get_benchmark("hwb4").permutation()  # size 11 > 7
        with pytest.raises(SizeLimitExceededError) as excinfo:
            engine4_l7.size_of(hwb4.word)
        assert excinfo.value.lower_bound == 8

    def test_prove_lower_bound(self, engine4_l7):
        from repro.benchmarks_data import get_benchmark

        hwb4 = get_benchmark("hwb4").permutation()
        assert engine4_l7.prove_lower_bound(hwb4.word) == 8
        rd32 = get_benchmark("rd32").permutation()
        assert engine4_l7.prove_lower_bound(rd32.word) == 4

    def test_max_size(self, engine4_l7, engine4_l9, engine3):
        assert engine4_l7.max_size == 7
        assert engine4_l9.max_size == 9
        assert engine3.max_size == 12


class TestListConstruction:
    def test_list_sizes_match_table4(self, db4_k4):
        lists = MeetInTheMiddleSearch.build_lists(db4_k4, 3)
        assert [len(lst) for lst in lists] == [32, 784, 16204]

    def test_lists_are_inverse_closed(self, db4_k4):
        lists = MeetInTheMiddleSearch.build_lists(db4_k4, 2)
        for lst in lists:
            members = set(lst.tolist())
            for word in members:
                assert packed.inverse(word, 4) in members

    def test_lists_depth_capped_by_k(self, db4_k4):
        with pytest.raises(ValueError):
            MeetInTheMiddleSearch.build_lists(db4_k4, 5)

    def test_list_dtype_validated(self, db4_k4):
        import numpy as np

        with pytest.raises(TypeError):
            MeetInTheMiddleSearch(db4_k4, [np.array([1.0])])
