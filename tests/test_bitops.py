"""Unit tests for repro.core.bitops."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitops import (
    bit,
    flip_bit,
    mask64,
    permute_bits,
    popcount,
    set_bit,
    swap_bits,
)


def test_popcount_small_values():
    assert popcount(0) == 0
    assert popcount(1) == 1
    assert popcount(0b1011) == 3
    assert popcount(0xFFFF_FFFF_FFFF_FFFF) == 64


@given(st.integers(min_value=0, max_value=1 << 70))
def test_popcount_matches_python(x):
    assert popcount(x) == bin(x).count("1")


@given(st.integers(min_value=0, max_value=(1 << 64) - 1), st.integers(0, 63))
def test_bit_get_set_flip(x, i):
    assert bit(set_bit(x, i, 1), i) == 1
    assert bit(set_bit(x, i, 0), i) == 0
    assert flip_bit(flip_bit(x, i), i) == x
    assert bit(flip_bit(x, i), i) == 1 - bit(x, i)


@given(
    st.integers(min_value=0, max_value=(1 << 64) - 1),
    st.integers(0, 63),
    st.integers(0, 63),
)
def test_swap_bits_involution(x, i, j):
    assert swap_bits(swap_bits(x, i, j), i, j) == x
    assert bit(swap_bits(x, i, j), i) == bit(x, j)
    assert bit(swap_bits(x, i, j), j) == bit(x, i)


def test_permute_bits_identity_and_rotation():
    assert permute_bits(0b0110, (0, 1, 2, 3)) == 0b0110
    # Rotate all bits up one position.
    assert permute_bits(0b0001, (1, 2, 3, 0)) == 0b0010
    assert permute_bits(0b1000, (1, 2, 3, 0)) == 0b0001


@given(st.integers(min_value=0, max_value=15))
def test_permute_bits_roundtrip(x):
    perm = (2, 0, 3, 1)
    inverse = (1, 3, 0, 2)  # inverse permutation of `perm`
    assert permute_bits(permute_bits(x, perm), inverse) == x


def test_mask64_wraps():
    assert mask64(1 << 64) == 0
    assert mask64(-1) == (1 << 64) - 1
    assert mask64(42) == 42
