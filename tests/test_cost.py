"""Tests for cost-aware optimal synthesis (paper §5 extension)."""

import pytest

from repro.core.circuit import Circuit
from repro.core.gates import NOT, TOF, all_gates
from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.synth.cost import (
    NCV_COST_BY_CONTROLS,
    UNIT_COST_BY_CONTROLS,
    CostOptimalSynthesizer,
    build_cost_database,
    gate_cost,
)


@pytest.fixture(scope="module")
def cost_db():
    return build_cost_database(4, 10)


@pytest.fixture(scope="module")
def cost_synth(cost_db):
    synth = CostOptimalSynthesizer(4, max_cost=10)
    synth._db = cost_db
    return synth


class TestGateCost:
    def test_ncv_values(self):
        assert gate_cost(NOT(0)) == 1
        assert gate_cost(TOF(0, 1, 2)) == 5
        for gate in all_gates(4):
            assert gate_cost(gate) == NCV_COST_BY_CONTROLS[len(gate.controls)]

    def test_positive_costs_enforced(self):
        with pytest.raises(SynthesisError):
            build_cost_database(4, 3, model={0: 0, 1: 1, 2: 1, 3: 1})


class TestCostDatabase:
    def test_identity_cost_zero(self, cost_db):
        assert cost_db.cost_of(Permutation.identity(4).word) == 0

    def test_gate_costs(self, cost_db):
        for gate in all_gates(4):
            expected = gate_cost(gate)
            if expected <= cost_db.max_cost:
                assert cost_db.cost_of(gate.to_word(4)) == expected

    def test_counts_by_cost_structure(self, cost_db):
        counts = cost_db.counts_by_cost()
        assert counts[0] == 1
        # Cost 1: the NOT class and the CNOT class.
        assert counts[1] == 2
        # Cost 5: includes the TOF class.
        assert 5 in counts

    def test_out_of_bound_returns_none(self, cost_db):
        from repro.benchmarks_data import get_benchmark

        assert cost_db.cost_of(get_benchmark("hwb4").permutation().word) is None

    def test_unit_cost_equals_gate_count(self, db4_k4):
        """With the unit model, optimal cost == optimal gate count."""
        unit_db = build_cost_database(4, 4, model=UNIT_COST_BY_CONTROLS)
        for size, reps in enumerate(db4_k4.reps_by_size):
            for word in reps[:: max(1, len(reps) // 10)][:10].tolist():
                assert unit_db.cost_of(word) == size


class TestCostSynthesis:
    def test_synthesize_verifies(self, cost_synth, rng):
        from repro.synth.bfs import build_database

        db = build_database(4, 3)
        for size in (1, 2, 3):
            reps = db.reps_by_size[size]
            for _ in range(3):
                word = int(reps[rng.randrange(len(reps))])
                perm = Permutation(word, 4)
                try:
                    circuit = cost_synth.synthesize(perm)
                except SynthesisError:
                    continue  # cost above the bound (e.g. several TOF4s)
                assert circuit.implements(perm)
                assert circuit.cost() == cost_synth.cost(perm)

    def test_cost_optimal_beats_gate_count_optimal_on_rd32(
        self, cost_synth, engine4_l7
    ):
        """rd32: 4 gates optimally but NCV cost 12; the cost-optimal
        circuit reaches cost 9 (using more, cheaper gates)."""
        from repro.benchmarks_data import get_benchmark

        rd32 = get_benchmark("rd32").permutation()
        gate_optimal = engine4_l7.minimal_circuit(rd32.word)
        assert gate_optimal.gate_count == 4
        assert gate_optimal.cost() == 12
        assert cost_synth.cost(rd32) == 9
        circuit = cost_synth.synthesize(rd32)
        assert circuit.implements(rd32)
        assert circuit.cost() == 9
        assert circuit.gate_count > 4  # trades gates for cost

    def test_cost_lower_bounds_gate_count(self, cost_synth, engine4_l7, rng):
        """NCV cost >= gate count (every gate costs >= 1)."""
        from repro.synth.bfs import build_database

        db = build_database(4, 3)
        reps = db.reps_by_size[3]
        for _ in range(10):
            word = int(reps[rng.randrange(len(reps))])
            try:
                cost = cost_synth.cost(Permutation(word, 4))
            except SynthesisError:
                continue
            assert cost >= engine4_l7.size_of(word)

    def test_out_of_reach_raises(self, cost_synth):
        from repro.benchmarks_data import get_benchmark

        with pytest.raises(SynthesisError):
            cost_synth.cost(get_benchmark("hwb4").permutation())
