"""Tests for the unified engine layer (repro.engines).

Covers the registry, every adapter, the portfolio's tier logic, and
seeded cross-engine consistency (every engine's circuit re-simulates to
the spec; optimal sizes bound heuristic sizes; depth-optimal depth
bounds the gate-optimal circuit's depth).
"""

import random

import pytest

from repro.core.circuit import Circuit
from repro.core.gates import all_gates
from repro.core.permutation import Permutation
from repro.engines import (
    GUARANTEE_HEURISTIC,
    GUARANTEE_OPTIMAL,
    METRIC_DEPTH,
    SynthesisRequest,
    create_engine,
    engine_capabilities,
    engine_names,
    engine_summary,
    register_engine,
    servable_engine_names,
)
from repro.errors import SizeLimitExceededError, SynthesisError

NOT_A_3 = "[1,0,3,2,5,4,7,6]"  # NOT(a) on 3 wires
SHIFT4 = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"


class TestRegistry:
    def test_engine_names_complete(self):
        assert engine_names() == [
            "clifford", "depth", "heuristic", "linear", "optimal",
            "plain-bfs", "portfolio", "race", "sat", "wide",
        ]

    def test_unknown_engine(self):
        with pytest.raises(SynthesisError, match="unknown engine 'nope'"):
            create_engine("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate engine name"):
            register_engine(
                "optimal", "repro.engines.optimal", "make_engine", "dup"
            )

    def test_summaries_exist(self):
        for name in engine_names():
            assert engine_summary(name)

    def test_servable_subset(self):
        servable = servable_engine_names()
        assert servable == ["depth", "heuristic", "linear", "optimal", "race"]
        for name in servable:
            assert engine_capabilities(name).servable

    def test_option_filtering(self):
        # Unknown keyword args are dropped, so one option dict can be
        # broadcast to engines with different factory signatures.
        engine = create_engine("heuristic", n_wires=4, k=6, cache_dir=False)
        assert engine.name == "heuristic"


class TestAdapters:
    def test_optimal(self):
        engine = create_engine("optimal", n_wires=3, k=3, cache_dir=False)
        result = engine.synthesize(SynthesisRequest(spec=NOT_A_3))
        assert result.engine == "optimal"
        assert result.size == 1
        assert result.circuit == "NOT(a)"
        assert result.guarantee == GUARANTEE_OPTIMAL
        assert result.extra["lists_scanned"] >= 0
        assert result.circuit_obj.implements(Permutation.from_spec(NOT_A_3))

    def test_optimal_out_of_reach(self):
        engine = create_engine(
            "optimal", n_wires=3, k=2, max_list_size=0, cache_dir=False
        )
        with pytest.raises(SizeLimitExceededError) as exc:
            engine.synthesize(SynthesisRequest(spec="[0,1,7,6,4,3,2,5]"))
        assert exc.value.lower_bound == 3

    def test_plain_bfs_reconstructs(self):
        engine = create_engine("plain-bfs", n_wires=3, k=3)
        result = engine.synthesize(SynthesisRequest(spec=NOT_A_3))
        assert result.size == 1
        assert result.circuit == "NOT(a)"
        assert result.extra["states_stored"] > 0

    def test_plain_bfs_out_of_reach(self):
        engine = create_engine("plain-bfs", n_wires=3, k=2)
        with pytest.raises(SizeLimitExceededError) as exc:
            engine.synthesize(SynthesisRequest(spec="[0,1,7,6,4,3,2,5]"))
        assert exc.value.lower_bound == 3

    def test_heuristic(self):
        engine = create_engine("heuristic")
        perm = Permutation.from_spec(NOT_A_3)
        result = engine.synthesize(SynthesisRequest(spec=perm))
        assert result.guarantee == GUARANTEE_HEURISTIC
        assert result.circuit_obj.implements(perm)
        assert "bidirectional" in result.extra

    def test_heuristic_bad_variant(self):
        with pytest.raises(SynthesisError, match="unknown MMD variant"):
            create_engine("heuristic", variant="sideways")

    def test_sat(self):
        engine = create_engine("sat", max_gates=4)
        result = engine.synthesize(
            SynthesisRequest(spec=NOT_A_3, n_wires=3)
        )
        assert result.size == 1
        assert result.guarantee == GUARANTEE_OPTIMAL
        assert result.extra["depths_tried"]

    def test_depth(self):
        engine = create_engine("depth", n_wires=3, max_depth=2)
        perm = Permutation.from_spec(NOT_A_3)
        result = engine.synthesize(SynthesisRequest(spec=perm))
        assert result.metric == METRIC_DEPTH
        assert result.depth == 1
        assert result.extra["optimal_depth"] == 1
        assert result.circuit_obj.implements(perm)

    def test_linear(self):
        engine = create_engine("linear", n_wires=3)
        result = engine.synthesize(SynthesisRequest(spec=NOT_A_3))
        assert result.size == 1
        assert result.extra["library"] == "NOT/CNOT"

    def test_linear_rejects_nonlinear(self):
        engine = create_engine("linear", n_wires=3)
        toffoli = "[0,1,2,3,4,5,7,6]"  # TOF is not affine
        with pytest.raises(SynthesisError):
            engine.synthesize(SynthesisRequest(spec=toffoli))

    def test_wide_accepts_value_rows(self):
        engine = create_engine("wide", n_wires=3, k=2)
        result = engine.synthesize(
            SynthesisRequest(spec=[1, 0, 3, 2, 5, 4, 7, 6])
        )
        assert result.size == 1
        assert result.circuit == "NOT(a)"

    def test_wide_cost_outside_ncv_model_is_none(self):
        # TOF5 has four controls; the NCV table stops at three, so the
        # result reports no cost rather than crashing (n >= 5 territory).
        from repro.core.gates import Gate

        engine = create_engine("wide", n_wires=5, k=1)
        tof5 = Circuit(gates=(Gate(controls=(0, 1, 2, 3), target=4),), n_wires=5)
        result = engine.synthesize(SynthesisRequest(spec=tof5.truth_table()))
        assert result.size == 1
        assert result.cost is None
        assert result.depth == 1

    def test_wide_rejects_packed_words(self):
        engine = create_engine("wide", n_wires=3, k=2)
        with pytest.raises(SynthesisError, match="value sequences"):
            engine.synthesize(SynthesisRequest(spec=0x67452301))

    def test_clifford_identity(self):
        from repro.stabilizer.tableau import CliffordTableau

        engine = create_engine("clifford", n_qubits=1)
        result = engine.synthesize(
            SynthesisRequest(spec=CliffordTableau.identity(1))
        )
        assert result.size == 0
        assert result.circuit == "(identity)"
        assert result.depth is None and result.cost is None

    def test_clifford_rejects_permutations(self):
        engine = create_engine("clifford", n_qubits=1)
        with pytest.raises(SynthesisError, match="CliffordTableau"):
            engine.synthesize(SynthesisRequest(spec=NOT_A_3))

    def test_to_wire_deterministic(self):
        engine = create_engine("heuristic")
        request = SynthesisRequest(spec=NOT_A_3, n_wires=3)
        first = engine.synthesize(request).to_wire()
        second = engine.synthesize(request).to_wire()
        assert first == second
        assert "seconds" not in first


class TestPortfolio:
    def test_optimal_tier(self):
        engine = create_engine("portfolio", n_wires=3, k=3, cache_dir=False)
        result = engine.synthesize(SynthesisRequest(spec=NOT_A_3))
        assert result.engine == "portfolio"
        assert result.extra["tier"] == "optimal"
        assert result.guarantee == GUARANTEE_OPTIMAL
        assert result.size == 1

    def test_heuristic_tier_with_matching_bound_is_optimal(self):
        # Out of the optimal engine's reach, but the proven lower bound
        # meets the heuristic circuit: provably minimal without SAT.
        engine = create_engine(
            "portfolio", n_wires=4, k=2, max_list_size=1, cache_dir=False
        )
        result = engine.synthesize(SynthesisRequest(spec=SHIFT4))
        assert result.extra["tier"] == "heuristic"
        assert result.guarantee == GUARANTEE_OPTIMAL
        assert result.size == 4
        assert result.extra["lower_bound"] == 4

    def test_sat_tier_closes_gap(self):
        # MMD gives 4 gates, the bound proof gives 3; SAT at size 3 hits.
        engine = create_engine(
            "portfolio", n_wires=3, k=2, max_list_size=0, cache_dir=False
        )
        result = engine.synthesize(
            SynthesisRequest(spec="[0,1,7,6,4,3,2,5]")
        )
        assert result.extra["tier"] == "sat"
        assert result.guarantee == GUARANTEE_OPTIMAL
        assert result.size == 3
        assert result.extra["upper_bound"] == 4
        spec = Permutation.from_spec("[0,1,7,6,4,3,2,5]")
        assert result.circuit_obj.implements(spec)


@pytest.fixture(scope="module")
def seeded_specs():
    """Seeded 3-wire permutations of bounded size (compositions of <= 4
    random gates), so every engine can reach them quickly."""
    rng = random.Random(20260807)
    gates = all_gates(3)
    specs = []
    for _ in range(6):
        gate_seq = tuple(
            rng.choice(gates) for _ in range(rng.randint(1, 4))
        )
        circuit = Circuit(gates=gate_seq, n_wires=3)
        specs.append(Permutation.coerce(circuit.to_word(), 3))
    return specs


@pytest.fixture(scope="module")
def consistency_engines():
    return {
        "optimal": create_engine(
            "optimal", n_wires=3, k=3, cache_dir=False
        ).prepare(),
        "plain-bfs": create_engine("plain-bfs", n_wires=3, k=4).prepare(),
        "heuristic": create_engine("heuristic"),
        "sat": create_engine("sat", max_gates=5),
        "depth": create_engine("depth", n_wires=3, max_depth=4).prepare(),
    }


class TestCrossEngineConsistency:
    def test_every_engine_implements_the_spec(
        self, seeded_specs, consistency_engines
    ):
        for perm in seeded_specs:
            for name, engine in consistency_engines.items():
                result = engine.synthesize(
                    SynthesisRequest(spec=perm, n_wires=3)
                )
                assert result.circuit_obj.implements(perm), (
                    f"{name} circuit does not implement {perm.spec()}"
                )

    def test_optimal_bounds_heuristic(
        self, seeded_specs, consistency_engines
    ):
        for perm in seeded_specs:
            request = SynthesisRequest(spec=perm, n_wires=3)
            optimal = consistency_engines["optimal"].synthesize(request)
            heuristic = consistency_engines["heuristic"].synthesize(request)
            sat = consistency_engines["sat"].synthesize(request)
            bfs = consistency_engines["plain-bfs"].synthesize(request)
            assert optimal.size <= heuristic.size
            assert sat.size == optimal.size
            assert bfs.size == optimal.size

    def test_depth_engine_bounds_gate_optimal_depth(
        self, seeded_specs, consistency_engines
    ):
        for perm in seeded_specs:
            request = SynthesisRequest(spec=perm, n_wires=3)
            optimal = consistency_engines["optimal"].synthesize(request)
            depth = consistency_engines["depth"].synthesize(request)
            assert depth.depth <= optimal.depth
