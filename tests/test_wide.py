"""Tests for the wide (n >= 5) search engine."""

import pytest

from repro.core.circuit import Circuit
from repro.errors import SynthesisError
from repro.rng.mt19937 import MersenneTwister
from repro.rng.sampling import random_circuit
from repro.synth.wide import WideBfsResult, wide_bfs, wide_synthesize


@pytest.fixture(scope="module")
def wide5():
    return wide_bfs(5, 2)


class TestCrossValidation:
    def test_n4_counts_match_table4(self):
        """The wide engine on n = 4 reproduces the packed engine's
        exact function counts (Table 4)."""
        result = wide_bfs(4, 3)
        assert result.counts == [1, 32, 784, 16204]

    def test_n3_counts(self):
        result = wide_bfs(3, 4)
        assert result.counts == [1, 12, 102, 625, 2780]

    def test_sizes_match_packed_engine(self, db4_k4):
        result = wide_bfs(4, 3)
        for row_bytes, size in list(result.known.items())[:100]:
            values = list(row_bytes)
            from repro.core import packed

            word = packed.pack(values)
            assert db4_k4.size_of(word) == size


class TestFiveWires:
    def test_gate_library_size(self, wide5):
        """5 NOT + 20 CNOT + 30 TOF + 20 TOF4 + 5 TOF5 = 80 gates."""
        assert wide5.counts[1] == 80

    def test_identity(self, wide5):
        assert wide5.size_of(list(range(32))) == 0

    def test_two_gate_count_structure(self, wide5):
        # Level 2 is below 80^2 (cancellations and commutations collide).
        assert 0 < wide5.counts[2] < 80 * 80
        assert wide5.states_stored == sum(wide5.counts)

    def test_synthesize_random_circuits(self, wide5):
        rng = MersenneTwister(9)
        for _ in range(5):
            circuit = random_circuit(5, 2, rng)
            table = circuit.truth_table()
            size = wide5.size_of(table)
            assert size is not None and size <= 2
            synthesized = wide_synthesize(wide5, table)
            assert synthesized.truth_table() == table
            assert synthesized.gate_count == size

    def test_beyond_depth_raises(self, wide5):
        # x -> x+1 mod 32 needs 5 gates; depth-2 table cannot reach it.
        shift = [(x + 1) % 32 for x in range(32)]
        assert wide5.size_of(shift) is None
        with pytest.raises(SynthesisError):
            wide_synthesize(wide5, shift)

    def test_frontier_guard(self):
        with pytest.raises(SynthesisError):
            wide_bfs(5, 4, max_frontier=1000)


class TestFiveWireShift:
    def test_shift32_is_five_gates(self):
        """x -> x+1 (mod 32) generalizes shift4's 4-gate ripple to five
        wires: TOF5 TOF4 TOF CNOT NOT."""
        circuit = Circuit.parse(
            "TOF4(a,b,c,d) CNOT(a,b) NOT(a)", 4
        )  # guard: parse still works on 4 wires
        assert circuit.gate_count == 3
        from repro.core.gates import Gate

        ripple = Circuit(
            gates=(
                Gate(controls=(0, 1, 2, 3), target=4),
                Gate(controls=(0, 1, 2), target=3),
                Gate(controls=(0, 1), target=2),
                Gate(controls=(0,), target=1),
                Gate(controls=(), target=0),
            ),
            n_wires=5,
        )
        assert ripple.truth_table() == [(x + 1) % 32 for x in range(32)]
