"""Tests for the BFS engines (paper Algorithm 2)."""

import numpy as np
import pytest

from repro.core import equivalence, packed
from repro.core.circuit import Circuit
from repro.synth.bfs import (
    bfs_reference,
    build_database,
    reconstruct_from_witnesses,
)


class TestVectorizedBfs:
    def test_table4_anchors_k4(self, db4_k4):
        """Exact match with the paper's Table 4 for sizes 0..4."""
        assert db4_k4.reduced_counts() == [1, 4, 33, 425, 6538]
        assert db4_k4.function_counts() == [1, 32, 784, 16204, 294507]

    def test_table4_anchors_k5(self, db4_k5):
        assert db4_k5.reduced_counts() == [1, 4, 33, 425, 6538, 101983]
        assert db4_k5.function_counts()[5] == 4807552

    def test_representatives_are_canonical(self, db4_k4):
        for size, reps in enumerate(db4_k4.reps_by_size):
            sample = reps[:: max(1, len(reps) // 50)]
            for word in sample.tolist():
                assert equivalence.is_canonical(word, 4)
                assert db4_k4.size_of(word) == size

    def test_representatives_sorted_unique(self, db4_k4):
        for reps in db4_k4.reps_by_size[1:]:
            as_int = reps.astype(np.uint64)
            assert np.all(np.diff(as_int) > 0)

    def test_n3_complete_enumeration(self, db3):
        """The n = 3 BFS covers all 8! functions and stops at L(3) = 8."""
        assert db3.total_functions() == 40320
        assert db3.function_counts() == [
            1,
            12,
            102,
            625,
            2780,
            8921,
            17049,
            10253,
            577,
        ]

    def test_early_termination_pads_empty_levels(self):
        db = build_database(2, 10)
        # The 2-wire group has 4! = 24 functions; depth stops well below 10.
        assert db.total_functions() == 24
        assert len(db.reps_by_size) == 11
        assert all(r.shape[0] == 0 for r in db.reps_by_size[7:])

    def test_restricted_gate_library(self):
        from repro.core.gates import linear_gates

        db = build_database(4, 3, gates=linear_gates(4))
        # With NOT/CNOT only, function counts match Table 5's head.
        assert db.function_counts() == [1, 16, 162, 1206]

    def test_chunking_does_not_change_results(self):
        small_chunks = build_database(4, 3, chunk=64)
        default = build_database(4, 3)
        for a, b in zip(small_chunks.reps_by_size, default.reps_by_size):
            assert np.array_equal(a, b)

    def test_progress_callback(self):
        seen = []
        build_database(4, 2, progress=lambda level, count: seen.append((level, count)))
        assert seen == [(1, 4), (2, 33)]


class TestReferenceBfs:
    @pytest.mark.parametrize("n_wires,k", [(3, 4), (4, 3)])
    def test_matches_vectorized(self, n_wires, k):
        reference = bfs_reference(n_wires, k)
        vectorized = build_database(n_wires, k)
        by_size: dict[int, set[int]] = {}
        for canon, witness in reference.items():
            by_size.setdefault(witness.size, set()).add(canon)
        for size, reps in enumerate(vectorized.reps_by_size):
            assert by_size.get(size, set()) == set(reps.tolist())

    def test_witness_reconstruction(self):
        """Witness chains decode to genuinely minimal circuits."""
        witnesses = bfs_reference(4, 3)
        checked = 0
        for canon, witness in witnesses.items():
            if witness.size == 0:
                continue
            gates = reconstruct_from_witnesses(canon, witnesses, 4)
            circuit = Circuit.from_gates(gates, 4)
            assert circuit.gate_count == witness.size
            assert circuit.to_word() == canon
            checked += 1
            if checked >= 150:
                break
        assert checked == 150

    def test_witness_gates_are_library_gates(self):
        from repro.core.gates import all_gates

        library = set(all_gates(4))
        witnesses = bfs_reference(4, 2)
        for witness in witnesses.values():
            if witness.gate is not None:
                assert witness.gate in library
