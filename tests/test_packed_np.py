"""Property tests: vectorized packed ops agree with the scalar reference."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import equivalence, packed
from repro.core.packed_np import (
    all_variants_np,
    as_words,
    canonical_conjugation_only_np,
    canonical_np,
    class_sizes_np,
    compose_np,
    conjugate_adjacent_np,
    expand_classes_np,
    inverse_np,
    is_valid_np,
)


def word_lists(n_wires, max_len=40):
    size = 1 << n_wires
    return st.lists(
        st.permutations(list(range(size))).map(packed.pack),
        min_size=1,
        max_size=max_len,
    )


@given(word_lists(4))
def test_inverse_np_matches_scalar(words):
    arr = as_words(words)
    expected = [packed.inverse(w, 4) for w in words]
    assert inverse_np(arr, 4).tolist() == expected


@given(word_lists(4), st.permutations(list(range(16))).map(packed.pack))
def test_compose_np_matches_scalar(words, q):
    arr = as_words(words)
    expected = [packed.compose(w, q, 4) for w in words]
    assert compose_np(arr, np.uint64(q), 4).tolist() == expected


@given(word_lists(3), st.permutations(list(range(8))).map(packed.pack))
def test_compose_np_matches_scalar_n3(words, q):
    arr = as_words(words)
    expected = [packed.compose(w, q, 3) for w in words]
    assert compose_np(arr, np.uint64(q), 3).tolist() == expected


@given(word_lists(4))
def test_conjugate_adjacent_np_matches_scalar(words):
    arr = as_words(words)
    for pair in range(3):
        expected = [packed.conjugate_adjacent(w, pair, 4) for w in words]
        assert conjugate_adjacent_np(arr, pair, 4).tolist() == expected


@given(word_lists(4, max_len=25))
@settings(deadline=None)
def test_canonical_np_matches_scalar(words):
    arr = as_words(words)
    expected = [equivalence.canonical(w, 4) for w in words]
    assert canonical_np(arr, 4).tolist() == expected


@given(word_lists(3, max_len=25))
@settings(deadline=None)
def test_canonical_np_matches_scalar_n3(words):
    arr = as_words(words)
    expected = [equivalence.canonical(w, 3) for w in words]
    assert canonical_np(arr, 3).tolist() == expected


@given(word_lists(4, max_len=15))
@settings(deadline=None)
def test_class_sizes_np_matches_scalar(words):
    arr = as_words(words)
    expected = [equivalence.class_size(w, 4) for w in words]
    assert class_sizes_np(arr, 4).tolist() == expected


@given(word_lists(4, max_len=10))
@settings(deadline=None)
def test_all_variants_cover_equivalence_class(words):
    arr = as_words(words)
    variants = all_variants_np(arr, 4)
    assert variants.shape == (48, len(words))
    for column, word in enumerate(words):
        expected = equivalence.equivalence_class(word, 4)
        assert set(variants[:, column].tolist()) == expected


@given(word_lists(4, max_len=8))
@settings(deadline=None)
def test_expand_classes_np(words):
    arr = as_words(words)
    expanded = expand_classes_np(arr, 4)
    expected = set()
    for word in words:
        expected |= equivalence.equivalence_class(word, 4)
    assert set(expanded.tolist()) == expected
    assert np.all(np.diff(expanded.astype(np.uint64)) > 0)  # sorted, unique


def test_canonical_conjugation_only_smaller_or_equal():
    rng = np.random.default_rng(3)
    values = np.arange(16)
    words = []
    for _ in range(50):
        rng.shuffle(values)
        words.append(packed.pack(values.tolist()))
    arr = as_words(words)
    with_inverse = canonical_np(arr, 4)
    without_inverse = canonical_conjugation_only_np(arr, 4)
    assert np.all(with_inverse <= without_inverse)
    assert np.all(without_inverse <= arr)


def test_is_valid_np():
    good = as_words([packed.identity(4), packed.pack(list(range(15, -1, -1)))])
    assert is_valid_np(good, 4).all()
    bad = as_words([packed.EMPTY_WORD, np.uint64(0)])
    assert not is_valid_np(bad, 4).any()
    # n = 3 with stray high bits is invalid.
    tainted = as_words([packed.identity(3) | (1 << 40)])
    assert not is_valid_np(tainted, 3).any()
