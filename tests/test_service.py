"""Tests for the synthesis service layer: protocol, cache, batching,
metrics, workers, and the daemon end to end over TCP and stdio."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.core.permutation import Permutation
from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceShutdownError,
    SizeLimitExceededError,
)
from repro.service import (
    BatchQueue,
    HardQueryPool,
    MetricsRegistry,
    PendingRequest,
    ResultCache,
    ServiceClient,
    ServiceConfig,
    SynthesisService,
    TCPDaemon,
    serve_stdio,
)
from repro.service import protocol
from repro.service.workers import solve_with_engine

# Specs with optimal size 5 and 6: above the k=4 database depth of the
# shared fixtures, so they exercise the hard (A_i-list scan) path.
HARD_SPECS = [
    "[8,3,2,9,7,12,5,14,0,11,10,1,15,4,13,6]",  # size 5
    "[6,7,13,5,0,1,10,3,15,14,4,12,8,9,2,11]",  # size 5
    "[13,8,10,2,9,12,14,6,3,15,0,1,7,11,4,5]",  # size 6
    "[0,1,2,3,7,14,15,13,8,9,10,11,12,4,5,6]",  # size 6
]

#: hwb4, size 11 -- far beyond L = 7 of the shared engine.
OUT_OF_REACH = "[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]"

IDENTITY = "[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]"
SHIFT = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"


@pytest.fixture()
def service(handle4):
    """A started service over the shared warm handle (no TCP)."""
    svc = SynthesisService(
        handle4,
        config=ServiceConfig(
            n_wires=4, k=4, max_list_size=3, batch_window=0.0
        ),
    )
    svc.start()
    yield svc
    svc.shutdown()


def submit(svc, op, **fields) -> dict:
    line = json.dumps({"id": fields.pop("id", 1), "op": op, **fields})
    return json.loads(svc.handle_line(line))


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_decode_minimal_synth(self):
        req = protocol.decode_request(
            '{"id": 3, "op": "synth", "spec": "[0,1,2,3]"}'
        )
        assert req.op == "synth" and req.id == 3
        assert req.spec_value() == "[0,1,2,3]"

    def test_decode_word_hex(self):
        req = protocol.decode_request(
            '{"op": "size", "word": "0x3210", "wires": 2}'
        )
        assert req.spec_value() == 0x3210
        assert req.wires == 2

    def test_decode_bytes_input(self):
        req = protocol.decode_request(b'{"op": "ping"}')
        assert req.op == "ping"

    def test_extra_fields_become_options(self):
        req = protocol.decode_request(
            '{"op": "ping", "trace": true, "client": "t"}'
        )
        assert req.options == {"trace": True, "client": "t"}

    @pytest.mark.parametrize(
        "line, match",
        [
            ("not json", "not valid JSON"),
            ('["op"]', "JSON object"),
            ('{"op": "destroy"}', "unknown op"),
            ('{"op": "synth"}', "requires a 'spec'"),
            ('{"op": "size", "word": "zz"}', "not valid hex"),
            ('{"op": "size", "word": 17}', "hex string"),
            ('{"op": "synth", "spec": "x", "wires": 9}', "wires"),
            ('{"op": "synth", "spec": "x", "deadline_ms": 0}', "deadline_ms"),
            ('{"op": "synth", "spec": "x", "deadline_ms": -5}', "deadline_ms"),
            ('{"op": "synth", "spec": "x", "deadline_ms": "1s"}', "deadline_ms"),
            ('{"op": "synth", "spec": "x", "deadline_ms": true}', "deadline_ms"),
        ],
    )
    def test_decode_rejects(self, line, match):
        with pytest.raises(ProtocolError, match=match):
            protocol.decode_request(line)

    def test_decode_deadline_ms(self):
        req = protocol.decode_request(
            '{"op": "synth", "spec": "[0,1,2,3]", "deadline_ms": 250}'
        )
        assert req.deadline_ms == 250
        assert "deadline_ms" not in req.options

    def test_decode_health_op(self):
        req = protocol.decode_request('{"op": "health"}')
        assert req.op == "health"

    def test_response_roundtrip(self):
        line = protocol.encode_response(7, result={"size": 3})
        body = protocol.decode_response(line)
        assert body == {"id": 7, "ok": True, "result": {"size": 3}}

    def test_encode_requires_exactly_one(self):
        with pytest.raises(ValueError):
            protocol.encode_response(1)
        with pytest.raises(ValueError):
            protocol.encode_response(1, result={}, error={})

    def test_error_envelope_size_limit(self):
        env = protocol.error_envelope(
            SizeLimitExceededError("too big", lower_bound=9)
        )
        assert env["kind"] == "size_limit" and env["lower_bound"] == 9
        with pytest.raises(SizeLimitExceededError) as excinfo:
            protocol.raise_for_error(env)
        assert excinfo.value.lower_bound == 9

    def test_error_envelope_shutdown(self):
        env = protocol.error_envelope(ServiceShutdownError("draining"))
        assert env["kind"] == "shutdown"
        with pytest.raises(ServiceShutdownError):
            protocol.raise_for_error(env)

    def test_error_envelope_internal(self):
        env = protocol.error_envelope(RuntimeError("boom"))
        assert env["kind"] == "internal" and "boom" in env["message"]

    def test_word_to_hex_roundtrip(self):
        word = Permutation.from_spec(SHIFT).word
        assert int(protocol.word_to_hex(word), 16) == word


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(4)
        registry.gauge("depth").set(3)
        registry.gauge("depth").dec()
        snap = registry.snapshot()
        assert snap["requests"] == 5
        assert snap["depth"] == 2

    def test_histogram_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for v in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert snap["p50"] in (2.0, 3.0)

    def test_histogram_reservoir_bounded(self):
        from repro.service.metrics import Histogram

        hist = Histogram(reservoir_size=8)
        for v in range(100):
            hist.observe(float(v))
        assert hist.count == 100
        assert hist.max == 99.0
        # percentiles come from the most recent window
        assert hist.percentile(0.0) >= 92.0

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.snapshot() == {"count": 0}
        assert hist.percentile(0.5) is None

    def test_name_type_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_size_shared_across_class(self, db4_k4):
        cache = ResultCache(capacity=16)
        word = int(db4_k4.reps_by_size[3][5])
        canon = db4_k4.canonical_key(word)
        cache.store_size(4, canon, 3)
        from repro.core import equivalence

        for member in equivalence.equivalence_class(word, 4):
            hit = cache.lookup(4, db4_k4.canonical_key(member), member)
            assert hit is not None and hit.size == 3

    def test_circuit_is_per_word(self):
        cache = ResultCache(capacity=16)
        cache.store_circuit(4, 100, 200, 2, "CNOT(a,b) NOT(a)")
        hit = cache.lookup(4, 100, 200)
        assert hit.circuit == "CNOT(a,b) NOT(a)"
        other = cache.lookup(4, 100, 201)
        assert other is not None and other.size == 2 and other.circuit is None

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.store_size(4, 1, 1)
        cache.store_size(4, 2, 2)
        cache.lookup(4, 1)          # touch 1 -> 2 becomes LRU
        cache.store_size(4, 3, 3)   # evicts 2
        assert cache.lookup(4, 2) is None
        assert cache.lookup(4, 1).size == 1
        assert len(cache) == 2

    def test_bound_gated_by_engine_depth(self):
        cache = ResultCache(capacity=4)
        cache.store_bound(4, 5, lower_bound=8, max_size=7)
        assert cache.bound_for(4, 5, engine_max_size=7) == 8
        # a deeper engine must not trust the stale proof
        assert cache.bound_for(4, 5, engine_max_size=9) is None

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(capacity=8, path=path)
        cache.store_circuit(4, 10, 20, 2, "NOT(a) NOT(b)")
        cache.store_bound(4, 11, lower_bound=8, max_size=7)
        cache.save()
        warm = ResultCache(capacity=8, path=path)
        assert len(warm) == 2
        hit = warm.lookup(4, 10, 20)
        assert hit.size == 2 and hit.circuit == "NOT(a) NOT(b)"
        assert warm.bound_for(4, 11, 7) == 8

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ServiceError, match="unreadable"):
            ResultCache(capacity=8).load(path)

    def test_load_rejects_version_mismatch(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        with pytest.raises(ServiceError, match="version"):
            ResultCache(capacity=8).load(path)

    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        cache.store_size(4, 1, 1)
        cache.lookup(4, 1)
        cache.lookup(4, 2)
        assert cache.hit_rate() == pytest.approx(0.5)
        assert cache.stats()["entries"] == 1


# ----------------------------------------------------------------------
# Batch queue
# ----------------------------------------------------------------------
class TestBatchQueue:
    def test_coalesces_pending_items(self):
        queue = BatchQueue(max_batch=10, coalesce_window=0.0)
        for i in range(5):
            queue.put(PendingRequest(i))
        batch = queue.next_batch()
        assert [p.request for p in batch] == [0, 1, 2, 3, 4]

    def test_respects_max_batch(self):
        queue = BatchQueue(max_batch=3, coalesce_window=0.0)
        for i in range(5):
            queue.put(PendingRequest(i))
        assert len(queue.next_batch()) == 3
        assert len(queue.next_batch()) == 2

    def test_put_after_close_raises(self):
        queue = BatchQueue()
        queue.close()
        with pytest.raises(ServiceShutdownError):
            queue.put(PendingRequest(0))

    def test_queue_full_raises(self):
        queue = BatchQueue(max_depth=1)
        queue.put(PendingRequest(0))
        with pytest.raises(ServiceShutdownError, match="full"):
            queue.put(PendingRequest(1))

    def test_drains_after_close_then_none(self):
        queue = BatchQueue(max_batch=2, coalesce_window=0.05)
        for i in range(3):
            queue.put(PendingRequest(i))
        queue.close()
        assert len(queue.next_batch()) == 2
        assert len(queue.next_batch()) == 1
        assert queue.next_batch() is None

    def test_coalescing_window_gathers_concurrent_producers(self):
        queue = BatchQueue(max_batch=64, coalesce_window=0.25)
        start = threading.Barrier(3)

        def producer():
            start.wait()
            for i in range(4):
                queue.put(PendingRequest(i))
                time.sleep(0.01)

        threads = [threading.Thread(target=producer) for _ in range(2)]
        for t in threads:
            t.start()
        start.wait()
        batch = queue.next_batch()
        for t in threads:
            t.join()
        assert len(batch) > 1


# ----------------------------------------------------------------------
# Service core (in-process, no sockets)
# ----------------------------------------------------------------------
class TestServiceCore:
    def test_ping(self, service):
        body = submit(service, "ping")
        assert body["ok"] and body["result"]["pong"] is True

    def test_synth_fast_path(self, service):
        body = submit(service, "synth", spec=SHIFT)
        assert body["ok"]
        result = body["result"]
        assert result["size"] == 4
        assert result["circuit"] == "TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)"
        assert result["source"] in ("db", "cache")
        assert result["depth"] == 4

    def test_identity(self, service):
        body = submit(service, "synth", spec=IDENTITY)
        assert body["result"]["size"] == 0
        assert body["result"]["circuit"] == "(identity)"
        assert body["result"]["cost"] == 0

    def test_size_op_has_no_circuit(self, service):
        body = submit(service, "size", spec=SHIFT)
        assert body["ok"] and body["result"]["size"] == 4
        assert "circuit" not in body["result"]

    def test_word_query(self, service):
        word = Permutation.from_spec(SHIFT).word
        body = submit(service, "size", word=f"{word:#x}", wires=4)
        assert body["result"]["size"] == 4

    def test_value_list_spec(self, service):
        body = submit(service, "size", spec=list(range(1, 16)) + [0])
        assert body["result"]["size"] == 4

    def test_invalid_spec_envelope(self, service):
        body = submit(service, "synth", spec="[0,0,1,2]")
        assert not body["ok"]
        assert body["error"]["kind"] == "invalid_spec"

    def test_wires_mismatch_envelope(self, service):
        body = submit(service, "synth", spec="[1,0,2,3]", wires=2)
        assert not body["ok"]
        assert "n_wires=4" in body["error"]["message"]

    def test_malformed_line_envelope(self, service):
        body = json.loads(service.handle_line("this is not json"))
        assert not body["ok"] and body["error"]["kind"] == "protocol"
        assert body["id"] is None

    def test_hard_path_inline(self, service):
        body = submit(service, "synth", spec=HARD_SPECS[0])
        assert body["ok"]
        assert body["result"]["size"] == 5
        assert body["result"]["source"] == "scan"
        assert body["result"]["lists_scanned"] >= 1

    def test_out_of_reach_envelope_and_cached_proof(self, service):
        body = submit(service, "synth", spec=OUT_OF_REACH)
        assert not body["ok"]
        assert body["error"]["kind"] == "size_limit"
        assert body["error"]["lower_bound"] == 8  # L = 7 exhausted
        # Second query serves the proof from the bound cache.
        again = submit(service, "size", spec=OUT_OF_REACH)
        assert not again["ok"]
        assert again["error"]["lower_bound"] == 8
        assert "cached" in again["error"]["message"]

    def test_cache_promotion_and_class_sharing(self, service):
        first = submit(service, "synth", spec=HARD_SPECS[1])
        assert first["result"]["source"] == "scan"
        second = submit(service, "synth", spec=HARD_SPECS[1])
        assert second["result"]["source"] == "cache"
        assert second["result"]["circuit"] == first["result"]["circuit"]
        # An equivalent function (the inverse) shares the class entry:
        # its *size* is served without a new scan.
        inverse = Permutation.from_spec(HARD_SPECS[1]).inverse()
        hard_before = service.metrics.counter("hard_queries").value
        inv = submit(service, "size", spec=inverse.spec())
        assert inv["result"]["size"] == 5
        assert service.metrics.counter("hard_queries").value == hard_before

    def test_stats_op(self, service):
        submit(service, "synth", spec=SHIFT)
        body = submit(service, "stats")
        stats = body["result"]
        assert stats["config"]["k"] == 4
        assert stats["config"]["max_size"] == 7
        assert stats["metrics"]["requests_total"] >= 2
        assert "cache" in stats and "uptime" in stats

    def test_byte_identical_to_direct_search(self, service, engine4_l7):
        specs = [IDENTITY, SHIFT, *HARD_SPECS]
        for spec in specs:
            direct = engine4_l7.search(Permutation.from_spec(spec).word)
            body = submit(service, "synth", spec=spec)
            assert body["ok"], body
            assert body["result"]["size"] == direct.size
            assert body["result"]["circuit"] == str(direct.circuit)
        # and again, now served from the cache: still identical
        for spec in specs:
            direct = engine4_l7.search(Permutation.from_spec(spec).word)
            body = submit(service, "synth", spec=spec)
            assert body["result"]["circuit"] == str(direct.circuit)

    def test_submit_after_shutdown_envelope(self, handle4):
        svc = SynthesisService(
            handle4,
            config=ServiceConfig(n_wires=4, k=4, max_list_size=3),
        )
        svc.start()
        svc.shutdown()
        body = json.loads(
            svc.handle_line(json.dumps({"id": 9, "op": "size", "spec": SHIFT}))
        )
        assert not body["ok"]
        assert body["error"]["kind"] == "shutdown"

    def test_shutdown_idempotent(self, handle4):
        svc = SynthesisService(handle4)
        svc.start()
        svc.shutdown()
        svc.shutdown()
        assert svc.stopped


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_inline_pool_matches_engine(self, handle4):
        pool = HardQueryPool(handle4, processes=0)
        words = [Permutation.from_spec(s).word for s in HARD_SPECS[:2]]
        results = pool.solve_many(words)
        assert [r.size for r in results] == [5, 5]
        for word, result in zip(words, results):
            direct = handle4.engine.search(word)
            assert result.circuit == str(direct.circuit)
        pool.close()

    def test_inline_pool_reports_bound(self, handle4):
        pool = HardQueryPool(handle4, processes=0)
        word = Permutation.from_spec(OUT_OF_REACH).word
        (result,) = pool.solve_many([word])
        assert result.size is None and result.lower_bound == 8
        with pytest.raises(SizeLimitExceededError):
            result.raise_if_bound()
        pool.close()

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_fork_pool_matches_inline(self, handle4):
        words = [Permutation.from_spec(s).word for s in HARD_SPECS]
        inline = [solve_with_engine(handle4.engine, w) for w in words]
        with HardQueryPool(handle4, processes=2, start_method="fork") as pool:
            assert pool.is_parallel
            forked = pool.solve_many(words)
        assert [r.size for r in forked] == [r.size for r in inline]
        assert [r.circuit for r in forked] == [r.circuit for r in inline]

    def test_solve_many_empty(self, handle4):
        pool = HardQueryPool(handle4, processes=0)
        assert pool.solve_many([]) == []
        pool.close()


# ----------------------------------------------------------------------
# TCP end to end
# ----------------------------------------------------------------------
class TestTCPEndToEnd:
    def test_concurrent_clients_batch_and_drain(self, handle4):
        svc = SynthesisService(
            handle4,
            config=ServiceConfig(
                n_wires=4, k=4, max_list_size=3, batch_window=0.02,
            ),
        )
        daemon = TCPDaemon(svc, port=0)
        with daemon:
            host, port = daemon.address
            specs = [SHIFT, IDENTITY, *HARD_SPECS]
            expected = {}
            for spec in specs:
                outcome = handle4.engine.search(
                    Permutation.from_spec(spec).word
                )
                expected[spec] = (outcome.size, str(outcome.circuit))
            errors: list = []
            start = threading.Barrier(6)

            def client_thread(seed: int) -> None:
                try:
                    with ServiceClient(host, port) as client:
                        start.wait()
                        for i in range(4 * len(specs)):
                            spec = specs[(seed + i) % len(specs)]
                            result = client.synth(spec)
                            size, circuit = expected[spec]
                            assert result["size"] == size
                            assert result["circuit"] == circuit
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client_thread, args=(i,))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            with ServiceClient(host, port) as client:
                stats = client.stats()
                assert stats["metrics"]["requests_synth"] >= 6 * 4 * len(specs)
                # concurrency must actually have been coalesced
                assert stats["mean_batch_size"] > 1.0
                ack = client.shutdown()
                assert ack == {"draining": True}
            deadline = time.monotonic() + 10
            while not svc.stopped and time.monotonic() < deadline:
                time.sleep(0.02)
            assert svc.stopped

    def test_requests_during_drain_get_shutdown_envelope(self, handle4):
        svc = SynthesisService(handle4)
        daemon = TCPDaemon(svc, port=0)
        with daemon:
            host, port = daemon.address
            with ServiceClient(host, port) as client:
                client.shutdown()
                deadline = time.monotonic() + 10
                while not svc.stopped and time.monotonic() < deadline:
                    time.sleep(0.02)
                with pytest.raises((ServiceShutdownError, ServiceError)):
                    client.size(SHIFT)

    def test_client_connect_refused(self):
        client = ServiceClient("127.0.0.1", 1)  # nothing listens there
        with pytest.raises(ServiceError, match="cannot connect"):
            client.ping()


# ----------------------------------------------------------------------
# stdio transport
# ----------------------------------------------------------------------
class TestStdioTransport:
    def test_serve_stdio_roundtrip(self, handle4):
        svc = SynthesisService(
            handle4,
            config=ServiceConfig(n_wires=4, k=4, max_list_size=3),
        )
        lines = [
            json.dumps({"id": 1, "op": "ping"}),
            json.dumps({"id": 2, "op": "synth", "spec": SHIFT}),
            json.dumps({"id": 3, "op": "shutdown"}),
        ]
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        served = serve_stdio(svc, stdin=stdin, stdout=stdout)
        assert served == 3
        responses = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert responses[0]["result"]["pong"] is True
        assert responses[1]["result"]["size"] == 4
        assert responses[2]["result"]["draining"] is True
        assert svc.stopped

    def test_serve_stdio_eof_shuts_down(self, handle4):
        svc = SynthesisService(handle4)
        stdout = io.StringIO()
        served = serve_stdio(svc, stdin=io.StringIO(""), stdout=stdout)
        assert served == 0
        assert svc.stopped


# ----------------------------------------------------------------------
# Persistent result cache through the service
# ----------------------------------------------------------------------
class TestServicePersistence:
    def test_cache_survives_restart(self, handle4, tmp_path):
        path = tmp_path / "results.json"
        config = ServiceConfig(
            n_wires=4, k=4, max_list_size=3, result_cache_path=str(path)
        )
        svc = SynthesisService(handle4, config=config)
        svc.start()
        first = submit(svc, "synth", spec=HARD_SPECS[2])
        assert first["result"]["source"] == "scan"
        svc.shutdown()
        assert path.exists()

        warm = SynthesisService(handle4, config=config)
        warm.start()
        second = submit(warm, "synth", spec=HARD_SPECS[2])
        warm.shutdown()
        assert second["result"]["source"] == "cache"
        assert second["result"]["circuit"] == first["result"]["circuit"]
