"""Tests for the Permutation value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permutation import Permutation
from repro.errors import InvalidPermutationError

perms4 = st.permutations(list(range(16))).map(Permutation.from_values)
perms3 = st.permutations(list(range(8))).map(Permutation.from_values)


class TestConstruction:
    def test_identity(self):
        identity = Permutation.identity(4)
        assert identity.is_identity()
        assert identity.values == tuple(range(16))

    def test_from_spec(self):
        perm = Permutation.from_spec("[0,2,1,3]")
        assert perm.n_wires == 2
        assert perm(1) == 2

    def test_coerce_accepts_everything(self):
        reference = Permutation.from_values([0, 2, 1, 3])
        assert Permutation.coerce(reference) is reference
        assert Permutation.coerce("[0,2,1,3]") == reference
        assert Permutation.coerce([0, 2, 1, 3]) == reference
        assert Permutation.coerce(reference.word, 2) == reference

    def test_coerce_word_needs_width(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.coerce(0x3210)

    def test_invalid_word_rejected(self):
        with pytest.raises(InvalidPermutationError):
            Permutation(0xFFFF, 2)

    def test_random_is_valid(self, rng):
        for _ in range(20):
            perm = Permutation.random(4, rng)
            assert sorted(perm.values) == list(range(16))


class TestAlgebra:
    @given(perms4)
    def test_inverse(self, perm):
        assert perm.then(perm.inverse()).is_identity()
        assert perm.inverse().inverse() == perm

    @given(perms4, perms4)
    def test_then_order(self, p, q):
        composed = p.then(q)
        for x in range(16):
            assert composed(x) == q(p(x))

    @given(perms4, perms4)
    def test_compose_after_is_mathematical_composition(self, p, q):
        assert p.compose_after(q) == q.then(p)

    def test_width_mismatch(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.identity(4).then(Permutation.identity(3))

    @given(perms4)
    def test_order_annihilates(self, perm):
        power = Permutation.identity(4)
        for _ in range(perm.order()):
            power = power.then(perm)
        assert power.is_identity()

    def test_call_range_check(self):
        with pytest.raises(InvalidPermutationError):
            Permutation.identity(4)(16)


class TestEquivalence:
    @given(perms4)
    def test_canonical_minimal(self, perm):
        members = perm.equivalence_class()
        assert perm.canonical() == members[0]
        assert perm.canonical().is_canonical()
        assert len(members) == perm.class_size()

    @given(perms4)
    def test_conjugate_stays_in_class(self, perm):
        conjugate = perm.conjugate((1, 0, 3, 2))
        assert conjugate.canonical() == perm.canonical()

    @given(perms3)
    def test_n3_class_size_bounds(self, perm):
        assert 1 <= perm.class_size() <= 12


class TestStructure:
    def test_fixed_points(self):
        perm = Permutation.from_values([0, 1, 3, 2])
        assert perm.fixed_points() == [0, 1]

    def test_parity_matches_spec_module(self):
        from repro.core.spec import parity

        perm = Permutation.from_spec("[1,0,2,3]")
        assert perm.parity() == parity([1, 0, 2, 3]) == 1

    def test_is_affine_linear(self):
        # NOT(a) is affine but not strictly linear.
        not_a = Permutation.from_values([x ^ 1 for x in range(16)])
        assert not_a.is_affine()
        assert not not_a.is_linear()
        # CNOT(a,b) is strictly linear.
        cnot = Permutation.from_values([x ^ ((x & 1) << 1) for x in range(16)])
        assert cnot.is_linear() and cnot.is_affine()
        # TOF is not affine.
        tof = Permutation.from_values(
            [x ^ (((x & 1) & ((x >> 1) & 1)) << 2) for x in range(16)]
        )
        assert not tof.is_affine()

    def test_spec_string_roundtrip(self):
        perm = Permutation.from_spec("[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]")
        assert Permutation.from_spec(perm.spec()) == perm
        assert "hwb" not in repr(perm)  # repr is the spec, not a name
