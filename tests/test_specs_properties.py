"""Property tests for the function-form front-end.

Runs on 3 wires against the complete n = 3 database (every 3-bit
permutation is within reach there), so the properties quantify over the
whole space instead of the slice a k = 4 database happens to cover:

* A fully-specified bijective spec compiles to exactly the gate count
  of direct synthesis of its permutation -- the front-end adds no cost.
* A don't-care spec's chosen completion re-simulates correctly on every
  specified row, and exhaustive searches claim ``optimal``.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.permutation import Permutation
from repro.engines import SynthesisRequest, create_engine
from repro.specs import (
    LookupTableSpec,
    MultiOutputSpec,
    TruthTableSpec,
    compile_spec,
)

SETTINGS = settings(max_examples=25, deadline=None)


@pytest.fixture(scope="module")
def engine3w(db3, engine3):
    """Optimal engine over the complete n = 3 state (L = 8 + 4)."""
    from repro.synth.synthesizer import SynthesisHandle

    handle = SynthesisHandle(
        n_wires=3,
        k=8,
        max_list_size=4,
        database=db3,
        engine=engine3,
        cache_path=None,
    )
    return create_engine("optimal", handle=handle)


permutations3 = st.permutations(list(range(8)))

# 2-input truth tables with 0-3 don't-care rows (at least one row
# specified): embedded on 3 wires the free-row count stays <= 7, so
# the completion search is always exhaustive.
truth_tables2 = st.lists(
    st.sampled_from([0, 1, None]), min_size=4, max_size=4
).filter(lambda rows: any(v is not None for v in rows))


class TestFullySpecified:
    @SETTINGS
    @given(values=permutations3)
    def test_lut_size_equals_direct_synthesis(self, engine3w, values):
        spec = LookupTableSpec(
            table=tuple(values), n_inputs=3, n_outputs=3
        )
        result = compile_spec(spec, engine3w, n_wires=3)
        direct = engine3w.synthesize(SynthesisRequest(
            spec=Permutation.from_values(values), n_wires=3
        ))
        assert result.size == direct.size
        assert result.guarantee == "optimal"
        assert result.exhaustive and result.completions_tried == 1
        for x in range(8):
            assert result.output_of(x) == values[x]

    @SETTINGS
    @given(values=permutations3)
    def test_multi_output_equals_lut(self, engine3w, values):
        as_lut = LookupTableSpec(
            table=tuple(values), n_inputs=3, n_outputs=3
        )
        as_mo = MultiOutputSpec(
            rows=tuple(values), n_inputs=3, n_outputs=3
        )
        assert (
            compile_spec(as_lut, engine3w, n_wires=3).to_wire()["embedding"]
            == compile_spec(as_mo, engine3w, n_wires=3).to_wire()["embedding"]
        )


class TestDontCares:
    @SETTINGS
    @given(rows=truth_tables2)
    def test_completion_honours_specified_rows(self, engine3w, rows):
        spec = TruthTableSpec(rows=tuple(rows), n_inputs=2)
        result = compile_spec(spec, engine3w, n_wires=3)
        for x, want in enumerate(rows):
            if want is not None:
                assert result.output_of(x) == want
        # <= 7 free rows means 7! > 5040 never triggers: always exact.
        assert result.exhaustive
        assert result.guarantee == "optimal"
        assert result.permutation.word == Permutation.from_values(
            [result.permutation(x) for x in range(8)]
        ).word

    @SETTINGS
    @given(rows=truth_tables2)
    def test_dont_cares_never_cost_more(self, engine3w, rows):
        """Relaxing any row to a don't-care can only shrink the
        optimum: the specified spec's completion set is a subset."""
        relaxed = compile_spec(
            TruthTableSpec(rows=tuple(rows), n_inputs=2), engine3w, n_wires=3
        )
        tightened = tuple(v if v is not None else 0 for v in rows)
        full = compile_spec(
            TruthTableSpec(rows=tightened, n_inputs=2), engine3w, n_wires=3
        )
        assert relaxed.size <= full.size
