"""Property tests: every public packed-word op stays inside 64 bits.

The mask64 checker (src/repro/checks/rules/mask64.py) enforces the mask
discipline statically; these Hypothesis properties enforce the same
invariant dynamically: no public operation of :mod:`repro.core.packed`
ever produces a value outside ``[0, 2**64)``, and every result that
encodes a permutation round-trips through ``pack``/``unpack``.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import packed
from repro.core.bitops import MASK64
from repro.hashing.wang import hash64shift

WIRE_RANGE = (2, 3, 4)


def perm_words(n_wires):
    """Strategy: a random packed permutation on ``n_wires`` wires."""
    size = 1 << n_wires
    return st.permutations(list(range(size))).map(packed.pack)


def wires_and_words(count):
    """Strategy: ``(n_wires, word_1, ..., word_count)`` tuples."""
    return st.sampled_from(WIRE_RANGE).flatmap(
        lambda n: st.tuples(st.just(n), *[perm_words(n)] * count)
    )


def assert_fits_and_roundtrips(word, n_wires):
    assert 0 <= word <= MASK64, f"{word:#x} exceeds 64 bits"
    values = packed.unpack(word, n_wires)
    assert sorted(values) == list(range(1 << n_wires))
    assert packed.pack(values) == word


@given(st.sampled_from(WIRE_RANGE))
def test_identity_fits(n):
    assert_fits_and_roundtrips(packed.identity(n), n)


@given(wires_and_words(2))
def test_compose_fits(args):
    n, p, q = args
    assert_fits_and_roundtrips(packed.compose(p, q, n), n)


@given(perm_words(4), perm_words(4))
def test_compose4_paper_fits(p, q):
    word = packed.compose4_paper(p, q)
    assert_fits_and_roundtrips(word, 4)
    assert word == packed.compose(p, q, 4)


@given(wires_and_words(1))
def test_inverse_fits(args):
    n, p = args
    inv = packed.inverse(p, n)
    assert_fits_and_roundtrips(inv, n)
    assert packed.compose(p, inv, n) == packed.identity(n)


@given(wires_and_words(1), st.data())
def test_conjugate_adjacent_fits(args, data):
    n, p = args
    pair = data.draw(st.integers(min_value=0, max_value=n - 2))
    word = packed.conjugate_adjacent(p, pair, n)
    assert_fits_and_roundtrips(word, n)
    # Conjugation by an involution is an involution.
    assert packed.conjugate_adjacent(word, pair, n) == p


@given(perm_words(4))
def test_conjugate01_paper_fits(p):
    assert_fits_and_roundtrips(packed.conjugate01_paper(p), 4)


@given(wires_and_words(1), st.data())
def test_conjugate_by_wire_perm_fits(args, data):
    n, p = args
    wire_perm = tuple(data.draw(st.permutations(list(range(n)))))
    assert_fits_and_roundtrips(
        packed.conjugate_by_wire_perm(p, wire_perm, n), n
    )


@settings(max_examples=30)
@given(st.sampled_from(WIRE_RANGE), st.integers(min_value=0, max_value=2**32))
def test_random_word_fits(n, seed):
    word = packed.random_word(n, random.Random(seed))
    assert_fits_and_roundtrips(word, n)


@given(st.integers(min_value=0, max_value=MASK64))
def test_hash64shift_fits(key):
    assert 0 <= hash64shift(key) <= MASK64


@given(st.integers())
def test_hash64shift_fits_any_int(key):
    # The scalar hash masks its input first, so arbitrary Python ints
    # (even negative) stay inside 64 bits.
    assert 0 <= hash64shift(key) <= MASK64
