"""Tests for the span tracer (repro.perf.trace).

Covers the design constraints stated in the module docstring: span
nesting and attributes, bounded memory (max_roots / max_children with
exact aggregates regardless), sinks, thread-local stacks, and the
near-zero disabled overhead that lets the instrumentation live inside
scalar hot paths like canonicalization.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.perf.trace import (
    _NULL_SPAN,
    Span,
    disable,
    enable,
    get_tracer,
    is_enabled,
    render_aggregate,
    render_tree,
    spans_to_dicts,
    trace,
)


@pytest.fixture(autouse=True)
def tracing_off():
    """Every test starts and ends with the module-global switch off."""
    disable()
    yield
    disable()


# ----------------------------------------------------------------------
# Disabled path
# ----------------------------------------------------------------------
class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        assert not is_enabled()
        assert get_tracer() is None
        ctx = trace("anything", level=3)
        assert ctx is _NULL_SPAN
        # Always the same singleton: no allocation on the disabled path.
        assert trace("other") is ctx

    def test_null_span_yields_none_and_propagates(self):
        with trace("x") as span:
            assert span is None
        with pytest.raises(ValueError):
            with trace("x"):
                raise ValueError("propagates through the null span")

    def test_disabled_overhead_is_small(self):
        """A disabled trace() call must stay well under 5% of the
        cheapest instrumented hot path (scalar canonicalization)."""
        from repro.core.equivalence import canonical

        def best_per_call(fn, n, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                for _ in range(n):
                    fn()
                best = min(best, time.perf_counter() - started)
            return best / n

        word = 0x123456789ABCDEF0
        canonical(word, 4)  # warm caches
        t_canonical = best_per_call(lambda: canonical(word, 4), 50)

        def traced_noop():
            with trace("overhead.probe"):
                pass

        t_trace = best_per_call(traced_noop, 2000)
        # Generous bound for noisy CI runners; typical ratio is <1%.
        assert t_trace < 0.05 * t_canonical, (
            f"disabled span cost {t_trace * 1e6:.2f}us vs canonical "
            f"{t_canonical * 1e6:.2f}us"
        )


# ----------------------------------------------------------------------
# Enabled: trees, attrs, aggregates, caps
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = enable()
        with trace("root", k=4) as root:
            assert root is not None
            with trace("child", i=0):
                with trace("grandchild"):
                    pass
            with trace("child", i=1):
                pass
        roots = tracer.roots()
        assert [span.name for span in roots] == ["root"]
        (tree,) = roots
        assert tree.attrs == {"k": 4}
        assert [c.name for c in tree.children] == ["child", "child"]
        assert [c.attrs["i"] for c in tree.children] == [0, 1]
        assert [g.name for g in tree.children[0].children] == ["grandchild"]
        assert tree.duration is not None and tree.duration >= 0
        for child in tree.children:
            assert child.duration <= tree.duration

    def test_span_attrs_mutable_inside_block(self):
        tracer = enable()
        with trace("bfs.level", level=2) as span:
            span.attrs["classes"] = 77
        (root,) = tracer.roots()
        assert root.attrs == {"level": 2, "classes": 77}

    def test_error_recorded_and_exception_propagates(self):
        tracer = enable()
        with pytest.raises(KeyError):
            with trace("failing"):
                raise KeyError("boom")
        (root,) = tracer.roots()
        assert root.error == "KeyError"
        assert root.duration is not None

    def test_max_roots_evicts_oldest(self):
        tracer = enable(max_roots=2)
        for i in range(4):
            with trace(f"root{i}"):
                pass
        assert [span.name for span in tracer.roots()] == ["root2", "root3"]

    def test_max_children_cap_counts_dropped(self):
        tracer = enable(max_children=3)
        with trace("parent"):
            for i in range(10):
                with trace("child", i=i):
                    pass
        (root,) = tracer.roots()
        assert len(root.children) == 3
        assert root.dropped_children == 7
        # Aggregates stay exact despite the cap.
        agg = tracer.aggregate()
        assert agg["child"]["count"] == 10
        assert agg["parent"]["count"] == 1

    def test_aggregate_statistics(self):
        tracer = enable()
        for _ in range(5):
            with trace("op"):
                pass
        agg = tracer.aggregate()
        entry = agg["op"]
        assert entry["count"] == 5
        assert 0 <= entry["min_s"] <= entry["mean_s"] <= entry["max_s"]
        assert entry["total_s"] == pytest.approx(entry["mean_s"] * 5)

    def test_reset_clears_roots_and_aggregates(self):
        tracer = enable()
        with trace("x"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.aggregate() == {}

    def test_mispaired_exit_unwinds_stack(self):
        """Closing an outer span while an inner one leaked (generator
        abandoned mid-iteration, say) must not corrupt the stack."""
        tracer = enable()
        outer = trace("outer")
        inner = trace("inner")
        outer.__enter__()
        inner.__enter__()
        # Close outer without closing inner: the stack unwinds past it.
        outer.__exit__(None, None, None)
        with trace("after"):
            pass
        names = [span.name for span in tracer.roots()]
        assert names == ["outer", "after"]


# ----------------------------------------------------------------------
# Switch semantics, sinks, threads
# ----------------------------------------------------------------------
class TestTracerLifecycle:
    def test_enable_is_idempotent(self):
        first = enable(max_roots=8)
        second = enable(max_roots=999)
        assert second is first
        assert first.max_roots == 8
        disable()
        assert not is_enabled()
        assert trace("x") is _NULL_SPAN

    def test_sink_receives_every_completed_span(self):
        seen = []
        enable(sink=lambda name, seconds: seen.append((name, seconds)))
        with trace("a"):
            with trace("b"):
                pass
        names = [name for name, _ in seen]
        assert names == ["b", "a"]  # completion order: innermost first
        assert all(seconds >= 0 for _, seconds in seen)

    def test_enable_adds_sink_to_existing_tracer(self):
        enable()
        seen = []
        enable(sink=lambda name, seconds: seen.append(name))
        with trace("x"):
            pass
        assert seen == ["x"]

    def test_threads_build_independent_trees(self):
        tracer = enable(max_roots=16)
        barrier = threading.Barrier(2)

        def worker(tag):
            barrier.wait()
            with trace("thread.root", tag=tag):
                with trace("thread.child", tag=tag):
                    pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots()
        # Two roots, one per thread -- no cross-thread nesting.
        assert sorted(span.attrs["tag"] for span in roots) == [0, 1]
        for span in roots:
            assert [c.name for c in span.children] == ["thread.child"]
        assert tracer.aggregate()["thread.root"]["count"] == 2


# ----------------------------------------------------------------------
# Rendering / JSON export
# ----------------------------------------------------------------------
class TestRendering:
    def test_render_tree_shows_nesting_attrs_and_drops(self):
        tracer = enable(max_children=1)
        with trace("parent", k=4):
            with trace("kept"):
                pass
            with trace("dropped"):
                pass
        (root,) = tracer.roots()
        text = render_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("- parent")
        assert "[k=4]" in lines[0]
        assert "kept" in lines[1]
        assert "1 more child span(s) dropped" in lines[2]

    def test_render_aggregate_table(self):
        tracer = enable()
        with trace("alpha"):
            pass
        text = render_aggregate(tracer.aggregate())
        assert "span" in text.splitlines()[0]
        assert "alpha" in text
        assert render_aggregate({}) == "(no spans recorded)"

    def test_spans_to_dicts_round_trips_structure(self):
        tracer = enable()
        with pytest.raises(RuntimeError):
            with trace("root", level=1):
                with trace("child"):
                    pass
                raise RuntimeError("x")
        (payload,) = spans_to_dicts(tracer.roots())
        assert payload["name"] == "root"
        assert payload["attrs"] == {"level": 1}
        assert payload["error"] == "RuntimeError"
        assert [c["name"] for c in payload["children"]] == ["child"]

    def test_span_to_dict_omits_empty_fields(self):
        span = Span(name="bare", attrs={}, started=0.0, duration=1.5)
        assert span.to_dict() == {"name": "bare", "duration_s": 1.5}


# ----------------------------------------------------------------------
# Integration with the instrumented hot paths
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_bfs_build_emits_level_spans(self):
        from repro.synth.bfs import build_database

        tracer = enable(max_roots=4)
        build_database(3, 4)
        agg = tracer.aggregate()
        assert agg["bfs.build"]["count"] == 1
        assert agg["bfs.level"]["count"] == 4
        (root,) = [s for s in tracer.roots() if s.name == "bfs.build"]
        levels = [c for c in root.children if c.name == "bfs.level"]
        assert [c.attrs["level"] for c in levels] == [1, 2, 3, 4]
        assert all(c.attrs["classes"] > 0 for c in levels)

    def test_canonical_emits_spans(self):
        from repro.core.equivalence import canonical

        tracer = enable()
        canonical(0x0123456789ABCDEF, 4)
        assert tracer.aggregate()["equivalence.canonical"]["count"] == 1

    def test_service_stats_and_span_metrics(self, handle4):
        from repro.service.daemon import ServiceConfig, SynthesisService

        svc = SynthesisService(
            handle4,
            config=ServiceConfig(
                n_wires=4,
                k=4,
                max_list_size=3,
                batch_window=0.0,
                extra={"trace": True},
            ),
        )
        svc.start()
        try:
            import json

            response = json.loads(
                svc.handle_line(
                    json.dumps(
                        {
                            "id": 1,
                            "op": "size",
                            "spec": "[1,0,2,3,4,5,6,7,8,9,10,11,12,13,14,15]",
                        }
                    )
                )
            )
            assert response["ok"]
            stats = svc.stats()
            assert stats["trace"]["enabled"] is True
            assert "service.batch" in stats["trace"]["aggregate"]
            # The sink feeds span_<name> histograms in the registry.
            metrics = svc.metrics.snapshot()
            assert any(key.startswith("span_service.batch") for key in metrics)
        finally:
            svc.shutdown()

    def test_service_without_trace_reports_disabled(self, handle4):
        from repro.service.daemon import ServiceConfig, SynthesisService

        svc = SynthesisService(
            handle4,
            config=ServiceConfig(
                n_wires=4, k=4, max_list_size=3, batch_window=0.0
            ),
        )
        svc.start()
        try:
            assert svc.stats()["trace"] == {"enabled": False}
        finally:
            svc.shutdown()
