"""Self-tests for the whole-program analysis layer (repro.checks.graph).

Fixtures are in-memory source sets fed to ``build_project``; end-to-end
paths (``check_paths(graph=True)``, the index cache, SARIF output, the
``--changed`` file set) use tmp_path trees.  The final class pins the
acceptance criteria on the real repository: zero unsuppressed findings
and a warm-cache graph pass under 2x the per-file baseline.
"""

import json
import subprocess
import textwrap
import time
from pathlib import Path

import pytest

from repro.checks import CheckConfig, check_paths, render_sarif
from repro.checks.graph import emit
from repro.checks.graph.cache import IndexCache, config_digest
from repro.checks.graph.index import build_file_index, module_name_for
from repro.checks.graph.project import build_project
from repro.checks.registry import get_rule
from repro.checks.runner import changed_python_files

REPO_ROOT = Path(__file__).resolve().parent.parent


def project_of(files, config=None):
    config = config or CheckConfig()
    sources = [(path, textwrap.dedent(src)) for path, src in files]
    return build_project(sources, config)


def rule_findings(rule_id, files, config=None):
    rule = get_rule(rule_id)
    project = project_of(files, config)
    return list(rule.check_project(project))


# ---------------------------------------------------------------------------
# Index fundamentals
# ---------------------------------------------------------------------------
class TestIndex:
    def test_module_name_for(self):
        assert module_name_for("src/repro/core/spec.py") == "repro.core.spec"
        assert module_name_for("src/repro/store/__init__.py") == "repro.store"
        assert module_name_for("scripts/run.py") == "scripts.run"

    def test_relative_imports_resolve(self):
        import ast

        tree = ast.parse("from . import sibling\nfrom ..errors import Boom\n")
        idx = build_file_index(
            "src/repro/core/spec.py", tree, ("lock",)
        )
        assert {(i.module, i.name) for i in idx.imports} == {
            ("repro.core", "sibling"),
            ("repro.errors", "Boom"),
        }

    def test_package_init_relative_import(self):
        import ast

        tree = ast.parse("from .writer import write_rdb\n")
        idx = build_file_index(
            "src/repro/store/__init__.py", tree, ("lock",)
        )
        assert idx.imports[0].module == "repro.store.writer"

    def test_roundtrip_through_json(self):
        import ast

        source = textwrap.dedent(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                def f(self):
                    with self._lock:
                        self.g()

                def g(self):
                    pass
            """
        )
        tree = ast.parse(source)
        idx = build_file_index("src/repro/service/c.py", tree, ("lock",))
        from repro.checks.graph.index import FileIndex

        assert FileIndex.from_json(
            json.loads(json.dumps(idx.to_json()))
        ) == idx

    def test_version_mismatch_rejected(self):
        from repro.checks.graph.index import FileIndex

        with pytest.raises(ValueError):
            FileIndex.from_json({"version": -1})


# ---------------------------------------------------------------------------
# lock-order-cycle
# ---------------------------------------------------------------------------
ABBA = """
import threading

class Pool:
    def __init__(self):
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()

    def a_then_b(self):
        with self._lock:
            with self._stats_lock:
                pass

    def b_then_a(self):
        with self._stats_lock:
            with self._lock:
                pass
"""

INTERPROCEDURAL = """
import threading

class Worker:
    def __init__(self):
        self.alpha_lock = threading.Lock()
        self.beta_lock = threading.Lock()

    def grab_beta(self):
        with self.beta_lock:
            pass

    def forward(self):
        with self.alpha_lock:
            self.grab_beta()

    def backward(self):
        with self.beta_lock:
            with self.alpha_lock:
                pass
"""


class TestLockOrderCycle:
    def test_abba_two_lock_deadlock_flagged(self):
        found = rule_findings(
            "lock-order-cycle", [("src/repro/service/pool.py", ABBA)]
        )
        assert len(found) == 1
        assert "lock-order cycle" in found[0].message
        assert "Pool._lock" in found[0].message
        assert "Pool._stats_lock" in found[0].message

    def test_interprocedural_cycle_flagged(self):
        # alpha is held in forward(); beta is acquired one call down in
        # grab_beta(); backward() takes them the other way round.
        found = rule_findings(
            "lock-order-cycle",
            [("src/repro/service/worker.py", INTERPROCEDURAL)],
        )
        assert len(found) == 1
        assert "via caller" in found[0].message

    def test_cross_file_cycle_via_attr_type(self):
        # Daemon.forward holds Daemon._lock and calls into the registry,
        # which acquires Registry._lock; Registry.locked_poke holds
        # Registry._lock and calls back into the daemon, which acquires
        # Daemon._lock.  Both call edges resolve through recorded
        # ``self.attr = ClassName(...)`` constructor assignments.
        registry = """
        import threading

        from repro.service.daemon2 import Daemon

        class Registry:
            def __init__(self):
                self._lock = threading.Lock()
                self.owner = Daemon()

            def locked_touch(self):
                with self._lock:
                    pass

            def locked_poke(self):
                with self._lock:
                    self.owner.take_main()
        """
        daemon = """
        import threading

        from repro.service.registry import Registry

        class Daemon:
            def __init__(self):
                self._lock = threading.Lock()
                self._registry = Registry()

            def take_main(self):
                with self._lock:
                    pass

            def forward(self):
                with self._lock:
                    self._registry.locked_touch()
        """
        found = rule_findings(
            "lock-order-cycle",
            [
                ("src/repro/service/registry.py", registry),
                ("src/repro/service/daemon2.py", daemon),
            ],
        )
        assert len(found) == 1
        assert "Registry._lock" in found[0].message
        assert "Daemon._lock" in found[0].message

    def test_consistent_order_not_flagged(self):
        consistent = """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._stats_lock = threading.Lock()

            def one(self):
                with self._lock:
                    with self._stats_lock:
                        pass

            def two(self):
                with self._lock:
                    with self._stats_lock:
                        pass
        """
        assert rule_findings(
            "lock-order-cycle", [("src/repro/service/pool.py", consistent)]
        ) == []

    def test_distinct_classes_do_not_alias(self):
        # Same attribute name on unrelated classes must not merge into
        # one lock node and fabricate a cycle.
        two_classes = """
        import threading

        class A:
            def __init__(self):
                self._lock = threading.Lock()
                self.other = B()

            def f(self):
                with self._lock:
                    self.other.g()

        class B:
            def __init__(self):
                self._lock = threading.Lock()

            def g(self):
                with self._lock:
                    pass
        """
        found = rule_findings(
            "lock-order-cycle",
            [("src/repro/service/two.py", two_classes)],
        )
        assert found == []  # A._lock -> B._lock only: no cycle

    def test_out_of_scope_cycle_ignored(self):
        found = rule_findings(
            "lock-order-cycle", [("src/repro/synth/pool.py", ABBA)]
        )
        assert found == []


# ---------------------------------------------------------------------------
# cross-unmasked-op
# ---------------------------------------------------------------------------
CROSS_MASK = """
MASK64 = (1 << 64) - 1

def mask64(value):
    return value & MASK64

def passthrough(word):
    return word

def rotate(word):
    spun = passthrough(word)
    return spun << 4

def safe(word):
    return mask64(passthrough(word) << 4)

def clean(word):
    return mask64(word)

def uses_clean(word):
    return clean(word) << 4
"""


class TestCrossUnmaskedOp:
    def test_taint_survives_passthrough_call(self):
        found = rule_findings(
            "cross-unmasked-op", [("src/repro/core/spin.py", CROSS_MASK)]
        )
        lines = sorted(f.line for f in found)
        # rotate(): `spun << 4` where spun = passthrough(word).
        assert len(lines) == 1
        assert "call boundary" in found[0].message

    def test_masked_returns_are_clean(self):
        # uses_clean() shifts clean(word), and clean() masks its return:
        # the summary must mark it returns-masked, no finding there.
        found = rule_findings(
            "cross-unmasked-op", [("src/repro/core/spin.py", CROSS_MASK)]
        )
        assert all("uses_clean" not in f.message for f in found)
        assert {f.line for f in found} == {12}

    def test_cross_file_summary(self):
        provider = """
        def pack(word):
            return word
        """
        consumer = """
        from repro.core.provider import pack

        def grow(word):
            return pack(word) << 8
        """
        found = rule_findings(
            "cross-unmasked-op",
            [
                ("src/repro/core/provider.py", provider),
                ("src/repro/hashing/consumer.py", consumer),
            ],
        )
        assert len(found) == 1
        assert found[0].path == "src/repro/hashing/consumer.py"

    def test_no_duplicate_of_intraprocedural_finding(self):
        direct = """
        def f(word):
            return word << 4
        """
        found = rule_findings(
            "cross-unmasked-op", [("src/repro/core/direct.py", direct)]
        )
        assert found == []  # unmasked-op already owns this site


# ---------------------------------------------------------------------------
# layer-violation
# ---------------------------------------------------------------------------
class TestLayerViolation:
    def test_upward_top_level_import_flagged(self):
        found = rule_findings(
            "layer-violation",
            [
                ("src/repro/service/daemon.py", "VALUE = 1\n"),
                (
                    "src/repro/core/bad.py",
                    "from repro.service.daemon import VALUE\n",
                ),
            ],
        )
        assert len(found) == 1
        assert "core" in found[0].message
        assert "service" in found[0].message

    def test_lazy_import_exempt(self):
        found = rule_findings(
            "layer-violation",
            [
                ("src/repro/service/daemon.py", "VALUE = 1\n"),
                (
                    "src/repro/core/lazy.py",
                    "def f():\n"
                    "    from repro.service import daemon\n"
                    "    return daemon\n",
                ),
            ],
        )
        assert found == []

    def test_allowed_edge_passes(self):
        found = rule_findings(
            "layer-violation",
            [
                ("src/repro/core/alpha.py", "VALUE = 1\n"),
                (
                    "src/repro/service/uses.py",
                    "from repro.core.alpha import VALUE\n",
                ),
            ],
        )
        assert found == []

    def test_import_cycle_flagged(self):
        found = rule_findings(
            "layer-violation",
            [
                ("src/repro/core/a.py", "from repro.core.b import X\nY = 1\n"),
                ("src/repro/core/b.py", "from repro.core.a import Y\nX = 1\n"),
            ],
        )
        assert any("import cycle" in f.message for f in found)

    def test_package_reexport_is_not_a_cycle(self):
        found = rule_findings(
            "layer-violation",
            [
                (
                    "src/repro/core/__init__.py",
                    "from repro.core.spec import Spec\n",
                ),
                (
                    "src/repro/core/spec.py",
                    "from repro.core import packed\nclass Spec: pass\n",
                ),
                ("src/repro/core/packed.py", "X = 1\n"),
            ],
        )
        assert found == []

    def test_malformed_spec_reported_not_crashed(self):
        config = CheckConfig(
            arch_layers=("nonsense entry no colon",),
            arch_allow=("ghost -> nowhere",),
        )
        found = rule_findings(
            "layer-violation",
            [("src/repro/core/ok.py", "X = 1\n")],
            config=config,
        )
        messages = [f.message for f in found]
        assert any("malformed arch-layers" in m for m in messages)
        assert any("unknown" in m for m in messages)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------
class TestIndexCache:
    def test_miss_then_hit(self, tmp_path):
        import ast

        cache = IndexCache(tmp_path)
        digest = config_digest(("lock",))
        source = "def f():\n    pass\n"
        key = IndexCache.key(source, digest)
        assert cache.get(key) is None
        idx = build_file_index(
            "src/repro/core/x.py", ast.parse(source), ("lock",)
        )
        cache.put(key, idx)
        assert cache.get(key) == idx
        assert cache.hits == 1 and cache.misses == 1

    def test_key_changes_with_source_and_config(self):
        d1 = config_digest(("lock",))
        d2 = config_digest(("lock", "mutex"))
        assert IndexCache.key("a = 1\n", d1) != IndexCache.key("a = 2\n", d1)
        assert IndexCache.key("a = 1\n", d1) != IndexCache.key("a = 1\n", d2)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = IndexCache(tmp_path)
        digest = config_digest(("lock",))
        key = IndexCache.key("x = 1\n", digest)
        (tmp_path / f"{key}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_build_project_uses_cache(self, tmp_path):
        cache = IndexCache(tmp_path)
        config = CheckConfig()
        sources = [("src/repro/core/x.py", "def f():\n    pass\n")]
        build_project(sources, config, cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        build_project(sources, config, cache=cache)
        assert cache.hits == 1


# ---------------------------------------------------------------------------
# Runner integration (graph mode, suppressions, SARIF)
# ---------------------------------------------------------------------------
class TestGraphRunner:
    def _write_tree(self, tmp_path, files):
        for rel, source in files:
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source), encoding="utf-8")
        return tmp_path

    def test_check_paths_graph_finds_deadlock(self, tmp_path):
        root = self._write_tree(
            tmp_path, [("src/repro/service/pool.py", ABBA)]
        )
        report = check_paths(
            [root / "src"], config=CheckConfig(), graph=True
        )
        assert [f.rule_id for f in report.findings] == ["lock-order-cycle"]

    def test_graph_finding_suppressible_inline(self, tmp_path):
        # The finding anchors at the cycle's first in-scope edge: the
        # inner acquire inside a_then_b.
        suppressed = ABBA.replace(
            "with self._lock:\n            with self._stats_lock:",
            "with self._lock:\n"
            "            # repro: allow[lock-order-cycle] documented in"
            " DESIGN.md\n"
            "            with self._stats_lock:",
        )
        root = self._write_tree(
            tmp_path, [("src/repro/service/pool.py", suppressed)]
        )
        report = check_paths(
            [root / "src"], config=CheckConfig(), graph=True
        )
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["lock-order-cycle"]

    def test_sarif_output_shape(self, tmp_path):
        root = self._write_tree(
            tmp_path, [("src/repro/service/pool.py", ABBA)]
        )
        report = check_paths(
            [root / "src"], config=CheckConfig(), graph=True
        )
        document = json.loads(render_sarif(report))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        result = run["results"][0]
        assert result["ruleId"] == "lock-order-cycle"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("pool.py")
        assert location["region"]["startLine"] > 0
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "lock-order-cycle" in rule_ids

    def test_sarif_empty_report(self):
        document = json.loads(render_sarif(check_paths([])))
        assert document["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# Pathological inputs
# ---------------------------------------------------------------------------
class TestPathologicalInputs:
    def test_syntax_error_file_is_a_finding(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = check_paths([tmp_path / "src"], config=CheckConfig(),
                             graph=True)
        assert [f.rule_id for f in report.findings] == ["parse-error"]

    def test_empty_file_is_clean(self, tmp_path):
        empty = tmp_path / "src" / "repro" / "core" / "empty.py"
        empty.parent.mkdir(parents=True)
        empty.write_text("", encoding="utf-8")
        report = check_paths([tmp_path / "src"], config=CheckConfig(),
                             graph=True)
        assert report.findings == []
        assert report.files_checked == 1

    def test_non_utf8_file_is_a_finding(self, tmp_path):
        binary = tmp_path / "src" / "repro" / "core" / "binary.py"
        binary.parent.mkdir(parents=True)
        binary.write_bytes(b"x = '\xff\xfe\x00'\n")
        report = check_paths([tmp_path / "src"], config=CheckConfig())
        assert [f.rule_id for f in report.findings] == ["read-error"]

    def test_symlink_loop_terminates(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "ok.py").write_text("x = 1\n", encoding="utf-8")
        try:
            (tree / "loop").symlink_to(tree)
        except OSError:  # pragma: no cover - symlinks unavailable
            pytest.skip("platform does not support symlinks")
        report = check_paths([tree], config=CheckConfig())
        assert report.files_checked == 1
        assert report.findings == []


# ---------------------------------------------------------------------------
# --changed file discovery
# ---------------------------------------------------------------------------
class TestChangedFiles:
    def _git(self, cwd, *argv):
        subprocess.run(
            ["git", *argv], cwd=cwd, check=True, capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                "PATH": "/usr/bin:/bin:/usr/local/bin",
                "HOME": str(cwd),
            },
        )

    def test_changed_since_merge_base(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "b.py").write_text("y = 1\n", encoding="utf-8")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "base")
        self._git(tmp_path, "update-ref", "refs/remotes/origin/main", "HEAD")
        (tmp_path / "a.py").write_text("x = 2\n", encoding="utf-8")
        self._git(tmp_path, "add", "a.py")
        self._git(tmp_path, "commit", "-q", "-m", "edit a")
        (tmp_path / "c.py").write_text("z = 1\n", encoding="utf-8")  # untracked
        changed = changed_python_files(tmp_path)
        assert changed is not None
        names = sorted(p.name for p in changed)
        assert names == ["a.py", "c.py"]

    def test_missing_base_ref_returns_none(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-q", "-m", "base")
        assert changed_python_files(tmp_path) is None

    def test_not_a_repo_returns_none(self, tmp_path):
        assert changed_python_files(tmp_path) is None


# ---------------------------------------------------------------------------
# repro arch emitters
# ---------------------------------------------------------------------------
class TestEmit:
    def _project(self):
        return project_of(
            [
                ("src/repro/core/alpha.py", "VALUE = 1\n"),
                (
                    "src/repro/service/uses.py",
                    "from repro.core.alpha import VALUE\n",
                ),
                ("src/repro/service/pool.py", ABBA),
            ]
        )

    def test_import_graph_json(self):
        data = json.loads(emit.import_graph_json(self._project().index))
        assert data["graph"] == "imports"
        assert data["modules"]["repro.core.alpha"]["layer"] == "core"
        edges = {(e["src"], e["dst"]) for e in data["edges"]}
        assert ("repro.service.uses", "repro.core.alpha") in edges

    def test_import_graph_dot(self):
        dot = emit.import_graph_dot(self._project().index)
        assert dot.startswith("digraph imports {")
        assert '"repro.service.uses" -> "repro.core.alpha"' in dot

    def test_lock_graph_json_reports_cycle(self):
        data = json.loads(emit.lock_graph_json(self._project().index))
        assert data["graph"] == "locks"
        assert len(data["cycles"]) == 1

    def test_lock_graph_dot_marks_cycle_red(self):
        dot = emit.lock_graph_dot(self._project().index)
        assert "color=red" in dot


# ---------------------------------------------------------------------------
# Acceptance criteria on the real repository
# ---------------------------------------------------------------------------
class TestRealTree:
    @pytest.fixture()
    def src_dir(self):
        src = REPO_ROOT / "src"
        if not src.is_dir():  # pragma: no cover
            pytest.skip("repo src tree not available")
        return src

    def test_real_tree_graph_pass_is_clean(self, src_dir):
        from repro.checks import load_config

        config = load_config(REPO_ROOT)
        report = check_paths([src_dir], config=config, graph=True)
        assert [f.format() for f in report.findings] == []

    def test_warm_cache_graph_under_2x_baseline(self, src_dir, tmp_path):
        from repro.checks import load_config

        config = load_config(REPO_ROOT)
        cache = IndexCache(tmp_path)
        check_paths([src_dir], config=config, graph=True, cache=cache)

        def measure(**kwargs):
            best = float("inf")
            for _ in range(2):
                start = time.perf_counter()
                check_paths([src_dir], config=config, **kwargs)
                best = min(best, time.perf_counter() - start)
            return best

        base = measure()
        warm = measure(graph=True, cache=cache)
        assert cache.hits > 0
        # Acceptance: whole-program pass < 2x per-file baseline on a
        # warm index cache (small slack absorbs CI timer jitter).
        assert warm < 2.0 * base + 0.25, (
            f"graph pass {warm:.3f}s vs baseline {base:.3f}s"
        )
