"""Tests for the application layer (adder + peephole optimizer)."""

import pytest

from repro.apps.adder import (
    full_adder_permutation,
    optimal_adder_circuit,
    suboptimal_adder_circuit,
)
from repro.apps.peephole import PeepholeOptimizer
from repro.core.circuit import Circuit
from repro.rng.mt19937 import MersenneTwister
from repro.rng.sampling import random_circuit
from repro.synth.synthesizer import OptimalSynthesizer


@pytest.fixture(scope="module")
def synth():
    synthesizer = OptimalSynthesizer(k=4, max_list_size=3, cache_dir=False)
    synthesizer.prepare()
    return synthesizer


class TestAdder:
    def test_adder_is_rd32(self):
        from repro.benchmarks_data import get_benchmark

        assert full_adder_permutation() == get_benchmark("rd32").permutation()

    def test_both_circuits_implement_adder(self):
        spec = full_adder_permutation()
        assert optimal_adder_circuit().implements(spec)
        assert suboptimal_adder_circuit().implements(spec)

    def test_optimal_is_smaller(self):
        assert optimal_adder_circuit().gate_count == 4
        assert suboptimal_adder_circuit().gate_count == 6

    def test_four_gates_is_provably_optimal(self, synth):
        assert synth.size(full_adder_permutation()) == 4

    def test_adder_semantics(self):
        """The adder really adds: sum/carry columns are correct."""
        spec = full_adder_permutation()
        for x in range(8):  # d = 0 ancilla
            a, b, c = x & 1, (x >> 1) & 1, (x >> 2) & 1
            y = spec(x)
            assert (y >> 2) & 1 == (a + b + c) & 1  # sum
            assert (y >> 3) & 1 == (a + b + c) >> 1  # carry


class TestPeephole:
    def test_optimizes_suboptimal_adder(self, synth):
        optimizer = PeepholeOptimizer(synth)
        report = optimizer.optimize(suboptimal_adder_circuit())
        assert report.optimized.gate_count == 4
        assert report.gates_saved == 2
        assert report.optimized.implements(full_adder_permutation())

    def test_cancelling_gates_removed(self, synth):
        optimizer = PeepholeOptimizer(synth)
        circuit = Circuit.parse("NOT(a) NOT(a) CNOT(a,b) CNOT(a,b)", 4)
        report = optimizer.optimize(circuit)
        assert report.optimized.gate_count == 0

    def test_already_optimal_untouched(self, synth):
        optimizer = PeepholeOptimizer(synth)
        circuit = optimal_adder_circuit()
        report = optimizer.optimize(circuit)
        assert report.optimized.gate_count == 4

    def test_preserves_function_on_wide_circuits(self, synth):
        """6-wire circuits: windows are remapped through <= 4 wires."""
        optimizer = PeepholeOptimizer(synth)
        for seed in (1, 2, 3):
            circuit = random_circuit(6, 25, MersenneTwister(seed))
            report = optimizer.optimize(circuit)
            assert report.optimized.truth_table() == circuit.truth_table()
            assert report.optimized.gate_count <= circuit.gate_count

    def test_usually_saves_gates_on_random_circuits(self, synth):
        """Random 4-wire circuits of 20 gates compress (avg size is ~12)."""
        optimizer = PeepholeOptimizer(synth)
        saved = 0
        for seed in range(5):
            circuit = random_circuit(4, 20, MersenneTwister(seed))
            report = optimizer.optimize(circuit)
            saved += report.gates_saved
        assert saved > 0

    def test_report_counters(self, synth):
        optimizer = PeepholeOptimizer(synth)
        report = optimizer.optimize(suboptimal_adder_circuit())
        assert report.windows_examined >= 1
        assert report.windows_replaced >= 1
        assert report.passes >= 1

    def test_window_width_validation(self, synth):
        with pytest.raises(ValueError):
            PeepholeOptimizer(synth, window_wires=5)

    def test_narrow_window(self, synth):
        """window_wires=3: TOF4 gates pass through untouched."""
        optimizer = PeepholeOptimizer(synth, window_wires=3)
        circuit = Circuit.parse("TOF4(a,b,c,d) NOT(a) NOT(a)", 4)
        report = optimizer.optimize(circuit)
        assert report.optimized.to_word() == circuit.to_word()
        assert report.optimized.gate_count == 1
