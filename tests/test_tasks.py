"""Unit tests for the cancellable work-item machinery.

Covers :mod:`repro.service.tasks`: token semantics (first-call-wins,
deadline auto-cancel, parent chaining), the work-item state machine
(including the hypothesis property that no operation sequence escapes
the pending -> running -> terminal DAG), registry accounting, and the
racing engine built on top.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError, WorkCancelledError
from repro.service.metrics import MetricsRegistry
from repro.service.tasks import (
    CANCELLED,
    DEGRADED,
    DONE,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    TRANSITIONS,
    CancelToken,
    TaskRegistry,
    WorkItem,
)


class FakeDeadline:
    """Duck-typed deadline: expired() flips when told to."""

    def __init__(self, expired: bool = False) -> None:
        self._expired = expired

    def expire(self) -> None:
        self._expired = True

    def expired(self) -> bool:
        return self._expired


class TestCancelToken:
    def test_fresh_token_is_live(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.reason is None
        token.checkpoint()  # no raise

    def test_cancel_sets_reason_and_first_call_wins(self):
        token = CancelToken()
        assert token.cancel("breaker_open") is True
        assert token.cancel("shutdown") is False
        assert token.cancelled
        assert token.reason == "breaker_open"

    def test_checkpoint_raises_with_reason(self):
        token = CancelToken()
        token.cancel("deadline")
        with pytest.raises(WorkCancelledError) as exc_info:
            token.checkpoint()
        assert exc_info.value.reason == "deadline"
        assert "deadline" in str(exc_info.value)

    def test_deadline_expiry_reads_as_cancelled(self):
        deadline = FakeDeadline()
        token = CancelToken(deadline=deadline)
        assert not token.cancelled
        deadline.expire()
        assert token.cancelled
        assert token.reason == "deadline"

    def test_parent_cancel_propagates_reason(self):
        parent = CancelToken()
        child = parent.child()
        assert not child.cancelled
        parent.cancel("lost_race")
        assert child.cancelled
        assert child.reason == "lost_race"

    def test_child_shares_parent_deadline(self):
        deadline = FakeDeadline()
        child = CancelToken(deadline=deadline).child()
        deadline.expire()
        assert child.cancelled
        assert child.reason == "deadline"

    def test_child_cancel_does_not_touch_parent(self):
        parent = CancelToken()
        child = parent.child()
        child.cancel("lost_race")
        assert not parent.cancelled

    def test_wait_cancelled_is_bounded(self):
        token = CancelToken()
        assert token.wait_cancelled(timeout=0.01) is False
        token.cancel()
        assert token.wait_cancelled(timeout=0.01) is True

    def test_explicit_cancel_beats_later_deadline(self):
        deadline = FakeDeadline()
        token = CancelToken(deadline=deadline)
        token.cancel("shutdown")
        deadline.expire()
        assert token.reason == "shutdown"


class TestWorkItemStateMachine:
    def test_happy_path(self):
        item = WorkItem("scan")
        assert item.state == PENDING
        assert not item.finished
        item.start()
        assert item.state == RUNNING
        item.finish(42)
        assert item.state == DONE
        assert item.finished
        assert item.result == 42

    def test_pending_cancel_is_immediate(self):
        item = WorkItem("scan")
        assert item.cancel("shutdown") is True
        assert item.state == CANCELLED
        assert item.token.reason == "shutdown"

    def test_running_cancel_needs_cooperation(self):
        item = WorkItem("scan")
        item.start()
        assert item.cancel("deadline") is False
        assert item.state == RUNNING  # not terminal yet
        assert item.token.cancelled
        assert item.mark_cancelled() is True
        assert item.state == CANCELLED

    def test_running_force_cancel_is_immediate(self):
        item = WorkItem("scan")
        item.start()
        assert item.cancel("breaker_open", force=True) is True
        assert item.state == CANCELLED

    def test_terminal_states_latch(self):
        item = WorkItem("scan")
        item.start()
        item.finish("answer")
        with pytest.raises(ServiceError):
            item.start()
        with pytest.raises(ServiceError):
            item.finish("other")
        with pytest.raises(ServiceError):
            item.degrade()
        assert item.cancel("late") is False
        assert item.state == DONE
        assert item.result == "answer"

    def test_degrade_records_error(self):
        item = WorkItem("scan")
        item.start()
        boom = RuntimeError("boom")
        item.degrade(boom)
        assert item.state == DEGRADED
        assert item.error is boom

    def test_run_executes_fn_with_token(self):
        seen = []
        item = WorkItem("scan", lambda token: seen.append(token) or "ok")
        assert item.run() == "ok"
        assert item.state == DONE
        assert seen == [item.token]

    def test_run_cancelled_checkpoint_lands_in_cancelled(self):
        def fn(token):
            token.cancel("deadline")
            token.checkpoint()

        item = WorkItem("scan", fn)
        assert item.run() is None
        assert item.state == CANCELLED

    def test_run_error_lands_in_degraded(self):
        item = WorkItem("scan", lambda token: 1 / 0)
        assert item.run() is None
        assert item.state == DEGRADED
        assert isinstance(item.error, ZeroDivisionError)

    def test_run_precancelled_never_starts(self):
        item = WorkItem("scan", lambda token: "never")
        item.token.cancel("shutdown")
        assert item.run() is None
        assert item.state == CANCELLED
        assert item.started_at is None

    def test_run_post_return_cancel_is_cancelled(self):
        # The token flipped while fn ran but fn never hit a checkpoint.
        def fn(token):
            token.cancel("lost_race")
            return "wasted"

        item = WorkItem("scan", fn)
        assert item.run() is None
        assert item.state == CANCELLED

    def test_run_without_fn_raises(self):
        with pytest.raises(ServiceError):
            WorkItem("scan").run()

    def test_wait_is_bounded(self):
        item = WorkItem("scan")
        assert item.wait(timeout=0.01) is False
        item.start()
        item.finish(None)
        assert item.wait(timeout=0.01) is True

    def test_cancel_latency_measured(self):
        clock_value = [0.0]
        item = WorkItem("scan", clock=lambda: clock_value[0])
        item.start()
        clock_value[0] = 1.0
        item.cancel("deadline")
        clock_value[0] = 1.5
        item.mark_cancelled()
        assert item.cancel_latency() == pytest.approx(0.5)

    def test_cancel_latency_none_without_cancel(self):
        item = WorkItem("scan")
        item.start()
        item.finish(None)
        assert item.cancel_latency() is None

    # ------------------------------------------------------------------
    # The DAG property: no operation sequence reaches an illegal
    # transition, terminal states latch, and the terminal transition
    # happens exactly once.
    # ------------------------------------------------------------------
    OPS = ("start", "finish", "degrade", "cancel", "force_cancel", "mark")

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.sampled_from(OPS), min_size=0, max_size=12))
    def test_no_sequence_escapes_the_dag(self, ops):
        item = WorkItem("prop")
        observed = [item.state]
        terminal_count = 0
        for op in ops:
            before = item.state
            try:
                if op == "start":
                    item.start()
                elif op == "finish":
                    item.finish("r")
                elif op == "degrade":
                    item.degrade(RuntimeError("x"))
                elif op == "cancel":
                    item.cancel("prop")
                elif op == "force_cancel":
                    item.cancel("prop", force=True)
                elif op == "mark":
                    item.mark_cancelled()
            except ServiceError:
                # Rejected: the state must not have moved.
                assert item.state == before
                continue
            after = item.state
            if after != before:
                assert after in TRANSITIONS[before], (
                    f"illegal transition {before} -> {after} via {op}"
                )
                observed.append(after)
                if after in TERMINAL_STATES:
                    terminal_count += 1
        assert terminal_count <= 1
        if item.finished:
            assert item.state in TERMINAL_STATES
        # Once terminal, the public flag and the state agree.
        assert (item.state in TERMINAL_STATES) == item.finished


class TestTaskRegistry:
    def test_counts_outcomes(self):
        registry = TaskRegistry()
        done = registry.create("a", lambda token: 1)
        done.run()
        cancelled = registry.create("b")
        cancelled.cancel("shutdown")
        degraded = registry.create("c", lambda token: 1 / 0)
        degraded.run()
        snap = registry.snapshot()
        assert snap["created"] == 3
        assert snap["done"] == 1
        assert snap["cancelled"] == 1
        assert snap["degraded"] == 1
        assert snap["in_flight"] == 0
        assert snap["cancelled_by_reason"] == {"shutdown": 1}

    def test_cancel_in_flight_hits_every_open_item(self):
        registry = TaskRegistry()
        a = registry.create("a")
        b = registry.create("b")
        b.start()
        closed = registry.create("c", lambda token: None)
        closed.run()
        assert registry.in_flight == 2
        assert registry.cancel_in_flight("breaker_open") == 2
        # Pending item terminal now; running one needs its checkpoint.
        assert a.state == CANCELLED
        assert b.token.cancelled
        assert b.mark_cancelled()
        snap = registry.snapshot()
        assert snap["cancelled"] == 2
        assert snap["cancelled_by_reason"] == {"breaker_open": 2}

    def test_forced_kills_counted(self):
        registry = TaskRegistry()
        registry.note_forced_kill(2)
        assert registry.snapshot()["forced_kills"] == 2

    def test_metrics_plumbing(self):
        metrics = MetricsRegistry()
        registry = TaskRegistry(metrics=metrics)
        item = registry.create("a", lambda token: None)
        item.run()
        cancelled = registry.create("b")
        cancelled.cancel("deadline")
        snap = metrics.snapshot()
        assert snap["tasks_done"] == 1
        assert snap["tasks_cancelled"] == 1
        assert snap["cancel_latency_seconds"]["count"] == 1

    def test_deadline_token_from_create(self):
        deadline = FakeDeadline()
        registry = TaskRegistry()
        item = registry.create("a", deadline=deadline)
        assert not item.token.cancelled
        deadline.expire()
        assert item.token.cancelled
        assert item.token.reason == "deadline"

    def test_concurrent_cancel_and_finish_settles_once(self):
        # A worker finishing races a force-cancel: exactly one terminal
        # transition may win, and the registry counts exactly one outcome.
        for _ in range(25):
            registry = TaskRegistry()
            item = registry.create("a")
            item.start()
            barrier = threading.Barrier(2)

            def finisher():
                barrier.wait()
                try:
                    item.finish("r")
                except ServiceError:
                    pass

            def canceller():
                barrier.wait()
                item.cancel("breaker_open", force=True)

            threads = [
                threading.Thread(target=finisher),
                threading.Thread(target=canceller),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5.0)
            snap = registry.snapshot()
            assert snap["done"] + snap["cancelled"] == 1
            assert item.state in (DONE, CANCELLED)
