"""Service-level tests for the mapped database store.

The headline property of the ``.rdb`` format: one store file backs
*every* process that maps it -- the daemon's forked workers serve from
the same physical pages as the parent (mapping-identity evidence read
from ``/proc/<pid>/maps``), and their answers are byte-identical.  Also
covers the stats/health ``database`` block, spawn-worker store routing,
and the mapped-vs-legacy cold-start ratio.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from pathlib import Path

import pytest

from repro import store
from repro.core import packed
from repro.service import ServiceConfig, SynthesisService
from repro.synth.database import OptimalDatabase
from repro.synth.synthesizer import OptimalSynthesizer

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="service tests are POSIX-only"
)


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A cache directory holding the n=4, k=4 .npz and its .rdb sidecar."""
    cache = tmp_path_factory.mktemp("warm-cache")
    OptimalSynthesizer(n_wires=4, k=4, max_list_size=1, cache_dir=cache).prepare()
    assert (cache / "db-n4-k4.npz").exists()
    assert (cache / "db-n4-k4.rdb").exists()
    return cache


def _hard_word(db) -> int:
    """A word of size k+1: must go through the hard-query pool."""
    for a in db.reps_by_size[db.k][:64]:
        for b in db.reps_by_size[1]:
            word = packed.compose(int(a), int(b), 4)
            if db.size_of(word) is None:
                return word
    raise AssertionError("no beyond-database word found")


def _mapped_store_service(cache, workers: int) -> SynthesisService:
    config = ServiceConfig(
        n_wires=4,
        k=4,
        max_list_size=1,
        workers=workers,
        batch_window=0.0,
        db_cache_dir=cache,
    )
    return SynthesisService.from_config(config)


class TestSharedMapping:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_two_workers_share_one_rdb_mapping(self, warm_cache):
        service = _mapped_store_service(warm_cache, workers=2)
        try:
            rdb = warm_cache / "db-n4-k4.rdb"
            # The parent's database is the zero-copy mapping of the store.
            assert store.is_mapped(service.handle.database)
            assert store.mapped_path(service.handle.database) == rdb

            service.start()
            pids = service.pool.worker_pids()
            assert len(pids) == 2

            # Mapping-identity evidence: every worker process holds a
            # live mapping of the same .rdb file.
            if not Path("/proc").is_dir():
                pytest.skip("/proc unavailable; cannot read process maps")
            for pid in pids:
                maps = Path(f"/proc/{pid}/maps").read_text()
                assert str(rdb) in maps, (
                    f"worker {pid} does not map {rdb}"
                )

            # Byte-identical answers: the same hard word solved many
            # times lands on both workers (chunksize=1 round-robins) and
            # every answer must agree exactly.
            word = _hard_word(service.handle.database)
            results = service.pool.solve_many([word] * 8, timeout=120)
            assert len(results) == 8
            first = results[0]
            assert first.size == 5
            for other in results[1:]:
                assert other.size == first.size
                assert other.circuit == first.circuit

            # The stats/health payloads advertise the mapping.
            for body in (service.stats(), service.health()):
                database = body["database"]
                assert database["mapped"] is True
                assert database["format"] == "rdb"
                assert database["store"] == str(rdb)
        finally:
            service.shutdown(save_cache=False)

    def test_inline_service_reports_database_block(self, warm_cache):
        service = _mapped_store_service(warm_cache, workers=0)
        try:
            service.start()
            database = service.health()["database"]
            assert database["mapped"] is True
            assert database["format"] == "rdb"
        finally:
            service.shutdown(save_cache=False)

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_workers_reopen_the_store(self, warm_cache):
        from repro.service.workers import HardQueryPool, _handle_store_path

        synth = OptimalSynthesizer(
            n_wires=4, k=4, max_list_size=1, cache_dir=warm_cache
        )
        handle = synth.handle()
        assert _handle_store_path(handle) == warm_cache / "db-n4-k4.rdb"
        pool = HardQueryPool(handle, processes=1, start_method="spawn")
        try:
            word = _hard_word(handle.database)
            (result,) = pool.solve_many([word], timeout=300)
            assert result.size == 5
        finally:
            pool.terminate()

    def test_spawn_pool_requires_persisted_store(self, db4_k4, engine4_l7):
        from repro.errors import ServiceError
        from repro.service.workers import HardQueryPool
        from repro.synth.synthesizer import SynthesisHandle

        handle = SynthesisHandle(
            n_wires=4,
            k=4,
            max_list_size=3,
            database=db4_k4,
            engine=engine4_l7,
            cache_path=None,
        )
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        with pytest.raises(ServiceError, match="persisted database store"):
            HardQueryPool(handle, processes=1, start_method="spawn")


class TestColdStart:
    def test_mapped_cold_start_beats_npz_rebuild(self, warm_cache):
        """The mapped open must be at least 5x faster than the legacy
        load (the bench suite's db.* ops track the real ratio, ~100x at
        k=5; the margin here is conservative for noisy CI hosts)."""
        npz = warm_cache / "db-n4-k4.npz"
        rdb = warm_cache / "db-n4-k4.rdb"

        def best_of(thunk, trials=3):
            times = []
            for _ in range(trials):
                start = time.perf_counter()
                thunk()
                times.append(time.perf_counter() - start)
            return min(times)

        legacy = best_of(lambda: OptimalDatabase.load(npz))
        mapped = best_of(lambda: store.map_database(rdb))
        assert mapped * 5 < legacy, (
            f"mapped cold start {mapped * 1e3:.2f}ms not >=5x faster than "
            f"legacy {legacy * 1e3:.2f}ms"
        )
