"""Tests for the sharded service: ring, router, supervisor, drain,
protocol batch ops, and the client-side transport fixes that ride along.

Cluster tests run over :class:`InProcessShard` backends -- each shard is
a complete in-process :class:`SynthesisService` over the shared warm
handle, exercising the identical code path a TCP peer would, minus the
socket.  (The real-subprocess path is covered by ``scripts/shard_smoke``
in CI.)
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.service import (
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    SynthesisService,
)
from repro.service import protocol
from repro.service.faults import FaultInjector, FaultPlan
from repro.service.sharding import (
    DEAD,
    LEFT,
    SUSPECT,
    UP,
    HashRing,
    InProcessShard,
    ShardingConfig,
    ShardRouter,
    ShardSupervisor,
    member_seed,
    rendezvous_score,
)
from repro.core.equivalence import canonical
from repro.core.permutation import Permutation

IDENTITY = "[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]"
SHIFT = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"
HARD_SPEC = "[8,3,2,9,7,12,5,14,0,11,10,1,15,4,13,6]"  # size 5
HARD_SPEC_2 = "[6,7,13,5,0,1,10,3,15,14,4,12,8,9,2,11]"  # size 5
SPECS = [IDENTITY, SHIFT, HARD_SPEC, HARD_SPEC_2]


def make_service(handle4, extra=None, **config_kwargs) -> SynthesisService:
    config = ServiceConfig(
        n_wires=4, k=4, max_list_size=3, batch_window=0.0,
        extra=extra or {}, **config_kwargs,
    )
    return SynthesisService(handle4, config=config).start()


def make_cluster(handle4, count=3, config=None, faults=None, shard_extra=None):
    """Router over ``count`` in-process shards (probe loop not started)."""
    supervisor = ShardSupervisor(
        config=config or ShardingConfig(probe_interval=30.0)
    )
    shards = []
    for index in range(count):
        shard = InProcessShard(
            f"shard-{index}", make_service(handle4, extra=shard_extra)
        ).start()
        shards.append(shard)
        supervisor.add(shard)
    router = ShardRouter(supervisor, n_wires=4, faults=faults)
    return router, supervisor, shards


def submit(target, op, **fields) -> dict:
    line = json.dumps({"id": fields.pop("id", 1), "op": op, **fields})
    return json.loads(target.handle_line(line))


def owner_of(router, spec: str) -> str:
    word = Permutation.coerce(spec, 4).word
    return router.ring.owner(canonical(word, 4))


# ----------------------------------------------------------------------
# Rendezvous ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order is irrelevant
        keys = range(0, 2_000, 7)
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]
        assert member_seed("s0") == member_seed("s0")
        assert member_seed("s0") != member_seed("s1")
        assert rendezvous_score(123, member_seed("s0")) == rendezvous_score(
            123, member_seed("s0")
        )

    def test_balance(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        counts = ring.spread(range(4_000))
        assert sum(counts.values()) == 4_000
        for owned in counts.values():  # each ~1000; allow wide slack
            assert 700 <= owned <= 1300, counts

    def test_minimal_disruption_on_remove(self):
        ring = HashRing(["s0", "s1", "s2"])
        keys = list(range(1_500))
        before = {k: ring.owner(k) for k in keys}
        ring.remove("s1")
        for k in keys:
            after = ring.owner(k)
            if before[k] != "s1":
                # Keys the removed member did not own never move.
                assert after == before[k]
            else:
                assert after in ("s0", "s2")

    def test_minimal_disruption_on_add(self):
        ring = HashRing(["s0", "s1", "s2"])
        keys = list(range(1_500))
        before = {k: ring.owner(k) for k in keys}
        ring.add("s3")
        moved = sum(1 for k in keys if ring.owner(k) != before[k])
        # The newcomer steals ~1/4 of the keyspace; everything that
        # moved must have moved *to* it.
        assert 0 < moved < len(keys) // 2
        for k in keys:
            if ring.owner(k) != before[k]:
                assert ring.owner(k) == "s3"

    def test_epoch_bumps_only_on_change(self):
        ring = HashRing()
        assert ring.epoch == 0
        assert ring.add("s0") and ring.epoch == 1
        assert not ring.add("s0") and ring.epoch == 1
        assert ring.add("s1") and ring.epoch == 2
        assert ring.remove("s0") and ring.epoch == 3
        assert not ring.remove("s0") and ring.epoch == 3

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for key in range(200):
            pref = ring.preference(key)
            assert pref[0] == ring.owner(key)
            assert sorted(pref) == ["s0", "s1", "s2", "s3"]

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.owner(42) is None
        assert ring.preference(42) == []
        assert len(ring) == 0


# ----------------------------------------------------------------------
# Protocol: batch / shards ops
# ----------------------------------------------------------------------
class TestBatchProtocol:
    def test_batch_requires_requests_list(self):
        with pytest.raises(ProtocolError, match="non-empty 'requests'"):
            protocol.decode_request(json.dumps({"id": 1, "op": "batch"}))
        with pytest.raises(ProtocolError, match="non-empty 'requests'"):
            protocol.decode_request(
                json.dumps({"id": 1, "op": "batch", "requests": []})
            )

    def test_batch_sub_requests_must_be_work_ops(self):
        for bad_op in ("shutdown", "batch", "health", None):
            with pytest.raises(ProtocolError, match="must set 'op'"):
                protocol.decode_request(json.dumps({
                    "id": 1,
                    "op": "batch",
                    "requests": [{"id": 2, "op": bad_op, "spec": SHIFT}],
                }))

    def test_batch_size_cap(self):
        entries = [
            {"id": i, "op": "size", "spec": SHIFT}
            for i in range(protocol.MAX_BATCH_REQUESTS + 1)
        ]
        with pytest.raises(ProtocolError, match="the limit is 1024"):
            protocol.decode_request(
                json.dumps({"id": 1, "op": "batch", "requests": entries})
            )

    def test_shard_leave_requires_shard(self):
        with pytest.raises(ProtocolError, match="shard"):
            protocol.decode_request(
                json.dumps({"id": 1, "op": "shard_leave"})
            )

    def test_plain_daemon_answers_batch_sequentially(self, handle4):
        svc = make_service(handle4)
        try:
            body = submit(svc, "batch", requests=[
                {"id": 10, "op": "size", "spec": SHIFT},
                {"id": 11, "op": "size", "spec": "[broken"},
                {"id": 12, "op": "synth", "spec": IDENTITY},
            ])
            assert body["ok"], body
            results = body["result"]["results"]
            assert body["result"]["count"] == 3
            assert results[0]["ok"] and results[0]["result"]["size"] == 4
            assert not results[1]["ok"]  # one bad entry never poisons
            assert results[1]["error"]["kind"] == "invalid_spec"
            assert results[2]["ok"] and results[2]["result"]["size"] == 0
        finally:
            svc.shutdown()

    def test_plain_daemon_rejects_cluster_ops(self, handle4):
        svc = make_service(handle4)
        try:
            for op in ("shards", "shard_join"):
                body = submit(svc, op)
                assert not body["ok"]
                assert "sharded router" in body["error"]["message"]
            body = submit(svc, "shard_leave", shard="shard-0")
            assert not body["ok"]
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Router: routing, failover, rollups
# ----------------------------------------------------------------------
class TestRouter:
    def test_routes_by_equivalence_class(self, handle4):
        router, _sup, _shards = make_cluster(handle4)
        try:
            # All members of one equivalence class share an owner: the
            # inverse of a permutation is always in its class.
            perm = Permutation.coerce(HARD_SPEC, 4)
            inverse = perm.inverse() if hasattr(perm, "inverse") else None
            canon = canonical(perm.word, 4)
            assert router.ring.owner(canon) == owner_of(router, HARD_SPEC)
            if inverse is not None:
                assert canonical(inverse.word, 4) == canon
            body = submit(router, "size", spec=SHIFT)
            assert body["ok"] and body["result"]["size"] == 4
        finally:
            router.shutdown()

    def test_answers_match_single_daemon_byte_for_byte(self, handle4):
        router, _sup, _shards = make_cluster(handle4)
        single = make_service(handle4)
        try:
            for index, spec in enumerate(SPECS):
                sharded = router.handle_line(json.dumps(
                    {"id": index, "op": "synth", "spec": spec}
                ))
                alone = single.handle_line(json.dumps(
                    {"id": index, "op": "synth", "spec": spec}
                ))
                assert sharded == alone
        finally:
            single.shutdown()
            router.shutdown()

    def test_batch_scatter_gather_preserves_order(self, handle4):
        router, _sup, _shards = make_cluster(handle4)
        single = make_service(handle4)
        try:
            entries = [
                {"id": i, "op": "size", "spec": spec}
                for i, spec in enumerate(SPECS)
            ]
            line = json.dumps({"id": 99, "op": "batch", "requests": entries})
            sharded = json.loads(router.handle_line(line))
            alone = json.loads(single.handle_line(line))
            assert sharded["ok"] and alone["ok"]
            # Scattered across owners, gathered back in request order,
            # byte-identical to the sequential single-daemon answer.
            assert json.dumps(sharded, sort_keys=True) == json.dumps(
                alone, sort_keys=True
            )
            owners = {owner_of(router, spec) for spec in SPECS}
            assert len(owners) > 1  # the batch really did scatter
        finally:
            single.shutdown()
            router.shutdown()

    def test_failover_is_exact_when_owner_dies(self, handle4):
        router, sup, shards = make_cluster(handle4)
        try:
            owner = owner_of(router, SHIFT)
            next((s for s in shards if s.shard_id == owner)).kill()
            body = submit(router, "size", spec=SHIFT)
            # Re-routed to a survivor: still exact, never degraded.
            assert body["ok"] and body["result"]["size"] == 4
            assert body["result"].get("source") != "degraded"
            managed = sup.get(owner)
            # The miss was reported; the in-process backend restarts
            # instantly, so the shard is either already back or dead.
            assert managed.misses == 0 or managed.state in (DEAD, SUSPECT)
        finally:
            router.shutdown()

    def test_degrades_when_no_live_shard(self, handle4):
        router, _sup, shards = make_cluster(
            handle4,
            count=2,
            config=ShardingConfig(probe_interval=30.0, max_restarts=1),
        )
        try:
            for shard in shards:
                shard.restartable = False
                shard.kill()
            body = submit(router, "synth", spec=HARD_SPEC)
            assert body["ok"], body
            result = body["result"]
            assert result["source"] == "degraded"
            assert result["guarantee"] == "upper_bound"
            assert result["degraded_reason"] in (
                "no_live_shard", "shard_unreachable"
            )
            assert result["size"] >= 5
        finally:
            for shard in shards:
                shard.restartable = True
            router.shutdown()

    def test_wires_mismatch_and_bad_spec_envelopes(self, handle4):
        router, _sup, _shards = make_cluster(handle4)
        try:
            body = submit(router, "size", spec=SHIFT, wires=3)
            assert not body["ok"]
            assert body["error"]["kind"] == "invalid_spec"
            body = submit(router, "size", spec="[nope")
            assert not body["ok"]
            assert body["error"]["kind"] == "invalid_spec"
        finally:
            router.shutdown()

    def test_health_and_stats_rollups(self, handle4):
        router, _sup, _shards = make_cluster(handle4)
        try:
            health = router.health()
            assert health["status"] == "ok"
            assert health["router"] is True
            assert len(health["shards"]) == 3
            for shard in health["shards"]:
                assert shard["state"] == UP
                assert shard["health"] == "ok"
                assert shard["breaker"] == "closed"
            stats = router.stats()
            assert stats["router"]["epoch"] == router.ring.epoch
            assert set(stats["shards"]) == {
                "shard-0", "shard-1", "shard-2"
            }
            assert all(s is not None for s in stats["shards"].values())
            body = submit(router, "ping")
            assert body["result"]["router"] and body["result"]["shards"] == 3
        finally:
            router.shutdown()

    def test_draining_router_rejects_work_with_shutdown_envelope(
        self, handle4
    ):
        router, _sup, _shards = make_cluster(handle4)
        router.shutdown()
        body = submit(router, "size", spec=SHIFT)
        assert not body["ok"]
        assert body["error"]["kind"] == "shutdown"


# ----------------------------------------------------------------------
# Supervisor state machine
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_suspect_then_dead_then_restart(self, handle4):
        config = ShardingConfig(
            probe_interval=30.0, suspect_after=1, dead_after=2, max_restarts=2
        )
        router, sup, shards = make_cluster(handle4, config=config)
        try:
            target = shards[0]
            managed = sup.get(target.shard_id)
            assert managed.state == UP
            target.restartable = False  # hold the corpse down
            target.kill()
            # In-process kill makes alive() false, so the first missed
            # probe already evicts (a dead process outranks counters).
            sup.probe(managed)
            assert managed.state == DEAD
            assert target.shard_id not in router.ring
            # Give back the restart budget: next probe respawns it.
            target.restartable = True
            sup.probe(managed)
            assert managed.state == UP
            assert target.shard_id in router.ring
            assert managed.restarts == 1
        finally:
            router.shutdown()

    def test_suspect_on_slow_probe_keeps_routable(self, handle4):
        config = ShardingConfig(
            probe_interval=30.0, suspect_after=1, dead_after=3
        )
        router, sup, shards = make_cluster(handle4, config=config)
        try:
            managed = sup.get(shards[1].shard_id)

            class Flaky:
                """alive() but failing calls: a wedged, not dead, peer."""

                def __getattr__(self, name):
                    return getattr(shards[1], name)

                def alive(self):
                    return True

                def call(self, payload, timeout=None):
                    raise ServiceError("wedged")

            managed.backend = Flaky()
            sup.probe(managed)
            assert managed.state == SUSPECT
            assert managed.routable  # one blip does not re-route the slice
            managed.backend = shards[1]
            sup.probe(managed)
            assert managed.state == UP and managed.misses == 0
        finally:
            router.shutdown()

    def test_restart_budget_exhausted_stays_dead(self, handle4):
        config = ShardingConfig(probe_interval=30.0, max_restarts=0)
        router, sup, shards = make_cluster(handle4, config=config)
        try:
            target = shards[2]
            target.restartable = False
            target.kill()
            managed = sup.get(target.shard_id)
            sup.probe(managed)
            sup.probe(managed)
            assert managed.state == DEAD
            assert managed.restarts == 0
            assert target.shard_id not in router.ring
            # The cluster still answers from the survivors.
            body = submit(router, "size", spec=SHIFT)
            assert body["ok"] and body["result"]["size"] == 4
            assert router.health()["status"] == "degraded"
        finally:
            target.restartable = True
            router.shutdown()

    def test_duplicate_shard_id_rejected(self, handle4):
        router, sup, shards = make_cluster(handle4, count=1)
        try:
            with pytest.raises(ServiceError, match="already registered"):
                sup.add(InProcessShard("shard-0", shards[0].service))
        finally:
            router.shutdown()


# ----------------------------------------------------------------------
# Live drain / leave
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_removes_reroutes_and_stops(self, handle4):
        router, sup, shards = make_cluster(handle4)
        try:
            victim = owner_of(router, SHIFT)
            epoch_before = router.ring.epoch
            body = submit(router, "shard_leave", shard=victim)
            assert body["ok"], body
            assert body["result"]["drained"] is True
            assert body["result"]["cancelled"] == 0
            assert body["result"]["epoch"] == epoch_before + 1
            assert victim not in router.ring
            assert sup.get(victim).state == LEFT
            # Its keyspace re-routes; answers stay exact.
            answer = submit(router, "size", spec=SHIFT, id=2)
            assert answer["ok"] and answer["result"]["size"] == 4
            # Idempotent: a second leave is a no-op success.
            again = submit(router, "shard_leave", shard=victim, id=3)
            assert again["ok"] and again["result"]["drained"] is True
        finally:
            router.shutdown()

    def test_drain_unknown_shard_is_an_error_envelope(self, handle4):
        router, _sup, _shards = make_cluster(handle4, count=1)
        try:
            body = submit(router, "shard_leave", shard="nope")
            assert not body["ok"]
            assert "unknown shard" in body["error"]["message"]
        finally:
            router.shutdown()

    def test_join_without_spawner_is_an_error_envelope(self, handle4):
        router, _sup, _shards = make_cluster(handle4, count=1)
        try:
            body = submit(router, "shard_join")
            assert not body["ok"]
            assert "spawner" in body["error"]["message"]
        finally:
            router.shutdown()

    def test_join_with_spawner_adds_member(self, handle4):
        supervisor = ShardSupervisor(
            config=ShardingConfig(probe_interval=30.0)
        )
        supervisor.add(
            InProcessShard("shard-0", make_service(handle4)).start()
        )
        router = ShardRouter(
            supervisor,
            n_wires=4,
            spawner=lambda shard_id: InProcessShard(
                shard_id, make_service(handle4)
            ).start(),
        )
        try:
            body = submit(router, "shard_join")
            assert body["ok"], body
            assert body["result"]["state"] == UP
            assert len(router.ring) == 2
            joined = body["result"]["shard"]
            assert joined in router.ring
            body = submit(router, "size", spec=SHIFT, id=2)
            assert body["ok"] and body["result"]["size"] == 4
        finally:
            router.shutdown()


# ----------------------------------------------------------------------
# Fault-plan validation for the shard kinds
# ----------------------------------------------------------------------
class TestShardFaultSpecs:
    def test_shard_filter_only_for_shard_kinds(self):
        with pytest.raises(ServiceError, match="'shard' filter"):
            FaultPlan.from_dicts([{"kind": "delay", "delay": 1, "shard": "x"}])
        plan = FaultPlan.from_dicts([
            {"kind": "kill_shard", "shard": "shard-1"},
            {"kind": "partition_shard", "times": 2},
        ])
        assert plan.specs[0].stage == "shard_kill"
        assert plan.specs[1].stage == "shard_partition"

    def test_partition_fires_only_for_matching_shard(self):
        injector = FaultInjector(FaultPlan.from_dicts([
            {"kind": "partition_shard", "shard": "shard-1"},
        ]))
        assert not injector.partition_shard("shard-0")
        assert injector.partition_shard("shard-1")
        assert not injector.partition_shard("shard-1")  # consumed
        assert injector.snapshot()["fired"] == {"partition_shard": 1}


# ----------------------------------------------------------------------
# Client: truncated responses are retriable transport failures
# ----------------------------------------------------------------------
class _ScriptedServer:
    """A fake daemon whose per-connection behaviour is scripted.

    Each entry is either raw bytes to write after reading one request
    line (then close), or ``None`` meaning close without writing.
    """

    def __init__(self, script):
        self.script = list(script)
        self.connections = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for payload in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                conn.makefile("rb").readline()
                if payload is not None:
                    conn.sendall(payload)
        self._sock.close()

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)


class TestClientTruncatedResponse:
    def test_retry_recovers_from_mid_response_drop(self):
        server = _ScriptedServer([
            b'{"id":1,"ok":true,"resu',  # dies mid-write: no newline
            b'{"id":1,"ok":true,"result":{"size":4}}\n',
        ])
        try:
            client = ServiceClient(
                *server.address,
                connect_timeout=2.0,
                read_timeout=5.0,
                retry=RetryPolicy(retries=2, backoff_base=0.01, jitter=0.0),
            )
            assert client.size(SHIFT) == 4
            assert server.connections == 2
            client.close()
        finally:
            server.close()

    def test_without_retry_truncation_raises_service_error(self):
        server = _ScriptedServer([b'{"id":1,"ok":tru'])
        try:
            client = ServiceClient(
                *server.address, connect_timeout=2.0, read_timeout=5.0
            )
            # A ServiceError (retriable transport class), not the
            # ProtocolError json decoding would raise.
            with pytest.raises(ServiceError, match="mid-response") as info:
                client.size(SHIFT)
            assert not isinstance(info.value, ProtocolError)
            client.close()
        finally:
            server.close()

    def test_shutdown_is_never_retried(self):
        server = _ScriptedServer([
            b'{"id":1,"ok":tru',
            b'{"id":1,"ok":true,"result":{"draining":true}}\n',
        ])
        try:
            client = ServiceClient(
                *server.address,
                connect_timeout=2.0,
                read_timeout=5.0,
                retry=RetryPolicy(retries=3, backoff_base=0.01, jitter=0.0),
            )
            with pytest.raises(ServiceError, match="mid-response"):
                client.shutdown()
            # Only the first scripted connection was ever used: the
            # drop was not retried for a non-idempotent op.
            assert server.connections == 1
            client.close()
        finally:
            server.close()
