"""Tests for the NCT gate library (paper §2, Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import packed
from repro.core.gates import (
    CNOT,
    NOT,
    TOF,
    TOF4,
    Gate,
    all_gates,
    gate_words,
    linear_gates,
)
from repro.errors import InvalidGateError


class TestGateSemantics:
    """Figure 1: the defining truth-table behaviour of each gate kind."""

    def test_not_flips_target(self):
        gate = NOT(0)
        for x in range(16):
            assert gate.apply(x) == x ^ 1

    def test_cnot_definition(self):
        gate = CNOT(0, 1)  # b ^= a
        for x in range(16):
            a = x & 1
            expected = x ^ (a << 1)
            assert gate.apply(x) == expected

    def test_toffoli_definition(self):
        gate = TOF(0, 1, 2)  # c ^= ab
        for x in range(16):
            a, b = x & 1, (x >> 1) & 1
            assert gate.apply(x) == x ^ ((a & b) << 2)

    def test_toffoli4_definition(self):
        gate = TOF4(0, 1, 2, 3)  # d ^= abc
        for x in range(16):
            a, b, c = x & 1, (x >> 1) & 1, (x >> 2) & 1
            assert gate.apply(x) == x ^ ((a & b & c) << 3)

    @given(st.sampled_from(all_gates(4)), st.integers(0, 15))
    def test_every_gate_is_involution(self, gate, x):
        assert gate.apply(gate.apply(x)) == x

    @given(st.sampled_from(all_gates(4)))
    def test_gate_word_is_valid_permutation(self, gate):
        assert packed.is_valid(gate.to_word(4), 4)

    @given(st.sampled_from(all_gates(4)))
    def test_gate_word_matches_apply(self, gate):
        word = gate.to_word(4)
        for x in range(16):
            assert packed.get(word, x) == gate.apply(x)


class TestLibraryStructure:
    def test_gate_counts(self):
        """4 NOT + 12 CNOT + 12 TOF + 4 TOF4 = 32 gates on 4 wires."""
        assert len(all_gates(4)) == 32
        assert len(all_gates(3)) == 12
        assert len(all_gates(2)) == 4

    def test_gate_kind_histogram_n4(self):
        kinds = {}
        for gate in all_gates(4):
            kinds[gate.kind] = kinds.get(gate.kind, 0) + 1
        assert kinds == {"NOT": 4, "CNOT": 12, "TOF": 12, "TOF4": 4}

    def test_linear_gates(self):
        gates = linear_gates(4)
        assert len(gates) == 16
        assert all(len(g.controls) <= 1 for g in gates)

    def test_all_gates_deterministic_order(self):
        assert all_gates(4) == all_gates(4)

    def test_gate_words_distinct(self):
        words = gate_words(4)
        assert len(set(words)) == 32

    def test_library_closed_under_relabeling(self):
        library = set(all_gates(4))
        for gate in all_gates(4):
            for sigma in [(1, 0, 2, 3), (3, 2, 1, 0), (1, 2, 3, 0)]:
                assert gate.relabeled(sigma) in library


class TestGateValidation:
    def test_duplicate_controls_rejected(self):
        with pytest.raises(InvalidGateError):
            Gate(controls=(1, 1), target=0)

    def test_target_in_controls_rejected(self):
        with pytest.raises(InvalidGateError):
            Gate(controls=(0, 1), target=1)

    def test_negative_wire_rejected(self):
        with pytest.raises(InvalidGateError):
            Gate(controls=(), target=-1)

    def test_gate_does_not_fit(self):
        with pytest.raises(InvalidGateError):
            TOF4(0, 1, 2, 3).to_word(3)

    def test_controls_are_sorted(self):
        gate = Gate(controls=(2, 0), target=1)
        assert gate.controls == (0, 2)


class TestGateFormatting:
    @pytest.mark.parametrize(
        "gate,text",
        [
            (NOT(0), "NOT(a)"),
            (CNOT(2, 0), "CNOT(c,a)"),
            (TOF(0, 1, 3), "TOF(a,b,d)"),
            (TOF4(0, 2, 3, 1), "TOF4(a,c,d,b)"),
        ],
    )
    def test_str(self, gate, text):
        assert str(gate) == text

    @pytest.mark.parametrize(
        "text,controls,target",
        [
            ("NOT(a)", (), 0),
            ("CNOT(d,b)", (3,), 1),
            ("TOF(a,b,d)", (0, 1), 3),
            ("TOF4(a,b,c,d)", (0, 1, 2), 3),
            ("TOF( a , b , d )", (0, 1), 3),
        ],
    )
    def test_parse(self, text, controls, target):
        gate = Gate.parse(text)
        assert gate.controls == tuple(sorted(controls))
        assert gate.target == target

    @given(st.sampled_from(all_gates(4)))
    def test_parse_roundtrip(self, gate):
        assert Gate.parse(str(gate)) == gate

    def test_parse_rejects_garbage(self):
        with pytest.raises(InvalidGateError):
            Gate.parse("FOO")

    def test_parse_rejects_kind_mismatch(self):
        with pytest.raises(InvalidGateError):
            Gate.parse("NOT(a,b)")

    def test_support_and_control_mask(self):
        gate = TOF(0, 2, 3)
        assert gate.support == frozenset({0, 2, 3})
        assert gate.control_mask == 0b0101
