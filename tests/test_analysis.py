"""Tests for the analysis subsystem (distributions, estimates, hard search)."""

import pytest

from repro.analysis.distribution import (
    SizeDistribution,
    chi_squared_uniformity,
    sample_distribution,
)
from repro.analysis.estimates import (
    PAPER_TABLE4_FUNCTIONS,
    PAPER_TABLE4_REDUCED,
    estimate_total_counts,
    exact_distribution_3bit,
    group_order,
    validate_estimator_on_3bit,
)
from repro.analysis.hard import extension_search, full_enumeration


class TestSizeDistribution:
    def test_add_and_totals(self):
        dist = SizeDistribution(bound=7)
        for size in [3, 3, 5, 7]:
            dist.add(size)
        dist.add_censored()
        assert dist.total == 5
        assert dist.observed == 4
        assert dist.counts[3] == 2

    def test_weighted_average(self):
        dist = SizeDistribution()
        for size in [2, 4]:
            dist.add(size)
        assert dist.weighted_average() == 3.0

    def test_weighted_average_bounds(self):
        dist = SizeDistribution(bound=10)
        dist.add(10)
        dist.add_censored()
        low, high = dist.weighted_average_bounds(max_conceivable=17)
        assert low == pytest.approx((10 + 11) / 2)
        assert high == pytest.approx((10 + 17) / 2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SizeDistribution().weighted_average()

    def test_format_table(self):
        dist = SizeDistribution(bound=9)
        dist.add(5)
        dist.add_censored()
        text = dist.format_table()
        assert ">9" in text and "5" in text

    def test_merge(self):
        a = SizeDistribution(bound=9)
        a.add(2)
        b = SizeDistribution(bound=9)
        b.add(2)
        b.add(4)
        b.add_censored()
        merged = a.merge(b)
        assert merged.counts[2] == 2
        assert merged.censored == 1
        with pytest.raises(ValueError):
            a.merge(SizeDistribution(bound=5))

    def test_fractions(self):
        dist = SizeDistribution()
        dist.add(1)
        dist.add(1)
        dist.add(0)
        assert dist.fractions() == [pytest.approx(1 / 3), pytest.approx(2 / 3)]


class TestSampling:
    def test_sample_distribution_n3(self, engine3):
        dist = sample_distribution(engine3, 40, seed=123, n_wires=3)
        assert dist.total == 40
        assert dist.censored == 0  # engine3 covers all of n = 3
        assert dist.weighted_average() > 4

    def test_sample_distribution_censoring(self, engine4_l7):
        """Most random 4-bit functions exceed L = 7: censoring dominates."""
        dist = sample_distribution(engine4_l7, 12, seed=5489, n_wires=4)
        assert dist.total == 12
        assert dist.censored > 0
        assert dist.bound == 7

    def test_progress_callback(self, engine3):
        ticks = []
        sample_distribution(
            engine3, 50, n_wires=3, progress=lambda done, total: ticks.append(done)
        )
        assert ticks == [25, 50]


class TestEstimates:
    def test_group_order(self):
        assert group_order(4) == PAPER_TABLE4_FUNCTIONS_TOTAL_CHECK()
        assert group_order(3) == 40320

    def test_exact_3bit_distribution(self):
        counts = exact_distribution_3bit()
        assert counts == [1, 12, 102, 625, 2780, 8921, 17049, 10253, 577]

    def test_estimate_total_counts(self):
        dist = SizeDistribution()
        for _ in range(10):
            dist.add(8)
        estimates = dict(estimate_total_counts(dist, 3))
        assert estimates[8] == pytest.approx(40320)

    def test_estimator_validates_on_3bit(self):
        validation = validate_estimator_on_3bit(
            n_samples=3000, seed=5489, support_threshold=500
        )
        assert sum(validation.exact) == 40320
        # Sizes with >= 500 functions are estimated within ~35% from a
        # 3000-draw sample (rarer sizes are dominated by sampling noise,
        # which is the same caveat the paper's Table 4 estimates carry).
        assert validation.max_relative_error < 0.35

    def test_paper_anchor_tables_are_consistent(self):
        """Sanity on the transcribed Table 4 anchors: reduced counts are
        about 1/46th of function counts for the bigger sizes."""
        for size in range(3, 10):
            ratio = PAPER_TABLE4_FUNCTIONS[size] / PAPER_TABLE4_REDUCED[size]
            assert 35 < ratio < 48.5


def PAPER_TABLE4_FUNCTIONS_TOTAL_CHECK():
    import math

    return math.factorial(16)


class TestHardSearch:
    def test_full_enumeration_n3(self):
        result = full_enumeration(3)
        assert result.max_size == 8
        assert result.hardest_count == 577
        assert sum(result.counts) == 40320

    def test_full_enumeration_n2(self):
        result = full_enumeration(2)
        assert sum(result.counts) == 24

    def test_extension_search_finds_harder(self, engine3, db3):
        """Extending max-size-minus-one functions rediscover L(3)."""
        seeds = db3.reps_by_size[7][:10].tolist()
        result = extension_search(engine3, seeds, 3)
        assert result.hardest_size == 8
        assert not result.exceeded_bound
        assert result.candidates_examined > 0
        assert engine3.size_of(result.hardest_word) == 8

    def test_extension_search_beyond_bound(self, engine4_l7, db4_k4):
        """Extending size-4 functions on an L = 7 engine stays in reach;
        the reported hardest size is ≤ 5 + proof machinery works."""
        seeds = db4_k4.reps_by_size[4][:3].tolist()
        result = extension_search(
            engine4_l7, seeds, 4, max_candidates=40
        )
        assert result.candidates_examined == 40
        assert 3 <= result.hardest_size <= 5

    def test_chi_squared_helper(self):
        assert chi_squared_uniformity([10, 10], [10.0, 10.0]) == 0.0
        with pytest.raises(ValueError):
            chi_squared_uniformity([1], [1.0, 2.0])
