"""Tests for the function-form front-end: spec IR, PLA parsing, the
embedding planner, routing words, and ``compile_spec`` end to end."""

from __future__ import annotations

import pytest

from repro.core.permutation import Permutation
from repro.engines import SynthesisRequest, create_engine
from repro.errors import SpecError
from repro.specs import (
    SPEC_KINDS,
    AffineXorForm,
    CompileResult,
    LookupTableSpec,
    MultiOutputSpec,
    TruthTableSpec,
    compile_spec,
    parse_pla,
    plan_embedding,
    routing_word,
    spec_from_wire,
)
from repro.synth.embedding import PartialSpec, _sampled_completions

# f(x) = x3 with two don't-care rows: the completion space is 2! = 2,
# so the search is exhaustive and the answer provably optimal.
DC_ROWS = (0, 0, 0, 0, 0, 0, 0, 0, 1, 1, None, 1, 1, None, 1, 1)


@pytest.fixture(scope="module")
def optimal_engine(handle4):
    """The optimal engine rehydrated warm from the shared handle."""
    return create_engine("optimal", handle=handle4)


# ----------------------------------------------------------------------
# Spec IR: validation and wire round trips
# ----------------------------------------------------------------------
class TestSpecIR:
    def test_truth_table_roundtrip(self):
        spec = TruthTableSpec(rows=DC_ROWS, n_inputs=4)
        wire = spec.to_wire()
        assert wire["kind"] == "truth_table"
        assert spec_from_wire(wire) == spec
        assert spec.dont_care_count() == 2

    def test_multi_output_roundtrip(self):
        spec = MultiOutputSpec(
            rows=(0, 3, None, 2), n_inputs=2, n_outputs=2
        )
        assert spec_from_wire(spec.to_wire()) == spec
        assert spec.specified_rows() == [(0, 0), (1, 3), (3, 2)]
        assert spec.to_multi_output() is spec

    def test_affine_roundtrip_and_evaluate(self):
        spec = AffineXorForm(matrix=((1, 0), (1, 1)), constant=(0, 1))
        assert spec_from_wire(spec.to_wire()) == spec
        # y0 = x0, y1 = 1 ^ x0 ^ x1
        assert [spec.evaluate(x) for x in range(4)] == [2, 1, 0, 3]
        assert spec.is_invertible()
        assert not AffineXorForm(
            matrix=((1, 1), (1, 1)), constant=(0, 0)
        ).is_invertible()
        # Rectangular forms are never invertible as permutations.
        assert not AffineXorForm(
            matrix=((1, 0),), constant=(0,)
        ).is_invertible()

    def test_lookup_table_roundtrip(self):
        spec = LookupTableSpec(
            table=(1, 0, 3, 2), n_inputs=2, n_outputs=2
        )
        assert spec_from_wire(spec.to_wire()) == spec
        assert spec.to_multi_output().rows == (1, 0, 3, 2)

    def test_truth_table_normalizes_to_multi_output(self):
        mo = TruthTableSpec(rows=DC_ROWS, n_inputs=4).to_multi_output()
        assert mo.n_outputs == 1 and mo.rows == DC_ROWS

    @pytest.mark.parametrize(
        "build, match",
        [
            (lambda: TruthTableSpec(rows=(0, 1), n_inputs=2), "needs 4 rows"),
            (lambda: TruthTableSpec(rows=(0, 2, 0, 0), n_inputs=2),
             "out of range"),
            (lambda: TruthTableSpec(rows=(0, True, 0, 0), n_inputs=2),
             "must be an integer"),
            (lambda: TruthTableSpec(rows=(None,) * 4, n_inputs=2),
             "no specified rows"),
            (lambda: TruthTableSpec(rows=(0, 1), n_inputs=0), "1..4"),
            (lambda: MultiOutputSpec(rows=(4, 0), n_inputs=1, n_outputs=2),
             "out of range"),
            (lambda: LookupTableSpec(table=(0, None), n_inputs=1, n_outputs=1),
             "fully specified"),
            (lambda: AffineXorForm(matrix=(), constant=()), "at least one"),
            (lambda: AffineXorForm(matrix=((1,), (1, 0)), constant=(0, 0)),
             "inconsistent widths"),
            (lambda: AffineXorForm(matrix=((1,),), constant=(0, 1)),
             "needs 1 entries"),
            (lambda: AffineXorForm(matrix=((2,),), constant=(0,)),
             "must be 0/1"),
        ],
    )
    def test_validation_rejects(self, build, match):
        with pytest.raises(SpecError, match=match):
            build()

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not a dict", "JSON object"),
            ({"kind": "nope"}, "unknown spec kind"),
            ({"kind": "truth_table"}, "missing required field"),
            ({"kind": "affine_xor", "matrix": 3, "constant": []},
             "malformed"),
        ],
    )
    def test_wire_rejects(self, payload, match):
        with pytest.raises(SpecError, match=match):
            spec_from_wire(payload)

    def test_kinds_registry(self):
        assert SPEC_KINDS == (
            "truth_table", "multi_output", "affine_xor", "lookup_table"
        )


# ----------------------------------------------------------------------
# PLA parsing
# ----------------------------------------------------------------------
class TestParsePla:
    def test_single_output_and(self):
        spec = parse_pla(
            ".i 2\n.o 1\n00 0\n01 0\n10 0\n11 1\n.e\n"
        )
        assert isinstance(spec, TruthTableSpec)
        # PLA bits are most significant first: cube "01" is x1=0, x0=1.
        assert spec.rows == (0, 0, 0, 1)

    def test_dash_expands_inputs(self):
        spec = parse_pla(".i 2\n.o 1\n1- 1\n0- 0\n")
        # "1-" covers rows 2 and 3 (x1 = 1).
        assert spec.rows == (0, 0, 1, 1)

    def test_dash_output_marks_dont_care(self):
        spec = parse_pla(".i 2\n.o 1\n00 1\n01 -\n10 0\n11 0\n")
        assert spec.rows == (1, None, 0, 0)

    def test_unmentioned_rows_are_dont_cares(self):
        spec = parse_pla(".i 2\n.o 1\n11 1\n")
        assert spec.rows == (None, None, None, 1)

    def test_multi_output(self):
        spec = parse_pla(".i 1\n.o 2\n0 01\n1 10\n")
        assert isinstance(spec, MultiOutputSpec)
        # Output bits are most significant first too.
        assert spec.rows == (1, 2)

    def test_comments_and_ignored_directives(self):
        spec = parse_pla(
            "# header\n.i 1\n.o 1\n.p 2\n0 0  # zero\n1 1\n.end\n"
        )
        assert spec.rows == (0, 1)

    @pytest.mark.parametrize(
        "text, match",
        [
            ("00 1\n", "before .i/.o"),
            (".i 2\n.o 1\n", "specifies no rows"),
            (".i x\n.o 1\n", "one integer"),
            (".i 2\n.o 1\n000 1\n", "input part has 3 bits"),
            (".i 2\n.o 1\n00 11\n", "output part has 2 bits"),
            (".i 2\n.o 1\n0z 1\n", "must be 0, 1 or -"),
            (".i 2\n.o 1\n00 1\n0- 0\n", "already assigned"),
            ("", "missing .i/.o"),
        ],
    )
    def test_rejects(self, text, match):
        with pytest.raises(SpecError, match=match):
            parse_pla(text)

    def test_consistent_overlap_is_fine(self):
        spec = parse_pla(".i 2\n.o 1\n1- 1\n11 1\n")
        assert spec.rows == (None, None, 1, 1)


# ----------------------------------------------------------------------
# Embedding planner + routing word
# ----------------------------------------------------------------------
class TestPlanEmbedding:
    def test_dc_table_plan(self):
        plan = plan_embedding(TruthTableSpec(rows=DC_ROWS, n_inputs=4))
        assert plan.n_wires == 4
        assert plan.input_wires == (0, 1, 2, 3)
        assert plan.output_wires == (3,)
        assert plan.constant_wires == ()
        assert plan.partial.free_inputs == [10, 13]
        assert plan.partial.n_completions() == 2
        wire = plan.to_wire()
        assert wire["dont_care_rows"] == 2 and wire["completions"] == 2

    def test_invertible_affine_short_circuits(self):
        plan = plan_embedding(
            AffineXorForm(matrix=((1, 0), (1, 1)), constant=(0, 1))
        )
        # Fully specified: no garbage, no constants, no don't-cares.
        assert plan.partial.free_inputs == []
        assert plan.garbage_wires == () and plan.constant_wires == ()
        assert plan.input_wires == (0, 1) and plan.output_wires == (0, 1)
        # Wires 2..3 pass through untouched.
        perm = plan.partial.complete([])
        for x in range(16):
            assert perm(x) >> 2 == x >> 2

    def test_singular_affine_takes_the_garbage_path(self):
        plan = plan_embedding(
            AffineXorForm(matrix=((1, 1), (1, 1)), constant=(0, 0))
        )
        assert plan.garbage_wires != ()
        assert plan.partial.free_inputs != []

    def test_pass_through_regime_keeps_inputs(self):
        # AND on 2 inputs into 4 wires: inputs pass through on their
        # own wires, so every specified row keeps its low bits.
        plan = plan_embedding(TruthTableSpec(rows=(0, 0, 0, 1), n_inputs=2))
        assert plan.constant_wires == ((2, 0), (3, 0))
        for x in range(4):
            y = plan.partial.outputs[x]
            assert y & 0b11 == x
            assert (y >> 3) & 1 == (1 if x == 3 else 0)
        # The natural XOR extension is consistent, so it is seeded.
        assert len(plan.extras) == 1
        assert plan.partial.matches(plan.extras[0])

    def test_bijective_lut_is_fully_specified(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0]
        plan = plan_embedding(
            LookupTableSpec(table=tuple(values), n_inputs=4, n_outputs=4)
        )
        assert plan.partial.free_inputs == []
        assert plan.partial.complete([]).word == Permutation.from_values(
            values
        ).word

    @pytest.mark.parametrize(
        "spec, n_wires, match",
        [
            (TruthTableSpec(rows=(0, 1), n_inputs=1), 5, "n_wires"),
            (TruthTableSpec(rows=DC_ROWS, n_inputs=4), 3, "does not fit"),
            # n_wires == n_outputs leaves one garbage code per value;
            # a repeated output value overflows that capacity.
            (MultiOutputSpec(rows=(0, 0), n_inputs=1, n_outputs=2), 2,
             "garbage codes"),
        ],
    )
    def test_rejects(self, spec, n_wires, match):
        with pytest.raises(SpecError, match=match):
            plan_embedding(spec, n_wires)

    def test_routing_word_is_deterministic_and_consistent(self):
        spec = TruthTableSpec(rows=DC_ROWS, n_inputs=4)
        word = routing_word(spec)
        assert word == routing_word(spec)
        plan = plan_embedding(spec)
        base = plan.partial.complete(list(plan.partial.free_outputs))
        assert word == base.word
        assert plan.partial.matches(Permutation(word, 4))


# ----------------------------------------------------------------------
# Sampled-completion hygiene (satellite: dedup + early exhaustion)
# ----------------------------------------------------------------------
class TestSampledCompletions:
    def test_small_space_enumerates_exhaustively(self):
        spec = PartialSpec(outputs=(0, None, None, None), n_wires=2)
        completions, exhausted = _sampled_completions(spec, samples=10, seed=1)
        assert exhausted and len(completions) == 6
        assert len({p.word for p in completions}) == 6

    def test_samples_are_distinct(self):
        outputs = [None] * 16
        outputs[0] = 0
        spec = PartialSpec(outputs=tuple(outputs), n_wires=4)
        completions, exhausted = _sampled_completions(
            spec, samples=50, seed=7
        )
        assert not exhausted and len(completions) == 50
        assert len({p.word for p in completions}) == 50
        for perm in completions:
            assert spec.matches(perm)


# ----------------------------------------------------------------------
# compile_spec: database path (optimal engine over the warm handle)
# ----------------------------------------------------------------------
class TestCompileSpec:
    def test_dc_table_is_optimal(self, optimal_engine):
        spec = TruthTableSpec(rows=DC_ROWS, n_inputs=4)
        result = compile_spec(spec, optimal_engine)
        assert isinstance(result, CompileResult)
        assert result.guarantee == "optimal"
        assert result.exhaustive and result.completions_tried == 2
        assert result.size == 3
        for x, want in enumerate(DC_ROWS):
            if want is not None:
                assert result.output_of(x) == want

    def test_affine_is_optimal(self, optimal_engine):
        spec = AffineXorForm(matrix=((1, 0), (1, 1)), constant=(0, 1))
        result = compile_spec(spec, optimal_engine)
        assert result.guarantee == "optimal"
        assert result.size == 2
        for x in range(4):
            assert result.output_of(x) == spec.evaluate(x)

    def test_sampled_regime_is_a_bound(self, optimal_engine):
        # AND embeds with 12 free rows (constant-wire rows + garbage),
        # far beyond the exhaustive limit: sampled, so a bound -- but
        # the natural extension seed still finds the Toffoli.
        spec = TruthTableSpec(rows=(0, 0, 0, 1), n_inputs=2)
        result = compile_spec(spec, optimal_engine)
        assert result.guarantee == "upper_bound"
        assert not result.exhaustive
        assert result.size == 1
        for x in range(4):
            assert result.output_of(x) == (1 if x == 3 else 0)

    def test_lut_matches_direct_synthesis(self, optimal_engine):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0]
        spec = LookupTableSpec(table=tuple(values), n_inputs=4, n_outputs=4)
        result = compile_spec(spec, optimal_engine)
        direct = optimal_engine.synthesize(
            SynthesisRequest(spec=Permutation.from_values(values), n_wires=4)
        )
        assert result.size == direct.size
        assert result.guarantee == "optimal"
        for x in range(16):
            assert result.output_of(x) == values[x]

    def test_wire_body_is_deterministic(self, optimal_engine):
        spec = TruthTableSpec(rows=DC_ROWS, n_inputs=4)
        a = compile_spec(spec, optimal_engine).to_wire()
        b = compile_spec(spec, optimal_engine).to_wire()
        assert a == b
        emb = a["embedding"]
        assert emb["input_wires"] == [0, 1, 2, 3]
        assert emb["output_wires"] == [3]
        assert emb["dont_care_rows"] == 2
        # The reported permutation honours every specified row.
        perm = Permutation.from_spec(emb["spec"])
        assert int(emb["word"], 16) == perm.word

    def test_cancel_checkpoint_is_called(self, optimal_engine):
        calls = []

        def checkpoint():
            calls.append(True)

        spec = TruthTableSpec(rows=DC_ROWS, n_inputs=4)
        compile_spec(spec, optimal_engine, cancel=checkpoint)
        assert len(calls) >= 2

    def test_cancel_aborts(self, optimal_engine):
        class Stop(Exception):
            pass

        def checkpoint():
            raise Stop()

        spec = TruthTableSpec(rows=DC_ROWS, n_inputs=4)
        with pytest.raises(Stop):
            compile_spec(spec, optimal_engine, cancel=checkpoint)


# ----------------------------------------------------------------------
# compile_spec: generic path (no database fast surface)
# ----------------------------------------------------------------------
class TestCompileGeneric:
    @pytest.fixture(scope="class")
    def heuristic(self):
        return create_engine("heuristic", n_wires=4)

    def test_tiny_space_is_covered_fully(self, heuristic):
        spec = TruthTableSpec(rows=DC_ROWS, n_inputs=4)
        result = compile_spec(spec, heuristic)
        # Both completions were synthesized; the heuristic engine's own
        # guarantee decides whether "optimal" may be claimed.
        assert result.exhaustive and result.completions_tried == 2
        for x, want in enumerate(DC_ROWS):
            if want is not None:
                assert result.output_of(x) == want

    def test_large_space_uses_seeded_candidates(self, heuristic):
        spec = TruthTableSpec(rows=(0, 0, 0, 1), n_inputs=2)
        result = compile_spec(spec, heuristic)
        assert result.guarantee == "upper_bound"
        assert not result.exhaustive
        # natural extension + lexicographic base, deduplicated.
        assert 1 <= result.completions_tried <= 2
        for x in range(4):
            assert result.output_of(x) == (1 if x == 3 else 0)
