"""Tests for the RevLib .real reader/writer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import Circuit
from repro.core.gates import all_gates
from repro.errors import InvalidCircuitError
from repro.io.real_format import read_real, write_real


class TestRoundtrip:
    @given(gates=st.lists(st.sampled_from(all_gates(4)), max_size=15))
    @settings(deadline=None, max_examples=40)
    def test_write_read_roundtrip(self, gates, tmp_path_factory):
        circuit = Circuit.from_gates(gates, 4)
        path = tmp_path_factory.mktemp("real") / "c.real"
        write_real(circuit, path)
        assert read_real(path) == circuit

    def test_known_file_content(self, tmp_path):
        circuit = Circuit.parse("TOF(a,b,d) CNOT(a,b)", 4)
        path = tmp_path / "rd32.real"
        write_real(circuit, path, comment="optimal adder fragment")
        text = path.read_text()
        assert "# optimal adder fragment" in text
        assert ".numvars 4" in text
        assert "t3 a b d" in text
        assert "t2 a b" in text

    def test_read_handles_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(
            "# header\n\n.version 2.0\n.numvars 2\n.variables a b\n"
            ".begin\nt1 a  # inline comment\nt2 a b\n.end\n"
        )
        circuit = read_real(path)
        assert circuit.n_wires == 2
        assert str(circuit) == "NOT(a) CNOT(a,b)"

    def test_read_ignores_metadata_directives(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(
            ".numvars 3\n.variables a b c\n.inputs a b c\n.outputs a b c\n"
            ".constants ---\n.garbage ---\n.begin\nt3 a b c\n.end\n"
        )
        assert read_real(path).gate_count == 1


class TestErrors:
    def test_unknown_gate_kind(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(".numvars 2\n.variables a b\n.begin\nf2 a b\n.end\n")
        with pytest.raises(InvalidCircuitError):
            read_real(path)

    def test_arity_mismatch(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(".numvars 2\n.variables a b\n.begin\nt3 a b\n.end\n")
        with pytest.raises(InvalidCircuitError):
            read_real(path)

    def test_unknown_line_name(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(".numvars 2\n.variables a b\n.begin\nt1 z\n.end\n")
        with pytest.raises(InvalidCircuitError):
            read_real(path)

    def test_no_variables(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(".begin\n.end\n")
        with pytest.raises(InvalidCircuitError):
            read_real(path)

    def test_bad_kind_number(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(".numvars 2\n.variables a b\n.begin\ntx a\n.end\n")
        with pytest.raises(InvalidCircuitError):
            read_real(path)

    def test_numvars_inferred_from_variables(self, tmp_path):
        path = tmp_path / "c.real"
        path.write_text(".variables a b c\n.begin\nt1 c\n.end\n")
        assert read_real(path).n_wires == 3
