"""Tests for the generalized gate libraries (NCT/NCTS/NCTSF/NCP)."""

import pytest

from repro.core import packed
from repro.errors import InvalidGateError, SynthesisError
from repro.synth.libraries import (
    GateLibrary,
    LibraryGate,
    build_size_table,
    full_distribution,
    ncp,
    nct,
    ncts,
    nctsf,
)


class TestLibraryConstruction:
    @pytest.mark.parametrize(
        "maker,n3_count,n4_count",
        [(nct, 12, 32), (ncts, 15, 38), (nctsf, 18, 50), (ncp, 21, 64)],
    )
    def test_gate_counts(self, maker, n3_count, n4_count):
        assert len(maker(3)) == n3_count
        assert len(maker(4)) == n4_count

    def test_all_words_are_valid_permutations(self):
        for maker in (nct, ncts, nctsf, ncp):
            library = maker(4)
            for gate in library.gates:
                assert packed.is_valid(gate.word, 4), gate.label
                assert (
                    packed.inverse(gate.word, 4) == gate.inverse_word
                ), gate.label

    def test_peres_is_not_involution(self):
        library = ncp(3)
        peres = [g for g in library.gates if g.label.startswith("PERES")]
        assert peres and all(not g.is_involution for g in peres)

    def test_swap_fredkin_are_involutions(self):
        library = nctsf(4)
        for gate in library.gates:
            if gate.label.startswith(("SWAP", "FRED")):
                assert gate.is_involution

    def test_peres_semantics(self):
        """PERES(a,b,c): b ^= a; c ^= ab (on the original a, b)."""
        library = ncp(3)
        peres = next(g for g in library.gates if g.label == "PERES(a,b,c)")
        for x in range(8):
            a, b = x & 1, (x >> 1) & 1
            expected = x ^ (a << 1) ^ ((a & b) << 2)
            assert packed.get(peres.word, x) == expected

    def test_closure_validation_rejects_open_sets(self):
        # A lone SWAP(a,b) is inversion-closed but not relabeling-closed.
        from repro.synth.libraries import _swap_gate

        with pytest.raises(InvalidGateError):
            GateLibrary("bad", 4, [_swap_gate(0, 1, 4)])

    def test_duplicate_gates_rejected(self):
        gate = LibraryGate(label="X", word=packed.identity(4), inverse_word=packed.identity(4))
        with pytest.raises(InvalidGateError):
            GateLibrary("dup", 4, [gate, gate])


class TestSizeTables:
    def test_nct_table_matches_main_engine(self, db4_k4):
        table = build_size_table(nct(4), 4)
        assert table.reduced_counts == db4_k4.reduced_counts()

    def test_full_distributions_n3(self):
        """Exact full-group distributions per library; richer libraries
        shrink the maximum size (NCT 8 -> NCP 6)."""
        expected = {
            "NCT": [1, 12, 102, 625, 2780, 8921, 17049, 10253, 577],
            "NCTS": [1, 15, 134, 844, 3752, 11194, 17531, 6817, 32],
            "NCTSF": [1, 18, 184, 1318, 6474, 17695, 14134, 496],
            "NCP": [1, 21, 300, 3001, 14329, 22013, 655],
        }
        for maker in (nct, ncts, nctsf, ncp):
            library = maker(3)
            assert full_distribution(library) == expected[library.name]

    def test_richer_library_never_increases_size(self):
        """NCT circuits are NCTS circuits, etc.: sizes are monotone."""
        tables = [build_size_table(maker(3), 8) for maker in (nct, ncts, nctsf)]
        import random

        rng = random.Random(11)
        for _ in range(40):
            word = packed.random_word(3, rng)
            sizes = [t.size_of(word) for t in tables]
            assert sizes[0] >= sizes[1] >= sizes[2]

    def test_peel_labels_roundtrip(self):
        library = nctsf(3)
        table = build_size_table(library, 7)
        by_label = {g.label: g for g in library.gates}
        import random

        rng = random.Random(3)
        for _ in range(10):
            word = packed.random_word(3, rng)
            labels = table.peel_labels(word)
            assert len(labels) == table.size_of(word)
            current = packed.identity(3)
            for label in labels:
                current = packed.compose(current, by_label[label].word, 3)
            assert current == word

    def test_peel_beyond_depth_raises(self):
        table = build_size_table(nct(3), 2)
        import random

        rng = random.Random(5)
        # Find a function deeper than 2 gates.
        while True:
            word = packed.random_word(3, rng)
            if table.size_of(word) is None:
                break
        with pytest.raises(SynthesisError):
            table.peel_labels(word)

    def test_incomplete_full_distribution_raises(self):
        # n = 4 cannot be exhausted at tiny k through this API.
        table = build_size_table(nct(4), 2)
        assert not table.complete
