"""Tests for don't-care/irreversible embedding synthesis."""

import pytest

from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.synth.embedding import (
    EmbeddingResult,
    PartialSpec,
    embed_boolean_function,
    natural_reversible_extension,
    synthesize_boolean_embedding,
    synthesize_partial,
)
from repro.synth.synthesizer import OptimalSynthesizer


@pytest.fixture(scope="module")
def synth():
    synthesizer = OptimalSynthesizer(k=4, max_list_size=2, cache_dir=False)
    synthesizer.prepare()
    return synthesizer


class TestPartialSpec:
    def test_fully_specified(self):
        spec = PartialSpec(outputs=tuple(range(16)), n_wires=4)
        assert spec.free_inputs == []
        assert spec.n_completions() == 1
        assert list(spec.completions()) == [Permutation.identity(4)]

    def test_free_rows_and_outputs(self):
        outputs = list(range(16))
        outputs[3] = None
        outputs[7] = None
        spec = PartialSpec(outputs=tuple(outputs), n_wires=4)
        assert spec.free_inputs == [3, 7]
        assert spec.free_outputs == [3, 7]
        assert spec.n_completions() == 2

    def test_completions_match_spec(self):
        outputs = [None, None] + list(range(2, 16))
        spec = PartialSpec(outputs=tuple(outputs), n_wires=4)
        for perm in spec.completions():
            assert spec.matches(perm)

    def test_validation(self):
        with pytest.raises(SynthesisError):
            PartialSpec(outputs=(0, 0, None, None), n_wires=2)
        with pytest.raises(SynthesisError):
            PartialSpec(outputs=(0, 9, None, None), n_wires=2)
        with pytest.raises(SynthesisError):
            PartialSpec(outputs=(0, 1, 2), n_wires=2)

    def test_matches_rejects_wrong_fixed_row(self):
        spec = PartialSpec(outputs=(0, None, None, 3), n_wires=2)
        assert spec.matches(Permutation.identity(2))
        swapped = Permutation.from_values([1, 0, 2, 3])
        assert not spec.matches(swapped)


class TestSynthesizePartial:
    def test_fully_specified_equals_direct_synthesis(self, synth):
        shift = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0]
        spec = PartialSpec(outputs=tuple(shift), n_wires=4)
        result = synthesize_partial(spec, synth)
        assert result.size == 4
        assert result.exhaustive
        assert result.circuit.implements(Permutation.from_values(shift))

    def test_dont_cares_can_only_help(self, synth):
        """Freeing two rows of shift4 yields size <= 4."""
        shift = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0]
        outputs = list(shift)
        outputs[0] = None
        outputs[15] = None
        spec = PartialSpec(outputs=tuple(outputs), n_wires=4)
        result = synthesize_partial(spec, synth)
        assert result.size <= 4
        assert spec.matches(result.permutation)

    def test_identity_with_free_rows_is_zero(self, synth):
        outputs = list(range(16))
        outputs[5] = None
        outputs[9] = None
        spec = PartialSpec(outputs=tuple(outputs), n_wires=4)
        result = synthesize_partial(spec, synth)
        assert result.size == 0

    def test_and_embedding_is_single_toffoli(self, synth):
        """AND(a, b) onto wire d: the natural reversible extension is
        the Toffoli gate, so the optimum over don't-cares is 1 gate."""
        result = synthesize_boolean_embedding(
            [0, 0, 0, 1], n_inputs=2, synthesizer=synth
        )
        assert result.size == 1
        assert str(result.circuit) == "TOF(a,b,d)"

    def test_natural_extension_of_and_is_toffoli(self):
        natural = natural_reversible_extension([0, 0, 0, 1], 2, 4)
        from repro.core.gates import TOF

        assert natural.word == TOF(0, 1, 3).to_word(4)

    def test_xor_embedding_is_two_cnots(self, synth):
        """XOR(a, b) onto wire d: two CNOTs."""
        result = synthesize_boolean_embedding(
            [0, 1, 1, 0], n_inputs=2, synthesizer=synth
        )
        assert result.size == 2
        assert result.circuit.gate_count == 2

    def test_majority_embedding(self, synth):
        """MAJ(a, b, c) onto wire d embeds within a few gates."""
        majority = [0, 0, 0, 1, 0, 1, 1, 1]
        result = synthesize_boolean_embedding(
            majority, n_inputs=3, synthesizer=synth
        )
        spec = embed_boolean_function(majority, n_inputs=3, n_wires=4)
        assert spec.matches(result.permutation)
        assert 1 <= result.size <= 4

    def test_extra_candidate_must_match(self, synth):
        spec = embed_boolean_function([0, 0, 0, 1], n_inputs=2, n_wires=4)
        with pytest.raises(SynthesisError):
            synthesize_partial(
                spec, synth, extra_candidates=[Permutation.identity(4)]
            )

    def test_embedding_validation(self):
        with pytest.raises(SynthesisError):
            embed_boolean_function([0, 1], n_inputs=2)
        with pytest.raises(SynthesisError):
            embed_boolean_function(list(range(16)), n_inputs=4, n_wires=4)


class TestQasmExport:
    def test_basic_gates(self):
        from repro.core.circuit import Circuit
        from repro.io.qasm import to_qasm

        circuit = Circuit.parse("NOT(a) CNOT(a,b) TOF(a,b,c)", 4)
        qasm = to_qasm(circuit)
        assert "OPENQASM 2.0;" in qasm
        assert "x q[0];" in qasm
        assert "cx q[0], q[1];" in qasm
        assert "ccx q[0], q[1], q[2];" in qasm
        assert "qreg q[4];" in qasm

    def test_c3x_mode(self):
        from repro.core.circuit import Circuit
        from repro.io.qasm import to_qasm

        circuit = Circuit.parse("TOF4(a,b,c,d)", 4)
        qasm = to_qasm(circuit, allow_c3x=True)
        assert "c3x q[0], q[1], q[2], q[3];" in qasm
        assert "qreg q[4];" in qasm

    def test_tof4_ancilla_decomposition(self):
        from repro.core.circuit import Circuit
        from repro.io.qasm import to_qasm

        circuit = Circuit.parse("TOF4(a,b,c,d)", 4)
        qasm = to_qasm(circuit, allow_c3x=False)
        assert "qreg q[5];" in qasm  # one ancilla appended
        assert qasm.count("ccx") == 3
        assert "c3x" not in qasm

    def test_write_and_comment(self, tmp_path):
        from repro.core.circuit import Circuit
        from repro.io.qasm import write_qasm

        path = tmp_path / "c.qasm"
        write_qasm(Circuit.parse("NOT(a)", 4), path, comment="hello")
        text = path.read_text()
        assert text.startswith("// hello")
        assert text.endswith("x q[0];\n")
