"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DatabaseError,
    InvalidCircuitError,
    InvalidGateError,
    InvalidPermutationError,
    ReproError,
    SizeLimitExceededError,
    SynthesisError,
    UnsatisfiableError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            InvalidPermutationError,
            InvalidGateError,
            InvalidCircuitError,
            SynthesisError,
            SizeLimitExceededError,
            DatabaseError,
            UnsatisfiableError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_value_errors_double_as_valueerror(self):
        """Input-validation errors should be catchable as ValueError, the
        idiomatic Python contract for bad arguments."""
        assert issubclass(InvalidPermutationError, ValueError)
        assert issubclass(InvalidGateError, ValueError)
        assert issubclass(InvalidCircuitError, ValueError)

    def test_size_limit_is_synthesis_error(self):
        assert issubclass(SizeLimitExceededError, SynthesisError)

    def test_size_limit_carries_bound(self):
        exc = SizeLimitExceededError("too big", lower_bound=9)
        assert exc.lower_bound == 9
        assert "too big" in str(exc)

    def test_catching_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise SizeLimitExceededError("x", lower_bound=1)

    def test_library_never_leaks_bare_exceptions_for_bad_specs(self):
        """End-to-end: malformed user input surfaces as ReproError."""
        from repro.core.permutation import Permutation

        with pytest.raises(ReproError):
            Permutation.from_spec("[1,2,3]")
        with pytest.raises(ReproError):
            Permutation.from_spec("not a spec at all []")
