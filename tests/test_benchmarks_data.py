"""Tests for the Table 6 benchmark registry."""

import pytest

from repro.benchmarks_data import BENCHMARKS, get_benchmark


class TestRegistry:
    def test_thirteen_benchmarks(self):
        assert len(BENCHMARKS) == 13

    def test_names_unique(self):
        names = [b.name for b in BENCHMARKS]
        assert len(set(names)) == len(names)

    def test_get_benchmark(self):
        assert get_benchmark("hwb4").optimal_size == 11
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    def test_specs_are_permutations(self):
        for bench in BENCHMARKS:
            assert sorted(bench.spec) == list(range(16))


class TestPaperCircuits:
    def test_every_paper_circuit_implements_its_spec(self):
        """The central data-integrity check: all 13 published circuits
        realize their specifications exactly (including the repaired
        oc8 circuit -- see the module docstring)."""
        for bench in BENCHMARKS:
            circuit = bench.circuit()
            assert circuit.implements(bench.permutation()), bench.name

    def test_circuit_sizes_match_soc_column(self):
        for bench in BENCHMARKS:
            assert bench.circuit().gate_count == bench.optimal_size, bench.name

    def test_soc_never_exceeds_sbkc(self):
        for bench in BENCHMARKS:
            if bench.best_known_size is not None:
                assert bench.optimal_size <= bench.best_known_size

    def test_improvements_match_paper(self):
        """The paper improves decode42 (11->10), oc5 (15->11), oc6 (14->12),
        oc7 (17->13), oc8 (16->12)."""
        improved = {
            b.name: (b.best_known_size, b.optimal_size)
            for b in BENCHMARKS
            if b.best_known_size is not None
            and b.optimal_size < b.best_known_size
        }
        assert improved == {
            "decode42": (11, 10),
            "oc5": (15, 11),
            "oc6": (14, 12),
            "oc7": (17, 13),
            "oc8": (16, 12),
        }

    def test_proved_optimal_flags(self):
        flagged = {b.name for b in BENCHMARKS if b.previously_proved_optimal}
        assert flagged == {"hwb4", "rd32", "shift4"}

    def test_primes4_is_new(self):
        assert get_benchmark("primes4").best_known_size is None


class TestAgainstSynthesizer:
    def test_small_benchmarks_reproduce_optimal_size(self, engine4_l9):
        """Benchmarks of size <= 9 synthesize to exactly the SOC column."""
        for bench in BENCHMARKS:
            if bench.optimal_size <= engine4_l9.max_size:
                outcome = engine4_l9.search(bench.permutation().word)
                assert outcome.size == bench.optimal_size, bench.name
                assert outcome.circuit.implements(bench.permutation())

    def test_larger_benchmarks_prove_lower_bounds(self, engine4_l7):
        """Out-of-reach benchmarks yield valid lower bounds: every SOC of
        a function the L = 7 engine rejects is indeed > 7."""
        for bench in BENCHMARKS:
            if bench.optimal_size > 7:
                assert engine4_l7.prove_lower_bound(
                    bench.permutation().word
                ) == 8
