"""Chaos suite: deterministic fault injection against a live service.

Every test arms a :class:`FaultPlan` via ``ServiceConfig.extra``, drives
the daemon into the planned failure, and then proves the *recovery*:
subsequent queries answer correctly, degraded answers are valid circuits
labeled ``upper_bound``, and the breaker/supervisor state is visible in
``stats``/``health``.  No randomness, no sleeps-and-hope: each fault
fires a counted number of times at a fixed injection stage.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.service import (
    ResultCache,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    SynthesisService,
    TCPDaemon,
)

#: Size-5 specs: above the k=4 database depth of the shared fixtures,
#: so they always take the hard (A_i-list scan) path on first sight.
HARD_SPEC = "[8,3,2,9,7,12,5,14,0,11,10,1,15,4,13,6]"
HARD_SPEC_2 = "[6,7,13,5,0,1,10,3,15,14,4,12,8,9,2,11]"

IDENTITY = "[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]"
SHIFT = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def make_service(handle4, extra=None, **config_kwargs) -> SynthesisService:
    config = ServiceConfig(
        n_wires=4, k=4, max_list_size=3, batch_window=0.0,
        extra=extra or {}, **config_kwargs,
    )
    return SynthesisService(handle4, config=config).start()


def submit(svc, op, **fields) -> dict:
    line = json.dumps({"id": fields.pop("id", 1), "op": op, **fields})
    return json.loads(svc.handle_line(line))


# ----------------------------------------------------------------------
# Deadline pressure -> graceful degradation
# ----------------------------------------------------------------------
class TestDeadlineDegradation:
    def test_blown_deadline_returns_upper_bound_not_hang(self, handle4):
        # The injected delay burns the 50 ms budget before dispatch, so
        # the hard query MUST degrade: a valid circuit, upper_bound
        # guarantee, and an explanation -- never a blocked connection.
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "delay", "delay": 0.3, "op": "synth"}],
        })
        try:
            started = time.perf_counter()
            body = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=50)
            elapsed = time.perf_counter() - started
            assert body["ok"]
            result = body["result"]
            assert result["source"] == "degraded"
            assert result["guarantee"] == "upper_bound"
            assert result["degraded_reason"] == "deadline"
            assert result["tier"] == "heuristic"
            assert result["size"] >= 5  # true optimum is 5
            circuit = Circuit.parse(result["circuit"], 4)
            assert circuit.implements(Permutation.coerce(HARD_SPEC, 4))
            # Degradation is fast: no scan happened after the deadline.
            assert elapsed < 5.0
            assert svc.metrics.counter("responses_degraded").value == 1
            assert svc.metrics.counter("deadline_misses").value >= 1
        finally:
            svc.shutdown()

    def test_degraded_answer_is_not_cached(self, handle4):
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "delay", "delay": 0.3, "op": "synth"}],
        })
        try:
            degraded = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=50)
            assert degraded["result"]["guarantee"] == "upper_bound"
            # Same spec, no deadline: the exact scan runs (a cached
            # degraded answer would come back as source "cache").
            exact = submit(svc, "synth", spec=HARD_SPEC, id=2)
            assert exact["result"]["size"] == 5
            assert exact["result"]["source"] == "scan"
            assert "guarantee" not in exact["result"]
        finally:
            svc.shutdown()

    def test_generous_deadline_still_exact(self, handle4):
        svc = make_service(handle4)
        try:
            body = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=600_000)
            assert body["result"]["size"] == 5
            assert body["result"]["source"] == "scan"
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Circuit breaker transitions, visible end to end
# ----------------------------------------------------------------------
class TestBreakerTransitions:
    def test_trip_shed_probe_close(self, handle4):
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "delay", "delay": 0.3, "op": "synth"}],
            "resilience": {
                "breaker_failure_threshold": 1,
                "breaker_cooldown": 0.2,
            },
        })
        try:
            # One deadline miss trips the threshold-1 breaker open.
            first = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=50)
            assert first["result"]["degraded_reason"] == "deadline"
            snap = svc.stats()["resilience"]["breaker"]
            assert snap["state"] == "open" and snap["trips"] == 1
            assert svc.health()["status"] == "degraded"
            # While open, hard queries shed to the fallback without a scan.
            shed = submit(svc, "synth", spec=HARD_SPEC_2, id=2)
            assert shed["result"]["degraded_reason"] == "breaker_open"
            assert shed["result"]["guarantee"] == "upper_bound"
            # Fast-path queries are unaffected by an open breaker.
            easy = submit(svc, "size", spec=SHIFT, id=3)
            assert easy["ok"] and easy["result"]["source"] in ("db", "cache")
            # After the cooldown the probe scan runs and closes it.
            time.sleep(0.25)
            probe = submit(svc, "synth", spec=HARD_SPEC_2, id=4)
            assert probe["result"]["size"] == 5
            assert probe["result"]["source"] == "scan"
            snap = svc.stats()["resilience"]["breaker"]
            assert snap["state"] == "closed"
            assert svc.health()["status"] == "ok"
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Dropped connection mid-response -> client retry recovers
# ----------------------------------------------------------------------
class TestDropConnection:
    def test_client_retries_through_drop(self, handle4):
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "drop_connection"}],
        })
        daemon = TCPDaemon(svc, port=0)
        daemon.start()
        host, port = daemon.address
        try:
            client = ServiceClient(
                host, port, connect_timeout=2.0, read_timeout=10.0,
                retry=RetryPolicy(retries=2, backoff_base=0.01, jitter=0.0),
            )
            # First response is swallowed by the fault; the retry
            # reconnects and gets the answer.
            assert client.size(IDENTITY) == 0
            health = client.health()
            assert health["faults"]["fired"] == {"drop_connection": 1}
            client.close()
        finally:
            daemon.stop()

    def test_without_retry_the_drop_surfaces(self, handle4):
        from repro.errors import ServiceError

        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "drop_connection"}],
        })
        daemon = TCPDaemon(svc, port=0)
        daemon.start()
        host, port = daemon.address
        try:
            client = ServiceClient(host, port, connect_timeout=2.0,
                                   read_timeout=10.0)
            with pytest.raises(ServiceError, match="closed the connection"):
                client.size(IDENTITY)
            # The daemon itself is fine: a fresh request answers.
            assert client.size(IDENTITY) == 0
            client.close()
        finally:
            daemon.stop()


# ----------------------------------------------------------------------
# Killed workers mid-query -> supervisor restarts and requeues
# ----------------------------------------------------------------------
class TestKillWorker:
    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_supervisor_restarts_pool_and_answers(self, handle4):
        svc = make_service(
            handle4,
            workers=2,
            extra={
                "fault_plan": [{"kind": "kill_worker"}],
                "resilience": {"hard_timeout": 1.0, "max_restarts": 2},
            },
        )
        try:
            # The fault SIGKILLs every worker right after the batch is
            # dispatched; the bounded wait detects the lost tasks, the
            # supervisor rebuilds the pool and requeues, and the query
            # still comes back exact.
            body = submit(svc, "synth", spec=HARD_SPEC)
            assert body["ok"], body
            assert body["result"]["size"] == 5
            assert body["result"]["source"] == "scan"
            circuit = Circuit.parse(body["result"]["circuit"], 4)
            assert circuit.implements(Permutation.coerce(HARD_SPEC, 4))
            health = svc.health()
            assert health["pool"]["restarts"] == 1
            assert health["pool"]["alive"] == 2
            assert health["faults"]["fired"] == {"kill_worker": 1}
            assert svc.metrics.counter("pool_restarts").value == 1
            assert svc.metrics.counter("hard_batch_retries").value == 1
            # The daemon keeps serving afterwards.
            again = submit(svc, "size", spec=HARD_SPEC_2, id=2)
            assert again["ok"] and again["result"]["size"] == 5
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Corrupt persisted cache -> quarantine and keep serving
# ----------------------------------------------------------------------
class TestCorruptCache:
    def test_quarantine_and_recover(self, handle4, tmp_path):
        cache_path = tmp_path / "results.json"
        first = make_service(
            handle4,
            result_cache_path=str(cache_path),
            extra={"fault_plan": [{"kind": "corrupt_cache"}]},
        )
        warm = submit(first, "size", spec=SHIFT)
        assert warm["ok"]
        # Shutdown saves the cache, then the fault garbles the file --
        # the simulated torn write.
        first.shutdown()
        assert cache_path.exists()

        second = make_service(handle4, result_cache_path=str(cache_path))
        try:
            # The corrupt file was quarantined, not fatal.
            assert second.cache.quarantined is not None
            assert second.cache.quarantined.exists()
            health = second.health()
            assert health["status"] == "degraded"
            assert health["cache"]["quarantined"] is not None
            # And the daemon still answers correctly from scratch.
            body = submit(second, "size", spec=SHIFT)
            assert body["ok"]
            assert body["result"]["size"] == warm["result"]["size"]
        finally:
            second.shutdown()
        # The post-quarantine shutdown save produced a clean file again.
        third = ResultCache(path=cache_path)
        assert third.quarantined is None
        assert len(third) > 0
