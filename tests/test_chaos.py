"""Chaos suite: deterministic fault injection against a live service.

Every test arms a :class:`FaultPlan` via ``ServiceConfig.extra``, drives
the daemon into the planned failure, and then proves the *recovery*:
subsequent queries answer correctly, degraded answers are valid circuits
labeled ``upper_bound``, and the breaker/supervisor state is visible in
``stats``/``health``.  No randomness, no sleeps-and-hope: each fault
fires a counted number of times at a fixed injection stage.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time

import pytest

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.service import (
    ResultCache,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    SynthesisService,
    TCPDaemon,
)

#: Size-5 specs: above the k=4 database depth of the shared fixtures,
#: so they always take the hard (A_i-list scan) path on first sight.
HARD_SPEC = "[8,3,2,9,7,12,5,14,0,11,10,1,15,4,13,6]"
HARD_SPEC_2 = "[6,7,13,5,0,1,10,3,15,14,4,12,8,9,2,11]"

IDENTITY = "[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]"
SHIFT = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def make_service(handle4, extra=None, **config_kwargs) -> SynthesisService:
    config = ServiceConfig(
        n_wires=4, k=4, max_list_size=3, batch_window=0.0,
        extra=extra or {}, **config_kwargs,
    )
    return SynthesisService(handle4, config=config).start()


def submit(svc, op, **fields) -> dict:
    line = json.dumps({"id": fields.pop("id", 1), "op": op, **fields})
    return json.loads(svc.handle_line(line))


# ----------------------------------------------------------------------
# Deadline pressure -> graceful degradation
# ----------------------------------------------------------------------
class TestDeadlineDegradation:
    def test_blown_deadline_returns_upper_bound_not_hang(self, handle4):
        # The injected delay burns the 50 ms budget before dispatch, so
        # the hard query MUST degrade: a valid circuit, upper_bound
        # guarantee, and an explanation -- never a blocked connection.
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "delay", "delay": 0.3, "op": "synth"}],
        })
        try:
            started = time.perf_counter()
            body = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=50)
            elapsed = time.perf_counter() - started
            assert body["ok"]
            result = body["result"]
            assert result["source"] == "degraded"
            assert result["guarantee"] == "upper_bound"
            assert result["degraded_reason"] == "deadline"
            assert result["tier"] == "heuristic"
            assert result["size"] >= 5  # true optimum is 5
            circuit = Circuit.parse(result["circuit"], 4)
            assert circuit.implements(Permutation.coerce(HARD_SPEC, 4))
            # Degradation is fast: no scan happened after the deadline.
            assert elapsed < 5.0
            assert svc.metrics.counter("responses_degraded").value == 1
            assert svc.metrics.counter("deadline_misses").value >= 1
        finally:
            svc.shutdown()

    def test_degraded_answer_is_not_cached(self, handle4):
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "delay", "delay": 0.3, "op": "synth"}],
        })
        try:
            degraded = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=50)
            assert degraded["result"]["guarantee"] == "upper_bound"
            # Same spec, no deadline: the exact scan runs (a cached
            # degraded answer would come back as source "cache").
            exact = submit(svc, "synth", spec=HARD_SPEC, id=2)
            assert exact["result"]["size"] == 5
            assert exact["result"]["source"] == "scan"
            assert "guarantee" not in exact["result"]
        finally:
            svc.shutdown()

    def test_generous_deadline_still_exact(self, handle4):
        svc = make_service(handle4)
        try:
            body = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=600_000)
            assert body["result"]["size"] == 5
            assert body["result"]["source"] == "scan"
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Circuit breaker transitions, visible end to end
# ----------------------------------------------------------------------
class TestBreakerTransitions:
    def test_trip_shed_probe_close(self, handle4):
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "delay", "delay": 0.3, "op": "synth"}],
            "resilience": {
                "breaker_failure_threshold": 1,
                "breaker_cooldown": 0.2,
            },
        })
        try:
            # One deadline miss trips the threshold-1 breaker open.
            first = submit(svc, "synth", spec=HARD_SPEC, deadline_ms=50)
            assert first["result"]["degraded_reason"] == "deadline"
            snap = svc.stats()["resilience"]["breaker"]
            assert snap["state"] == "open" and snap["trips"] == 1
            assert svc.health()["status"] == "degraded"
            # While open, hard queries shed to the fallback without a scan.
            shed = submit(svc, "synth", spec=HARD_SPEC_2, id=2)
            assert shed["result"]["degraded_reason"] == "breaker_open"
            assert shed["result"]["guarantee"] == "upper_bound"
            # Fast-path queries are unaffected by an open breaker.
            easy = submit(svc, "size", spec=SHIFT, id=3)
            assert easy["ok"] and easy["result"]["source"] in ("db", "cache")
            # After the cooldown the probe scan runs and closes it.
            time.sleep(0.25)
            probe = submit(svc, "synth", spec=HARD_SPEC_2, id=4)
            assert probe["result"]["size"] == 5
            assert probe["result"]["source"] == "scan"
            snap = svc.stats()["resilience"]["breaker"]
            assert snap["state"] == "closed"
            assert svc.health()["status"] == "ok"
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Dropped connection mid-response -> client retry recovers
# ----------------------------------------------------------------------
class TestDropConnection:
    def test_client_retries_through_drop(self, handle4):
        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "drop_connection"}],
        })
        daemon = TCPDaemon(svc, port=0)
        daemon.start()
        host, port = daemon.address
        try:
            client = ServiceClient(
                host, port, connect_timeout=2.0, read_timeout=10.0,
                retry=RetryPolicy(retries=2, backoff_base=0.01, jitter=0.0),
            )
            # First response is swallowed by the fault; the retry
            # reconnects and gets the answer.
            assert client.size(IDENTITY) == 0
            health = client.health()
            assert health["faults"]["fired"] == {"drop_connection": 1}
            client.close()
        finally:
            daemon.stop()

    def test_without_retry_the_drop_surfaces(self, handle4):
        from repro.errors import ServiceError

        svc = make_service(handle4, extra={
            "fault_plan": [{"kind": "drop_connection"}],
        })
        daemon = TCPDaemon(svc, port=0)
        daemon.start()
        host, port = daemon.address
        try:
            client = ServiceClient(host, port, connect_timeout=2.0,
                                   read_timeout=10.0)
            with pytest.raises(ServiceError, match="closed the connection"):
                client.size(IDENTITY)
            # The daemon itself is fine: a fresh request answers.
            assert client.size(IDENTITY) == 0
            client.close()
        finally:
            daemon.stop()


# ----------------------------------------------------------------------
# Killed workers mid-query -> supervisor restarts and requeues
# ----------------------------------------------------------------------
class TestKillWorker:
    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_supervisor_restarts_pool_and_answers(self, handle4):
        svc = make_service(
            handle4,
            workers=2,
            extra={
                "fault_plan": [{"kind": "kill_worker"}],
                "resilience": {"hard_timeout": 1.0, "max_restarts": 2},
            },
        )
        try:
            # The fault SIGKILLs every worker right after the batch is
            # dispatched; the bounded wait detects the lost tasks, the
            # supervisor rebuilds the pool and requeues, and the query
            # still comes back exact.
            body = submit(svc, "synth", spec=HARD_SPEC)
            assert body["ok"], body
            assert body["result"]["size"] == 5
            assert body["result"]["source"] == "scan"
            circuit = Circuit.parse(body["result"]["circuit"], 4)
            assert circuit.implements(Permutation.coerce(HARD_SPEC, 4))
            health = svc.health()
            assert health["pool"]["restarts"] == 1
            assert health["pool"]["alive"] == 2
            assert health["faults"]["fired"] == {"kill_worker": 1}
            assert svc.metrics.counter("pool_restarts").value == 1
            assert svc.metrics.counter("hard_batch_retries").value == 1
            # The daemon keeps serving afterwards.
            again = submit(svc, "size", spec=HARD_SPEC_2, id=2)
            assert again["ok"] and again["result"]["size"] == 5
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Corrupt persisted cache -> quarantine and keep serving
# ----------------------------------------------------------------------
class TestCorruptCache:
    def test_quarantine_and_recover(self, handle4, tmp_path):
        cache_path = tmp_path / "results.json"
        first = make_service(
            handle4,
            result_cache_path=str(cache_path),
            extra={"fault_plan": [{"kind": "corrupt_cache"}]},
        )
        warm = submit(first, "size", spec=SHIFT)
        assert warm["ok"]
        # Shutdown saves the cache, then the fault garbles the file --
        # the simulated torn write.
        first.shutdown()
        assert cache_path.exists()

        second = make_service(handle4, result_cache_path=str(cache_path))
        try:
            # The corrupt file was quarantined, not fatal.
            assert second.cache.quarantined is not None
            assert second.cache.quarantined.exists()
            health = second.health()
            assert health["status"] == "degraded"
            assert health["cache"]["quarantined"] is not None
            # And the daemon still answers correctly from scratch.
            body = submit(second, "size", spec=SHIFT)
            assert body["ok"]
            assert body["result"]["size"] == warm["result"]["size"]
        finally:
            second.shutdown()
        # The post-quarantine shutdown save produced a clean file again.
        third = ResultCache(path=cache_path)
        assert third.quarantined is None
        assert len(third) > 0


# ----------------------------------------------------------------------
# Non-cooperative cancellation -> process-level kill
# ----------------------------------------------------------------------
class TestNonCooperativeCancel:
    """Work running inside pool processes cannot observe cooperative
    checkpoints; cancelling all of it must escalate to killing the pool."""

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_ignored_cancel_escalates_to_pool_kill(self, handle4):
        from repro.service import WorkerSupervisor
        from repro.service.metrics import MetricsRegistry
        from repro.service.tasks import CANCELLED, TaskRegistry
        from repro.service.workers import HardQueryPool

        metrics = MetricsRegistry()
        registry = TaskRegistry(metrics=metrics)
        pool = HardQueryPool(handle4, processes=2)
        supervisor = WorkerSupervisor(
            pool, hard_timeout=30.0, max_restarts=2, metrics=metrics
        )
        words = [
            Permutation.coerce(HARD_SPEC, 4).word,
            Permutation.coerce(HARD_SPEC_2, 4).word,
        ]
        items = [registry.create("scan", payload=w) for w in words]

        class CancelAtDispatch:
            """Injected in the fault slot: fires after the batch is in
            the workers' hands, i.e. exactly when cooperative cancel can
            no longer reach it."""

            def kill_workers(self, _pool) -> None:
                for item in items:
                    item.token.cancel("breaker_open")

        supervisor.faults = CancelAtDispatch()
        old_pids = set(pool.worker_pids())
        try:
            supervisor.solve_items(items)
            # Every item was preempted: terminal, counted, and the
            # non-cooperative workers were killed with the pool.
            assert all(item.state == CANCELLED for item in items)
            snap = registry.snapshot()
            assert snap["cancelled"] == 2
            assert snap["cancelled_by_reason"] == {"breaker_open": 2}
            assert snap["forced_kills"] == 2
            assert snap["in_flight"] == 0
            assert supervisor.restarts == 1
            assert metrics.counter("pool_restarts").value == 1
            assert metrics.counter("tasks_forced_kills").value == 2
            # The rebuilt pool is fresh processes and still answers.
            supervisor.faults = None
            new_pool = supervisor.pool
            assert set(new_pool.worker_pids()).isdisjoint(old_pids)
            fresh = [registry.create("scan", payload=w) for w in words]
            supervisor.solve_items(fresh)
            assert [item.result.size for item in fresh] == [5, 5]
        finally:
            supervisor.close()


# ----------------------------------------------------------------------
# Racing engine: every lane blows the deadline
# ----------------------------------------------------------------------
class TestRaceAllLanesBlowDeadline:
    def test_race_degrades_to_tagged_upper_bound_never_cached(self, handle4):
        svc = make_service(handle4)
        try:
            # 1 ms cannot fit any proof lane for a size-5 function: the
            # race must come back as a *tagged* upper bound, not an
            # error, not an exact answer, not a hang.
            body = submit(
                svc, "synth", spec=HARD_SPEC, engine="race", deadline_ms=1
            )
            assert body["ok"], body
            result = body["result"]
            assert result["guarantee"] == "upper_bound"
            assert result["extra"]["degraded_reason"] == "deadline"
            assert result["extra"]["winner"] is None
            circuit = Circuit.parse(result["circuit"], 4)
            assert circuit.implements(Permutation.coerce(HARD_SPEC, 4))
            # The preempted lanes are observable, by reason, in stats.
            stats = svc.stats()
            assert stats["tasks"]["cancelled_by_reason"].get("deadline", 0) >= 1
            # Degraded race answers are never cached: the uncontended
            # retry gets the provably-optimal answer from the engine.
            again = submit(svc, "synth", spec=HARD_SPEC, engine="race", id=2)
            assert again["ok"], again
            assert again["result"]["source"] == "engine"
            assert again["result"]["guarantee"] == "optimal"
            assert again["result"]["size"] == 5
            assert again["result"]["extra"]["winner"] in (
                "optimal", "sat", "heuristic"
            )
        finally:
            svc.shutdown()

    def test_served_race_without_deadline_is_bounded(self, handle4):
        # hwb4 is out of reach at L=7: the optimal lane can only prove a
        # bound and the SAT lane would grind for a very long time.  A
        # *served* race must inherit the daemon's hard_timeout as its
        # default budget and degrade, not park the engine lock.
        out_of_reach = "[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]"
        svc = make_service(
            handle4, extra={"resilience": {"hard_timeout": 0.2}}
        )
        try:
            started = time.monotonic()
            body = submit(svc, "synth", spec=out_of_reach, engine="race")
            elapsed = time.monotonic() - started
            assert body["ok"], body
            result = body["result"]
            assert result["guarantee"] == "upper_bound"
            assert result["extra"]["degraded_reason"] == "deadline"
            assert elapsed < 30.0
            circuit = Circuit.parse(result["circuit"], 4)
            assert circuit.implements(Permutation.coerce(out_of_reach, 4))
        finally:
            svc.shutdown()


# ----------------------------------------------------------------------
# Shutdown preempts in-flight hard work
# ----------------------------------------------------------------------
class TestShutdownPreemptsHardWork:
    def test_shutdown_cancels_in_flight_scan(self, handle4):
        import threading

        svc = make_service(handle4)
        responses = []

        def client():
            responses.append(submit(svc, "synth", spec=HARD_SPEC_2))

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        # Wait (bounded) until the scan's work item is actually in
        # flight, then pull the plug.
        deadline = time.monotonic() + 10.0
        while svc.tasks.in_flight == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        svc.shutdown()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert responses and responses[0]["ok"], responses
        result = responses[0]["result"]
        # Either the scan finished just before the cancel landed (exact
        # answer) or it was preempted and degraded with the shutdown tag;
        # both are valid responses -- a hang or an error is the bug.
        if result["source"] == "degraded":
            assert result["degraded_reason"] == "shutdown"
            assert result["guarantee"] == "upper_bound"
            snap = svc.tasks.snapshot()
            assert snap["cancelled_by_reason"].get("shutdown", 0) >= 1
        else:
            assert result["source"] == "scan"
            assert result["size"] == 5
        assert svc.tasks.snapshot()["in_flight"] == 0
        assert svc.stopped

# ----------------------------------------------------------------------
# Sharded cluster: fault isolation under shard-level chaos
# ----------------------------------------------------------------------
SIZE6_SPEC = "[13,8,10,2,9,12,14,6,3,15,0,1,7,11,4,5]"
SIZE6_SPEC_2 = "[0,1,2,3,7,14,15,13,8,9,10,11,12,4,5,6]"
MIXED_SPECS = [IDENTITY, SHIFT, HARD_SPEC, HARD_SPEC_2, SIZE6_SPEC,
               SIZE6_SPEC_2]


def make_shard_cluster(handle4, count=3, faults=None, shard_extra=None,
                       sharding_config=None):
    """Router over in-process shards; probe loop left unstarted so every
    state transition in these tests is driven explicitly."""
    from repro.service.sharding import (
        InProcessShard, ShardingConfig, ShardRouter, ShardSupervisor,
    )

    supervisor = ShardSupervisor(
        config=sharding_config or ShardingConfig(probe_interval=30.0)
    )
    shards = []
    for index in range(count):
        shard = InProcessShard(
            f"shard-{index}",
            make_service(handle4, extra=shard_extra),
        ).start()
        shards.append(shard)
        supervisor.add(shard)
    router = ShardRouter(supervisor, n_wires=4, faults=faults)
    return router, supervisor, shards


def shard_owner(router, spec: str) -> str:
    from repro.core.equivalence import canonical

    word = Permutation.coerce(spec, 4).word
    return router.ring.owner(canonical(word, 4))


class TestShardKilledMidBatch:
    def test_batch_never_loses_a_request(self, handle4):
        """SIGKILL-equivalent crash of one shard at the exact moment its
        batch slice is forwarded: the slice re-routes to survivors (or
        the restarted shard), every request answers, and the incident is
        visible in the rolled-up health."""
        from repro.service.faults import FaultInjector, FaultPlan

        probe = make_shard_cluster(handle4)[0]
        victim = shard_owner(probe, HARD_SPEC)
        probe.shutdown()

        faults = FaultInjector(FaultPlan.from_dicts([
            {"kind": "kill_shard", "shard": victim},
        ]))
        router, sup, shards = make_shard_cluster(handle4, faults=faults)
        single = make_service(handle4)
        try:
            entries = [
                {"id": i, "op": "synth" if i % 2 else "size", "spec": spec}
                for i, spec in enumerate(MIXED_SPECS)
            ]
            line = json.dumps({"id": 7, "op": "batch", "requests": entries})
            body = json.loads(router.handle_line(line))
            assert body["ok"], body
            results = body["result"]["results"]
            assert len(results) == len(entries)
            # Nothing lost, nothing poisoned: every sub-request has an
            # envelope, and every answer is exact (the store is complete
            # on every shard, so re-routing never needs to degrade while
            # survivors remain).
            expected = json.loads(single.handle_line(line))
            assert results == expected["result"]["results"]
            assert all(env["ok"] for env in results)
            assert all(
                env["result"].get("source") != "degraded" for env in results
            )
            # The chaos really happened and is visible in the rollup.
            assert faults.snapshot()["fired"] == {"kill_shard": 1}
            health = router.health()
            rollup = {s["shard"]: s for s in health["shards"]}
            assert rollup[victim]["restarts"] >= 1
            assert health["restarts"] >= 1
            assert any(
                event["event"] == "restarted"
                for event in rollup[victim]["events"]
            )
        finally:
            single.shutdown()
            router.shutdown()


class TestBreakerOpenShardShedsOnlyItsSlice:
    def test_other_slices_stay_exact(self, handle4):
        router, sup, shards = make_shard_cluster(handle4)
        try:
            owners = {spec: shard_owner(router, spec) for spec in
                      (HARD_SPEC, HARD_SPEC_2, SIZE6_SPEC, SIZE6_SPEC_2)}
            assert len(set(owners.values())) >= 2, owners
            shed_spec = HARD_SPEC
            victim = owners[shed_spec]
            other_spec = next(
                spec for spec, owner in owners.items() if owner != victim
            )
            # Trip the victim's breaker (consecutive hard-path failures).
            victim_service = next(
                s.service for s in shards if s.shard_id == victim
            )
            while victim_service.breaker.allow():
                victim_service.breaker.record_failure()
            # Its keyspace slice sheds hard queries to tagged upper
            # bounds...
            shed = submit(router, "synth", spec=shed_spec)
            assert shed["ok"], shed
            assert shed["result"]["guarantee"] == "upper_bound"
            assert shed["result"]["degraded_reason"] == "breaker_open"
            # ...while its fast path and every other shard's slice stay
            # exact: the blast radius is one shard's hard queries.
            fast = submit(router, "size", spec=SHIFT, id=2)
            assert fast["ok"] and fast["result"]["size"] == 4
            exact = submit(router, "synth", spec=other_spec, id=3)
            assert exact["ok"], exact
            assert exact["result"]["source"] == "scan"
            assert "guarantee" not in exact["result"]
            # The rollup pins the incident to the one shard.
            health = router.health()
            assert health["status"] == "degraded"
            breakers = {
                s["shard"]: s["breaker"] for s in health["shards"]
            }
            assert breakers[victim] == "open"
            assert all(
                state == "closed"
                for shard, state in breakers.items() if shard != victim
            )
        finally:
            router.shutdown()


class TestLiveDrainCompletesInFlight:
    def test_zero_dropped_requests(self, handle4):
        """``shard_leave`` while the leaving shard has a request in
        flight: the request completes exactly, nothing is cancelled,
        and the keyspace re-routes to the survivors."""
        router, sup, shards = make_shard_cluster(
            handle4,
            shard_extra={
                # Slow every shard's synth path down so the drain
                # demonstrably overlaps the in-flight request.
                "fault_plan": [
                    {"kind": "delay", "delay": 0.3, "op": "synth",
                     "times": 1},
                ],
            },
        )
        try:
            victim = shard_owner(router, HARD_SPEC)
            managed = sup.get(victim)
            responses = []

            def client():
                responses.append(submit(router, "synth", spec=HARD_SPEC))

            thread = threading.Thread(target=client, daemon=True)
            thread.start()
            deadline = time.monotonic() + 10.0
            while managed.in_flight == 0 and time.monotonic() < deadline:
                time.sleep(0.001)
            assert managed.in_flight == 1  # the drain overlaps real work
            body = submit(router, "shard_leave", shard=victim, id=2)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            # The leave waited for the in-flight request: completed, not
            # cancelled, not degraded.
            assert body["ok"], body
            assert body["result"]["drained"] is True
            assert body["result"]["cancelled"] == 0
            assert responses and responses[0]["ok"], responses
            result = responses[0]["result"]
            assert result["size"] == 5
            assert result.get("source") != "degraded"
            snap = router.tasks.snapshot()
            assert snap["cancelled_by_reason"].get("shard_leave", 0) == 0
            # The shard is out: parked in `left`, off the ring, its
            # keyspace answered exactly by the survivors.
            assert victim not in router.ring
            assert not managed.routable
            again = submit(router, "synth", spec=HARD_SPEC, id=3)
            assert again["ok"] and again["result"]["size"] == 5
            assert again["result"].get("source") != "degraded"
        finally:
            router.shutdown()
