"""Tests for the MMD transformation-based heuristic baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permutation import Permutation
from repro.synth.heuristic import mmd_best_of_both, mmd_synthesize

perms4 = st.permutations(list(range(16))).map(Permutation.from_values)
perms3 = st.permutations(list(range(8))).map(Permutation.from_values)


class TestCorrectness:
    @given(perms4)
    @settings(deadline=None, max_examples=60)
    def test_unidirectional_implements_spec(self, perm):
        circuit = mmd_synthesize(perm, bidirectional=False)
        assert circuit.implements(perm)

    @given(perms4)
    @settings(deadline=None, max_examples=60)
    def test_bidirectional_implements_spec(self, perm):
        circuit = mmd_synthesize(perm, bidirectional=True)
        assert circuit.implements(perm)

    @given(perms3)
    @settings(deadline=None, max_examples=40)
    def test_n3_implements_spec(self, perm):
        assert mmd_synthesize(perm).implements(perm)

    def test_identity_yields_empty_circuit(self):
        circuit = mmd_synthesize(list(range(16)))
        assert circuit.gate_count == 0

    def test_single_gate_functions(self):
        from repro.core.gates import all_gates
        from repro.core import packed

        for gate in all_gates(4):
            perm = Permutation(gate.to_word(4), 4)
            circuit = mmd_synthesize(perm)
            assert circuit.implements(perm)


class TestQuality:
    @given(perm=perms3)
    @settings(deadline=None, max_examples=30)
    def test_never_better_than_optimal(self, perm, engine3):
        """On n = 3 the optimal engine is exhaustive: MMD >= optimal."""
        optimal = engine3.size_of(perm.word)
        heuristic = mmd_best_of_both(perm).circuit.gate_count
        assert heuristic >= optimal

    def test_gate_count_bounded(self):
        """The classical bound: at most (2^n - 1) * n gates-ish; verify a
        generous linear bound holds on a sample."""
        from repro.rng.sampling import PermutationSampler

        sampler = PermutationSampler(4, seed=8)
        for _ in range(40):
            perm = sampler.sample()
            circuit = mmd_synthesize(perm, bidirectional=False)
            assert circuit.gate_count <= 16 * 4

    def test_bidirectional_usually_helps_on_average(self):
        from repro.rng.sampling import PermutationSampler

        sampler = PermutationSampler(4, seed=99)
        total_uni = total_bi = 0
        for _ in range(60):
            perm = sampler.sample()
            total_uni += mmd_synthesize(perm, bidirectional=False).gate_count
            total_bi += mmd_synthesize(perm, bidirectional=True).gate_count
        assert total_bi < total_uni

    def test_best_of_both_picks_smaller(self):
        from repro.benchmarks_data import get_benchmark

        perm = get_benchmark("4_49").permutation()
        uni = mmd_synthesize(perm, bidirectional=False).gate_count
        bi = mmd_synthesize(perm, bidirectional=True).gate_count
        best = mmd_best_of_both(perm)
        assert best.circuit.gate_count == min(uni, bi)

    def test_heuristic_overhead_exists(self, engine3):
        """The paper's premise: heuristics leave room above optimal.

        Over all-sizes sampling on n = 3 the MMD average strictly exceeds
        the optimal average."""
        from repro.rng.sampling import PermutationSampler

        sampler = PermutationSampler(3, seed=13)
        optimal_total = heuristic_total = 0
        for _ in range(80):
            perm = sampler.sample()
            optimal_total += engine3.size_of(perm.word)
            heuristic_total += mmd_best_of_both(perm).circuit.gate_count
        assert heuristic_total > optimal_total
