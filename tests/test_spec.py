"""Tests for spec parsing/formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import spec as spec_mod
from repro.errors import InvalidPermutationError


class TestParsing:
    def test_parse_bracketed(self):
        assert spec_mod.parse_spec("[0, 2, 1, 3]") == [0, 2, 1, 3]

    def test_parse_bare(self):
        assert spec_mod.parse_spec("3 1 2 0") == [3, 1, 2, 0]

    def test_parse_paper_style(self):
        values = spec_mod.parse_spec(
            "[15,1,12,3,5,6,8,7,0,10,13,9,2,4,14,11]"
        )
        assert len(values) == 16 and values[0] == 15

    def test_parse_rejects_empty(self):
        with pytest.raises(InvalidPermutationError):
            spec_mod.parse_spec("[]")

    def test_parse_rejects_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            spec_mod.parse_spec("[0,0,1,2]")

    def test_parse_rejects_bad_length(self):
        with pytest.raises(InvalidPermutationError):
            spec_mod.parse_spec("[0,1,2]")

    @given(st.permutations(list(range(16))))
    def test_format_parse_roundtrip(self, values):
        assert spec_mod.parse_spec(spec_mod.format_spec(values)) == list(values)


class TestWordConversion:
    @given(st.permutations(list(range(8))))
    def test_word_roundtrip_n3(self, values):
        word, n_wires = spec_mod.spec_to_word(values)
        assert n_wires == 3
        assert spec_mod.word_to_spec(word, 3) == list(values)


class TestCycles:
    def test_identity_has_no_cycles(self):
        assert spec_mod.cycles(list(range(16))) == []

    def test_transposition(self):
        assert spec_mod.cycles([1, 0, 2, 3]) == [(0, 1)]

    def test_full_cycle(self):
        values = [1, 2, 3, 0]
        assert spec_mod.cycles(values) == [(0, 1, 2, 3)]

    @given(st.permutations(list(range(16))))
    def test_cycles_partition_non_fixed_points(self, values):
        cycles = spec_mod.cycles(list(values))
        touched = [x for cycle in cycles for x in cycle]
        assert len(touched) == len(set(touched))
        fixed = {x for x in range(16) if values[x] == x}
        assert set(touched) | fixed == set(range(16))


class TestParity:
    def test_identity_even(self):
        assert spec_mod.parity(list(range(16))) == 0

    def test_single_transposition_odd(self):
        assert spec_mod.parity([1, 0] + list(range(2, 16))) == 1

    def test_gate_parities(self):
        """NOT/CNOT/TOF are even permutations of 16 states; TOF4 is odd."""
        from repro.core.gates import CNOT, NOT, TOF, TOF4
        from repro.core import packed

        for gate, expected in [
            (NOT(0), 0),
            (CNOT(0, 1), 0),
            (TOF(0, 1, 2), 0),
            (TOF4(0, 1, 2, 3), 1),
        ]:
            values = list(packed.unpack(gate.to_word(4), 4))
            assert spec_mod.parity(values) == expected

    @given(st.permutations(list(range(16))), st.permutations(list(range(16))))
    def test_parity_is_homomorphism(self, p, q):
        composed = [q[p[i]] for i in range(16)]
        assert spec_mod.parity(composed) == (
            spec_mod.parity(list(p)) ^ spec_mod.parity(list(q))
        )


def test_truth_table_lines():
    lines = spec_mod.truth_table_lines([0, 2, 1, 3])
    assert lines[0] == "0 0 -> 0 0"
    assert lines[1] == "1 0 -> 0 1"
    assert len(lines) == 4
