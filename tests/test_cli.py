"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert capsys.readouterr().out.strip()


class TestSynth:
    def test_synth_shift4(self, capsys):
        code = main(
            [
                "synth",
                "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]",
                "-k",
                "3",
                "--lists",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)" in out
        assert "4 gates" in out

    def test_synth_out_of_reach(self, capsys):
        code = main(
            [
                "synth",
                "[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]",
                "-k",
                "3",
                "--lists",
                "1",
            ]
        )
        assert code == 1
        assert "lower bound" in capsys.readouterr().out

    def test_synth_exports(self, capsys, tmp_path):
        qasm_path = tmp_path / "c.qasm"
        real_path = tmp_path / "c.real"
        code = main(
            [
                "synth",
                "[1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14]",
                "-k",
                "2",
                "--lists",
                "1",
                "--qasm",
                str(qasm_path),
                "--real",
                str(real_path),
            ]
        )
        assert code == 0
        assert "x q[0];" in qasm_path.read_text()
        from repro.io.real_format import read_real

        assert read_real(real_path).gate_count == 1

    def test_synth_draw(self, capsys):
        code = main(["synth", "[1,0,2,3]", "--wires", "2", "-k", "2",
                     "--lists", "1", "--draw", "--no-cache"])
        assert code == 0
        assert "⊕" in capsys.readouterr().out

    def test_bad_spec_reports_error(self, capsys):
        code = main(["synth", "[0,0,1]", "-k", "2", "--lists", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestOtherCommands:
    def test_build_db(self, capsys):
        code = main(["build-db", "-k", "2", "--lists", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[1, 4, 33]" in out
        assert "Load Factor" in out

    def test_linear_table(self, capsys):
        code = main(["linear", "--wires", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "total 1344" in out

    def test_random(self, capsys):
        code = main(["random", "6", "--wires", "3", "-k", "4", "--lists", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "average size" in out

    def test_info(self, capsys):
        code = main(["info"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cache directory" in out

    def test_peephole(self, capsys, tmp_path):
        from repro.core.circuit import Circuit
        from repro.io.real_format import read_real, write_real

        source = tmp_path / "in.real"
        target = tmp_path / "out.real"
        circuit = Circuit.parse("NOT(a) NOT(a) CNOT(a,b)", 4)
        write_real(circuit, source)
        code = main(
            ["peephole", str(source), "-o", str(target), "-k", "3",
             "--lists", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 saved" in out
        optimized = read_real(target)
        assert optimized.gate_count == 1
        assert optimized.truth_table() == circuit.truth_table()

    def test_testgen(self, capsys, tmp_path):
        target = tmp_path / "suite.txt"
        code = main(
            ["testgen", str(target), "--per-size", "2", "-k", "3",
             "--lists", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "6 cases" in out
        from repro.analysis.testgen import TestSuite

        suite = TestSuite.load(target)
        assert len(suite.cases) == 6

    def test_libraries(self, capsys):
        code = main(["libraries"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NCTSF" in out and "NCP" in out

    def test_clifford(self, capsys):
        code = main(["clifford", "--qubits", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "24" in out


class TestDbCommands:
    def _build(self, tmp_path):
        rdb = tmp_path / "db.rdb"
        code = main(
            ["db", "build", "--wires", "3", "-k", "3", "--lists", "1",
             "-o", str(rdb)]
        )
        assert code == 0
        return rdb

    def test_db_build_writes_store(self, capsys, tmp_path):
        rdb = self._build(tmp_path)
        out = capsys.readouterr().out
        assert rdb.exists()
        assert "format     rdb" in out
        assert "Load Factor" in out

    def test_db_verify_ok_and_fail(self, capsys, tmp_path):
        rdb = self._build(tmp_path)
        assert main(["db", "verify", str(rdb)]) == 0
        assert "OK:" in capsys.readouterr().out
        raw = bytearray(rdb.read_bytes())
        raw[-1] ^= 0xFF
        rdb.write_bytes(bytes(raw))
        assert main(["db", "verify", str(rdb)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_db_convert_and_info(self, capsys, tmp_path):
        rdb = self._build(tmp_path)
        npz = tmp_path / "db.npz"
        assert main(["db", "convert", str(rdb), str(npz)]) == 0
        assert npz.exists()
        assert main(["db", "info", str(npz)]) == 0
        out = capsys.readouterr().out
        assert "format     npz" in out

    def test_db_list_both_formats(self, capsys, tmp_path):
        # A dedicated directory: the autouse cache fixture points
        # REPRO_CACHE_DIR at tmp_path, and `db build` persists its own
        # cache stores there too.
        stores = tmp_path / "stores"
        stores.mkdir()
        rdb = self._build(stores)
        main(["db", "convert", str(rdb), str(stores / "db.npz")])
        capsys.readouterr()
        assert main(["db", "list", "--dir", str(stores)]) == 0
        out = capsys.readouterr().out
        assert "db.rdb" in out and "db.npz" in out
        assert out.count("Load Factor") == 2

    def test_db_list_reports_unreadable_store(self, capsys, tmp_path):
        (tmp_path / "broken.rdb").write_bytes(b"not a store")
        assert main(["db", "list", "--dir", str(tmp_path)]) == 1
        assert "UNREADABLE" in capsys.readouterr().out

    def test_info_lists_rdb_sidecars(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["build-db", "--wires", "3", "-k", "3",
                     "--lists", "1"]) == 0
        capsys.readouterr()
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "db-n3-k3.npz  [npz]" in out
        assert "db-n3-k3.rdb  [rdb]" in out


class TestEngines:
    NOT_A_3 = "[1,0,3,2,5,4,7,6]"

    def test_engines_listing(self, capsys):
        code = main(["engines"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("optimal", "heuristic", "depth", "linear", "portfolio"):
            assert name in out
        assert "daemon-servable: depth, heuristic, linear, optimal" in out

    def test_engines_verbose(self, capsys):
        code = main(["engines", "-v"])
        out = capsys.readouterr().out
        assert code == 0
        assert "meet-in-the-middle" in out.lower() or "Algorithm 1" in out

    def test_synth_with_heuristic_engine(self, capsys):
        code = main(
            ["synth", self.NOT_A_3, "--wires", "3",
             "--engine", "heuristic", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine        : heuristic" in out
        assert "heuristic upper bound" in out
        assert "NOT(a)" in out

    def test_synth_with_depth_engine(self, capsys):
        code = main(
            ["synth", self.NOT_A_3, "--wires", "3",
             "--engine", "depth", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "provably depth-minimal" in out

    def test_synth_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["synth", self.NOT_A_3, "--engine", "warp"])


class TestServeAndQuery:
    SHIFT = "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"

    def test_parser_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7878 and args.workers == 0 and not args.stdio

    def test_parser_query_flags(self):
        args = build_parser().parse_args(
            ["query", self.SHIFT, "--port", "9999", "--size-only"]
        )
        assert args.spec == [self.SHIFT]
        assert args.port == 9999 and args.size_only

    @pytest.fixture()
    def live_daemon(self, handle4):
        from repro.service import ServiceConfig, SynthesisService, TCPDaemon

        service = SynthesisService(
            handle4,
            config=ServiceConfig(n_wires=4, k=4, max_list_size=3),
        )
        daemon = TCPDaemon(service, port=0)
        daemon.start()
        yield daemon
        daemon.stop()

    def test_query_synth(self, capsys, live_daemon):
        _, port = live_daemon.address
        code = main(["query", self.SHIFT, "--port", str(port)])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 gates" in out
        assert "TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)" in out

    def test_query_size_only(self, capsys, live_daemon):
        _, port = live_daemon.address
        code = main(["query", self.SHIFT, "--size-only", "--port", str(port)])
        out = capsys.readouterr().out
        assert code == 0
        assert "-> 4" in out

    def test_query_stats_and_shutdown(self, capsys, live_daemon):
        _, port = live_daemon.address
        code = main(["query", "--stats", "--port", str(port)])
        out = capsys.readouterr().out
        assert code == 0
        assert '"mean_batch_size"' in out
        code = main(["query", "--shutdown", "--port", str(port)])
        out = capsys.readouterr().out
        assert code == 0
        assert "draining" in out

    def test_query_no_specs_errors(self, capsys, live_daemon):
        _, port = live_daemon.address
        code = main(["query", "--port", str(port)])
        err = capsys.readouterr().err
        assert code == 2
        assert "no specs" in err

    def test_query_with_engine(self, capsys, live_daemon):
        _, port = live_daemon.address
        code = main(
            ["query", self.SHIFT, "--engine", "heuristic",
             "--port", str(port)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[engine]" in out or "[cache]" in out

    def test_query_unknown_engine_exits_1(self, capsys, live_daemon):
        _, port = live_daemon.address
        code = main(
            ["query", self.SHIFT, "--engine", "warp", "--port", str(port)]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "unknown engine" in err

    def test_query_connection_refused(self, capsys):
        code = main(["query", self.SHIFT, "--port", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot connect" in err

    def test_query_transport_error_midstream_exits_3(
        self, capsys, monkeypatch
    ):
        """A daemon dying mid-stream must not abandon remaining specs or
        leak a traceback; each failure is reported and the exit is 3."""
        from repro.errors import ServiceError
        from repro.service import client as client_mod

        monkeypatch.setattr(
            client_mod.ServiceClient, "connect", lambda self: self
        )
        calls = []

        def flaky_synth(self, spec, wires=None, engine=None, deadline_ms=None):
            calls.append(spec)
            if len(calls) == 1:
                raise ServiceError("connection to daemon lost: reset")
            return {"size": 4, "source": "db", "circuit": "NOT(a)"}

        monkeypatch.setattr(client_mod.ServiceClient, "synth", flaky_synth)
        code = main(["query", "spec-one", "spec-two", "--port", "1"])
        captured = capsys.readouterr()
        assert code == 3
        assert len(calls) == 2, "remaining specs must still be attempted"
        assert "transport error" in captured.err
        assert "connection to daemon lost" in captured.err
        assert "4 gates" in captured.out

    def test_serve_stdio_subprocess(self, tmp_path):
        """Full process boundary: `repro serve --stdio` as a subprocess."""
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        requests = [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "synth", "spec": self.SHIFT},
            {"id": 3, "op": "stats"},
            {"id": 4, "op": "shutdown"},
        ]
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro",
                "serve", "--stdio", "-k", "3", "--lists", "1",
            ],
            input="\n".join(json.dumps(r) for r in requests) + "\n",
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        responses = [json.loads(line) for line in proc.stdout.splitlines()]
        assert len(responses) == 4
        assert responses[0]["result"]["pong"] is True
        assert responses[1]["result"]["size"] == 4
        assert responses[2]["result"]["config"]["k"] == 3
        assert responses[3]["result"]["draining"] is True
