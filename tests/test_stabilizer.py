"""Tests for the stabilizer/Clifford subsystem (paper §5 future work)."""

import pytest

from repro.errors import SynthesisError
from repro.stabilizer import CliffordSynthesizer, CliffordTableau, clifford_group_size
from repro.stabilizer.tableau import PauliTerm, StabilizerError

X = PauliTerm(x=1, z=0, sign=0)
Y = PauliTerm(x=1, z=1, sign=0)
Z = PauliTerm(x=0, z=1, sign=0)


@pytest.fixture(scope="module")
def clifford1():
    return CliffordSynthesizer(1)


@pytest.fixture(scope="module")
def clifford2():
    return CliffordSynthesizer(2)


class TestPauliAlgebra:
    def test_commutation(self):
        assert not X.commutes_with(Z)
        assert not X.commutes_with(Y)
        assert X.commutes_with(X)
        two_qubit_a = PauliTerm(x=0b01, z=0b10, sign=0)  # X0 Z1
        two_qubit_b = PauliTerm(x=0b10, z=0b01, sign=0)  # Z0 X1
        assert two_qubit_a.commutes_with(two_qubit_b)

    def test_labels(self):
        assert X.label(1) == "+X"
        assert Y.label(2) == "+YI"
        assert PauliTerm(x=0, z=2, sign=1).label(2) == "-IZ"


class TestGateConjugation:
    def test_hadamard(self):
        h = CliffordTableau.hadamard(0, 1)
        assert h.apply_to_pauli(X) == Z
        assert h.apply_to_pauli(Z) == X
        assert h.apply_to_pauli(Y) == PauliTerm(x=1, z=1, sign=1)  # -Y

    def test_phase_gate(self):
        s = CliffordTableau.phase_gate(0, 1)
        assert s.apply_to_pauli(X) == Y
        assert s.apply_to_pauli(Y) == PauliTerm(x=1, z=0, sign=1)  # -X
        assert s.apply_to_pauli(Z) == Z

    def test_cnot(self):
        cx = CliffordTableau.cnot(0, 1, 2)
        # X on control propagates to both; Z on target propagates back.
        assert cx.apply_to_pauli(PauliTerm(x=0b01, z=0, sign=0)) == PauliTerm(
            x=0b11, z=0, sign=0
        )
        assert cx.apply_to_pauli(PauliTerm(x=0, z=0b10, sign=0)) == PauliTerm(
            x=0, z=0b11, sign=0
        )
        # X on target and Z on control are fixed.
        assert cx.apply_to_pauli(PauliTerm(x=0b10, z=0, sign=0)) == PauliTerm(
            x=0b10, z=0, sign=0
        )

    def test_cnot_validates(self):
        with pytest.raises(StabilizerError):
            CliffordTableau.cnot(1, 1, 2)

    def test_sign_preserved_through_conjugation(self):
        s = CliffordTableau.phase_gate(0, 1)
        minus_x = PauliTerm(x=1, z=0, sign=1)
        assert s.apply_to_pauli(minus_x) == PauliTerm(x=1, z=1, sign=1)


class TestGroupStructure:
    def test_defining_relations(self):
        identity = CliffordTableau.identity(1)
        h = CliffordTableau.hadamard(0, 1)
        s = CliffordTableau.phase_gate(0, 1)
        assert h.then(h) == identity
        assert s.then(s).then(s).then(s) == identity
        assert s.then(s) != identity  # S² = Z, not I
        cx = CliffordTableau.cnot(0, 1, 2)
        assert cx.then(cx) == CliffordTableau.identity(2)

    def test_inverse(self):
        s = CliffordTableau.phase_gate(0, 1)
        assert s.inverse() == CliffordTableau.phase_gate_dagger(0, 1)
        h = CliffordTableau.hadamard(0, 1)
        assert h.inverse() == h
        composite = h.then(s).then(h)
        assert composite.then(composite.inverse()).is_identity()

    def test_composition_is_associative(self):
        a = CliffordTableau.hadamard(0, 2)
        b = CliffordTableau.cnot(0, 1, 2)
        c = CliffordTableau.phase_gate(1, 2)
        assert a.then(b).then(c) == a.then(b.then(c))

    def test_group_sizes(self):
        assert clifford_group_size(1) == 24
        assert clifford_group_size(2) == 11520
        assert clifford_group_size(3) == 92897280

    def test_key_uniqueness(self):
        h = CliffordTableau.hadamard(0, 1)
        s = CliffordTableau.phase_gate(0, 1)
        assert h.key() != s.key()
        assert h.key() == CliffordTableau.hadamard(0, 1).key()

    def test_qubit_mismatch(self):
        with pytest.raises(StabilizerError):
            CliffordTableau.identity(1).then(CliffordTableau.identity(2))


class TestSynthesis:
    def test_full_single_qubit_group(self, clifford1):
        distribution = clifford1.distribution()
        assert sum(distribution) == 24
        assert distribution[0] == 1
        # Palindromic: x and x^{-1} have equal size under an
        # inversion-closed generator set.
        assert distribution == distribution[::-1] or sum(distribution) == 24

    def test_full_two_qubit_group(self, clifford2):
        distribution = clifford2.distribution()
        assert sum(distribution) == 11520
        assert distribution[:2] == [1, 8]  # identity; 3+3 1q gates ×? ...
        # 8 = H,S,Sdg on each of 2 qubits gives 6, plus 2 CNOTs.
        assert len(distribution) == 11  # max 10 gates over {H,S,S†,CNOT}

    def test_synthesize_generators(self, clifford2):
        from repro.stabilizer.synthesis import clifford_generators

        for gate in clifford_generators(2):
            labels = clifford2.synthesize(gate.tableau)
            assert len(labels) == 1

    def test_synthesize_composites_verify(self, clifford2):
        h0 = CliffordTableau.hadamard(0, 2)
        s1 = CliffordTableau.phase_gate(1, 2)
        cx = CliffordTableau.cnot(0, 1, 2)
        target = h0.then(cx).then(s1).then(cx).then(h0)
        labels = clifford2.synthesize(target)
        assert len(labels) == clifford2.size(target) <= 5

    def test_swap_like_clifford(self, clifford2):
        """SWAP = 3 CNOTs is optimal in this generator set."""
        cx01 = CliffordTableau.cnot(0, 1, 2)
        cx10 = CliffordTableau.cnot(1, 0, 2)
        swap = cx01.then(cx10).then(cx01)
        assert clifford2.size(swap) == 3

    def test_invalid_tableau_rejected(self, clifford1):
        bogus = CliffordTableau(
            n_qubits=1,
            images=(PauliTerm(x=1, z=0, sign=0), PauliTerm(x=1, z=0, sign=0)),
        )
        with pytest.raises(SynthesisError):
            clifford1.size(bogus)

    def test_three_qubits_out_of_scope(self):
        with pytest.raises(SynthesisError):
            CliffordSynthesizer(3)

    def test_sizes_invariant_under_inversion(self, clifford1):
        for key, size in list(clifford1.sizes.items())[:10]:
            element = clifford1._elements[key]
            assert clifford1.size(element.inverse()) == size
