"""Tests for daemon-side engine routing (the protocol's ``engine`` field).

The daemon must serve non-default engines with their own cache keyspace
and metrics, and the served results must be byte-identical to direct
in-process adapter calls (modulo the ``source`` tag).
"""

import json

import pytest

from repro.engines import SynthesisRequest, create_engine
from repro.service import ServiceConfig, SynthesisService, TCPDaemon
from repro.service.cache import ResultCache
from repro.service.client import ServiceClient

NOT_A_4 = "[1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14]"  # NOT(a) on 4 wires


@pytest.fixture()
def service(handle4):
    svc = SynthesisService(
        handle4,
        config=ServiceConfig(
            n_wires=4,
            k=4,
            max_list_size=3,
            extra={"engine_options": {"depth": {"max_depth": 2}}},
        ),
    )
    svc.start()
    yield svc
    svc.shutdown()


def ask(svc, payload):
    return json.loads(svc.handle_line(json.dumps(payload)))


class TestEngineRouting:
    def test_heuristic_synth_byte_identical_to_adapter(self, service):
        served = ask(
            service,
            {"id": 1, "op": "synth", "spec": NOT_A_4, "engine": "heuristic"},
        )
        assert served["ok"]
        result = dict(served["result"])
        assert result.pop("source") == "engine"
        direct = (
            create_engine("heuristic")
            .synthesize(SynthesisRequest(spec=NOT_A_4, n_wires=4))
            .to_wire()
        )
        assert json.dumps(result, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_depth_synth_uses_engine_options(self, service):
        served = ask(
            service,
            {"id": 2, "op": "synth", "spec": NOT_A_4, "engine": "depth"},
        )
        assert served["ok"]
        assert served["result"]["engine"] == "depth"
        assert served["result"]["metric"] == "depth"
        assert served["result"]["depth"] == 1

    def test_second_request_served_from_cache(self, service):
        first = ask(
            service,
            {"id": 3, "op": "synth", "spec": NOT_A_4, "engine": "heuristic"},
        )["result"]
        second = ask(
            service,
            {"id": 4, "op": "synth", "spec": NOT_A_4, "engine": "heuristic"},
        )["result"]
        assert first.pop("source") == "engine"
        assert second.pop("source") == "cache"
        assert first == second

    def test_size_op_strips_circuit(self, service):
        served = ask(
            service,
            {"id": 5, "op": "size", "spec": NOT_A_4, "engine": "heuristic"},
        )
        assert served["ok"]
        assert served["result"]["size"] == 1
        assert "circuit" not in served["result"]

    def test_explicit_optimal_engine_uses_batched_path(self, service):
        named = ask(
            service,
            {"id": 6, "op": "synth", "spec": NOT_A_4, "engine": "optimal"},
        )["result"]
        default = ask(
            service, {"id": 7, "op": "synth", "spec": NOT_A_4}
        )["result"]
        named.pop("source")
        default.pop("source")
        assert named == default

    def test_unknown_engine_is_protocol_error(self, service):
        served = ask(
            service,
            {"id": 8, "op": "synth", "spec": NOT_A_4, "engine": "nope"},
        )
        assert not served["ok"]
        assert served["error"]["kind"] == "protocol"
        assert "unknown engine" in served["error"]["message"]

    def test_non_servable_engine_is_protocol_error(self, service):
        served = ask(
            service,
            {"id": 9, "op": "synth", "spec": NOT_A_4, "engine": "sat"},
        )
        assert not served["ok"]
        assert served["error"]["kind"] == "protocol"
        assert "not servable" in served["error"]["message"]

    def test_bad_engine_type_rejected(self, service):
        served = ask(
            service,
            {"id": 10, "op": "synth", "spec": NOT_A_4, "engine": 7},
        )
        assert not served["ok"]
        assert "engine must be a string" in served["error"]["message"]

    def test_invalid_spec_on_engine_path(self, service):
        served = ask(
            service,
            {"id": 11, "op": "synth", "spec": "[0,0,1]", "engine": "heuristic"},
        )
        assert not served["ok"]
        assert served["error"]["kind"] == "invalid_spec"

    def test_per_engine_metrics_and_stats(self, service):
        for i, engine in enumerate(("heuristic", "heuristic", "depth")):
            ask(
                service,
                {"id": i, "op": "synth", "spec": NOT_A_4, "engine": engine},
            )
        ask(service, {"id": 20, "op": "synth", "spec": NOT_A_4})
        stats = ask(service, {"id": 21, "op": "stats"})["result"]
        counters = stats["metrics"]
        assert counters["engine_requests_heuristic"] == 2
        assert counters["engine_requests_depth"] == 1
        assert counters["engine_requests_optimal"] == 1
        assert counters["engine_cache_hits_heuristic"] == 1
        assert stats["engines"]["default"] == "optimal"
        assert stats["engines"]["loaded"] == ["depth", "heuristic"]
        by_engine = stats["cache"]["entries_by_engine"]
        assert by_engine["heuristic"] == 1
        assert by_engine["depth"] == 1


class TestClientEngineParam:
    def test_client_routes_engine(self, service):
        daemon = TCPDaemon(service, port=0)
        daemon.start()
        try:
            _, port = daemon.address
            with ServiceClient(port=port) as client:
                result = client.synth(NOT_A_4, engine="heuristic")
                assert result["engine"] == "heuristic"
                assert result["guarantee"] == "heuristic"
                assert client.size(NOT_A_4, engine="heuristic") == 1
                # Default stays the optimal batched pipeline.
                default = client.synth(NOT_A_4)
                assert "guarantee" not in default
        finally:
            daemon.stop()


class TestCacheKeyspaces:
    def test_keyspaces_do_not_mix(self):
        cache = ResultCache(capacity=8)
        cache.store_size(4, 123, 5)
        assert cache.lookup(4, 123) is not None
        assert cache.lookup(4, 123, engine="heuristic") is None
        cache.store_circuit(4, 123, 123, 7, "payload", engine="heuristic")
        hit = cache.lookup(4, 123, 123, engine="heuristic")
        assert hit.size == 7 and hit.circuit == "payload"
        assert cache.lookup(4, 123).size == 5

    def test_persistence_round_trips_engine_keyspaces(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache(capacity=8, path=path)
        cache.store_size(4, 1, 3)
        cache.store_circuit(4, 2, 2, 4, '{"size":4}', engine="depth")
        cache.save()
        records = json.loads(path.read_text())["entries"]
        # Default keyspace stays unmarked, so old cache files load as-is.
        engines = {r.get("engine", "optimal") for r in records}
        assert engines == {"optimal", "depth"}
        reloaded = ResultCache(capacity=8, path=path)
        assert reloaded.lookup(4, 1).size == 3
        assert reloaded.lookup(4, 2, 2, engine="depth").circuit == '{"size":4}'
        assert reloaded.lookup(4, 2, 2) is None

    def test_stats_count_by_engine(self):
        cache = ResultCache(capacity=8)
        cache.store_size(4, 1, 3)
        cache.store_size(4, 2, 3, engine="linear")
        stats = cache.stats()
        assert stats["entries_by_engine"] == {"optimal": 1, "linear": 1}
