"""Tests for the hashing substrate (Wang hash + linear-probing table)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.table import EMPTY, LinearProbingTable
from repro.hashing.wang import hash64shift, hash64shift_np

uint64s = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestWangHash:
    def test_deterministic(self):
        assert hash64shift(12345) == hash64shift(12345)

    def test_distinct_on_small_inputs(self):
        outputs = {hash64shift(x) for x in range(4096)}
        assert len(outputs) == 4096

    @given(uint64s)
    def test_output_is_64_bit(self, x):
        assert 0 <= hash64shift(x) < (1 << 64)

    @given(st.lists(uint64s, min_size=1, max_size=64))
    def test_vectorized_matches_scalar(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        expected = [hash64shift(k) for k in keys]
        assert hash64shift_np(arr).tolist() == expected

    def test_avalanche_smoke(self):
        """Flipping one input bit flips many output bits on average."""
        total = 0
        for x in range(256):
            baseline = hash64shift(x)
            flipped = hash64shift(x ^ 1)
            total += bin(baseline ^ flipped).count("1")
        assert total / 256 > 20  # ~32 expected for a good mixer


class TestLinearProbingTable:
    def test_insert_get(self):
        table = LinearProbingTable(capacity_bits=6)
        assert table.insert(42, 7)
        assert not table.insert(42, 9)  # duplicate keeps first value
        assert table.get(42) == 7
        assert table.get(43) is None
        assert table.get(43, default=123) == 123
        assert 42 in table and 43 not in table
        assert len(table) == 1

    def test_grows_past_load_factor(self):
        table = LinearProbingTable(capacity_bits=4, max_load_factor=0.5)
        for key in range(100):
            table.insert(key, key % 200)
        assert len(table) == 100
        assert table.load_factor <= 0.5 + 1e-9
        for key in range(100):
            assert table.get(key) == key % 200

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=(1 << 64) - 2),
            st.integers(min_value=0, max_value=254),
            max_size=200,
        )
    )
    @settings(deadline=None, max_examples=50)
    def test_matches_dict_model(self, model):
        table = LinearProbingTable(capacity_bits=4)
        for key, value in model.items():
            table.insert(key, value)
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.get(key) == value
        keys = np.array(list(model) or [0], dtype=np.uint64)
        looked_up = table.lookup_batch(keys)
        for key, result in zip(keys.tolist(), looked_up.tolist()):
            assert result == model.get(key, table.missing_value)

    def test_batch_insert_and_lookup(self):
        table = LinearProbingTable(capacity_bits=4)
        keys = np.arange(1000, dtype=np.uint64)
        values = (keys % 200).astype(np.uint8)
        added = table.insert_batch(keys, values)
        assert added == 1000
        assert table.insert_batch(keys, values) == 0  # all duplicates
        result = table.lookup_batch(keys)
        assert (result == values).all()
        missing = table.lookup_batch(np.array([5000, 6000], dtype=np.uint64))
        assert (missing == table.missing_value).all()

    def test_contains_batch(self):
        table = LinearProbingTable(capacity_bits=6)
        table.insert_batch(np.array([1, 2, 3], dtype=np.uint64), 0)
        mask = table.contains_batch(np.array([2, 9], dtype=np.uint64))
        assert mask.tolist() == [True, False]

    def test_lookup_empty_batch(self):
        table = LinearProbingTable(capacity_bits=4)
        assert table.lookup_batch(np.empty(0, dtype=np.uint64)).shape == (0,)

    def test_keys_items(self):
        table = LinearProbingTable(capacity_bits=6)
        table.insert(10, 1)
        table.insert(20, 2)
        assert set(table.keys().tolist()) == {10, 20}
        keys, values = table.items()
        assert dict(zip(keys.tolist(), values.tolist())) == {10: 1, 20: 2}

    def test_from_arrays_roundtrip(self):
        keys = np.array([3, 1, 4, 159, 265], dtype=np.uint64)
        values = np.array([1, 2, 3, 4, 5], dtype=np.uint8)
        table = LinearProbingTable.from_arrays(keys, values)
        for key, value in zip(keys.tolist(), values.tolist()):
            assert table.get(key) == value

    def test_stats(self):
        table = LinearProbingTable(capacity_bits=8)
        for key in range(100):
            table.insert(key * 7919, 0)
        stats = table.stats()
        assert stats.count == 100
        assert stats.capacity == 256
        assert stats.load_factor == pytest.approx(100 / 256)
        assert stats.average_probe_length >= 1.0
        assert stats.maximal_cluster_length >= 1
        assert stats.memory_bytes == 256 * 9
        assert any("Load Factor" in row for row in stats.format_rows())

    def test_stats_empty(self):
        stats = LinearProbingTable(capacity_bits=4).stats()
        assert stats.count == 0
        assert stats.load_factor == 0.0

    def test_empty_sentinel_not_insertable_as_ordinary_key(self):
        # EMPTY is reserved; the table is only used with valid packed
        # permutations, which can never equal it.
        from repro.core import packed

        assert not packed.is_valid(int(EMPTY), 4)

    def test_capacity_bits_validation(self):
        from repro.errors import DatabaseError

        with pytest.raises(DatabaseError):
            LinearProbingTable(capacity_bits=2)
