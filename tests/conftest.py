"""Shared fixtures: session-scoped databases and search engines.

Databases are built once per test session (k = 4 builds in ~0.4 s,
k = 5 in ~1 s) and shared read-only across test modules.
"""

from __future__ import annotations

import random

import pytest

from repro.synth.bfs import build_database
from repro.synth.search import MeetInTheMiddleSearch


@pytest.fixture(scope="session")
def db3():
    """Complete database for n = 3 (every 3-bit function has size <= 8)."""
    return build_database(3, 8)


@pytest.fixture(scope="session")
def db4_k4():
    """n = 4 database to depth 4."""
    return build_database(4, 4)


@pytest.fixture(scope="session")
def db4_k5():
    """n = 4 database to depth 5."""
    return build_database(4, 5)


@pytest.fixture(scope="session")
def engine3(db3):
    """Full-coverage search engine for n = 3 (L = 8 + 4 > L(3))."""
    lists = MeetInTheMiddleSearch.build_lists(db3, 4)
    return MeetInTheMiddleSearch(db3, lists)


@pytest.fixture(scope="session")
def engine4_l7(db4_k4):
    """n = 4 engine with L = 4 + 3 = 7."""
    lists = MeetInTheMiddleSearch.build_lists(db4_k4, 3)
    return MeetInTheMiddleSearch(db4_k4, lists)


@pytest.fixture(scope="session")
def engine4_l9(db4_k5):
    """n = 4 engine with L = 5 + 4 = 9."""
    lists = MeetInTheMiddleSearch.build_lists(db4_k5, 4)
    return MeetInTheMiddleSearch(db4_k5, lists)


@pytest.fixture(scope="session")
def handle4(db4_k4, engine4_l7):
    """Warm synthesis handle over the shared n=4, k=4 state (L = 7)."""
    from repro.synth.synthesizer import SynthesisHandle

    return SynthesisHandle(
        n_wires=4,
        k=4,
        max_list_size=3,
        database=db4_k4,
        engine=engine4_l7,
        cache_path=None,
    )


@pytest.fixture()
def rng():
    """Seeded stdlib RNG for test-local sampling."""
    return random.Random(0xC0FFEE)
