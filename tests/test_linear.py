"""Tests for optimal linear synthesis (paper §4.3, Table 5)."""

import pytest

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.synth.linear import LinearSynthesizer, build_linear_database

PAPER_TABLE5 = [1, 16, 162, 1206, 6589, 26182, 72062, 118424, 84225, 13555, 138]


@pytest.fixture(scope="module")
def linear4():
    synth = LinearSynthesizer(4)
    synth.database  # force build
    return synth


class TestTable5:
    def test_exact_distribution(self, linear4):
        """The headline exact reproduction: all of the paper's Table 5."""
        assert linear4.database.counts == PAPER_TABLE5

    def test_total_is_group_order(self, linear4):
        assert linear4.database.total_functions == 322560

    def test_max_size_and_hardest(self, linear4):
        assert linear4.database.max_size == 10
        assert len(linear4.hardest_functions()) == 138

    def test_every_stored_function_is_affine(self, linear4):
        keys = linear4.database.table.keys()
        for word in keys[:: len(keys) // 64].tolist():
            assert Permutation(word, 4).is_affine()


class TestLinearSynthesis:
    def test_paper_example_size_10(self, linear4):
        values = []
        for x in range(16):
            a, b, c, d = x & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1
            values.append(
                (b ^ 1) | ((a ^ c ^ 1) << 1) | ((d ^ 1) << 2) | (a << 3)
            )
        perm = Permutation.from_values(values)
        assert linear4.size(perm) == 10
        circuit = linear4.synthesize(perm)
        assert circuit.gate_count == 10
        assert circuit.implements(perm)
        assert all(len(g.controls) <= 1 for g in circuit.gates)

    def test_paper_example_circuit_verifies(self):
        """The explicit 10-gate circuit printed in Section 4.3."""
        circuit = Circuit.parse(
            "CNOT(b,a) CNOT(c,d) CNOT(d,b) NOT(d) CNOT(a,b) CNOT(d,c) "
            "CNOT(b,d) CNOT(d,a) NOT(d) CNOT(c,b)",
            4,
        )
        values = []
        for x in range(16):
            a, b, c, d = x & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1
            values.append(
                (b ^ 1) | ((a ^ c ^ 1) << 1) | ((d ^ 1) << 2) | (a << 3)
            )
        assert circuit.implements(values)

    def test_identity(self, linear4):
        assert linear4.size(list(range(16))) == 0
        assert linear4.synthesize(list(range(16))).gate_count == 0

    def test_random_linear_functions(self, linear4, rng):
        """Synthesize random affine maps and verify size-consistency."""
        from repro.synth.gf2 import AffineMap

        for _ in range(15):
            rows = [1 << i for i in range(4)]
            for _ in range(20):
                i, j = rng.randrange(4), rng.randrange(4)
                if i != j:
                    rows[i] ^= rows[j]
            affine = AffineMap(rows=tuple(rows), constant=rng.randrange(16))
            perm = Permutation(affine.to_word(), 4)
            circuit = linear4.synthesize(perm)
            assert circuit.implements(perm)
            assert circuit.gate_count == linear4.size(perm)

    def test_non_linear_rejected(self, linear4):
        from repro.benchmarks_data import get_benchmark

        with pytest.raises(SynthesisError):
            linear4.size(get_benchmark("hwb4").permutation())
        with pytest.raises(SynthesisError):
            linear4.synthesize(get_benchmark("hwb4").permutation())

    def test_linear_optimum_upper_bounds_general_optimum(
        self, linear4, engine4_l7
    ):
        """NOT/CNOT-optimal size >= NCT-optimal size (larger library can
        only help), checked on small linear functions."""
        keys, values = linear4.database.table.items()
        sampled = keys[values <= 5][:20]
        for word in sampled.tolist():
            assert engine4_l7.size_of(int(word)) <= linear4.size(
                Permutation(int(word), 4)
            )


class TestSmallerWidths:
    def test_n3_linear_database(self):
        db = build_linear_database(3)
        assert db.total_functions == 168 * 8  # |GL(3,2)| * translations
        assert db.counts[0] == 1
        assert db.counts[1] == 9  # 3 NOT + 6 CNOT
