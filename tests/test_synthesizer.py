"""Tests for the OptimalSynthesizer facade."""

import pytest

from repro.errors import DatabaseError, SizeLimitExceededError
from repro.synth.synthesizer import OptimalSynthesizer, default_cache_dir


@pytest.fixture(scope="module")
def synth(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    synthesizer = OptimalSynthesizer(
        n_wires=4, k=4, max_list_size=3, cache_dir=cache
    )
    synthesizer.prepare()
    return synthesizer


class TestFacade:
    def test_synthesize_spec_string(self, synth):
        circuit = synth.synthesize("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
        assert circuit.gate_count == 4
        assert str(circuit) == "TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)"

    def test_synthesize_value_list(self, synth):
        circuit = synth.synthesize([x ^ 1 for x in range(16)])
        assert circuit.gate_count == 1

    def test_size(self, synth):
        assert synth.size("[0,7,6,9,4,11,10,13,8,15,14,1,12,3,2,5]") == 4

    def test_size_or_bound(self, synth):
        size, exact = synth.size_or_bound(list(range(16)))
        assert (size, exact) == (0, True)
        hwb4 = "[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]"
        bound, exact = synth.size_or_bound(hwb4)
        assert not exact and bound == synth.max_size + 1

    def test_search_outcome(self, synth):
        outcome = synth.search("[0,7,6,9,4,11,10,13,8,15,14,1,12,3,2,5]")
        assert outcome.size == 4

    def test_out_of_reach_raises(self, synth):
        with pytest.raises(SizeLimitExceededError):
            synth.synthesize("[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]")

    def test_verify(self, synth):
        circuit = synth.synthesize("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
        assert synth.verify(circuit, "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
        assert not synth.verify(circuit, list(range(16)))

    def test_max_size(self, synth):
        assert synth.max_size == 7


class TestCaching:
    def test_cache_roundtrip(self, tmp_path):
        first = OptimalSynthesizer(k=3, max_list_size=2, cache_dir=tmp_path)
        first.prepare()
        assert (tmp_path / "db-n4-k3.npz").exists()
        second = OptimalSynthesizer(k=3, max_list_size=2, cache_dir=tmp_path)
        second.prepare()
        assert second.database.reduced_counts() == [1, 4, 33, 425]

    def test_cache_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        synth = OptimalSynthesizer(k=2, max_list_size=1, cache_dir=False)
        synth.prepare()
        assert list(tmp_path.glob("*.npz")) == []

    def test_stale_cache_rebuilt(self, tmp_path):
        # A k=2 cache cannot serve a k=3 synthesizer of the same file name;
        # different k values use different files, so just confirm isolation.
        OptimalSynthesizer(k=2, max_list_size=1, cache_dir=tmp_path).prepare()
        deeper = OptimalSynthesizer(k=3, max_list_size=1, cache_dir=tmp_path)
        deeper.prepare()
        assert deeper.database.k == 3

    def test_default_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"

    def test_list_size_validation(self):
        with pytest.raises(DatabaseError):
            OptimalSynthesizer(k=3, max_list_size=4)

    def test_prepare_idempotent(self, synth):
        engine = synth.search_engine
        synth.prepare()
        assert synth.search_engine is engine
