"""Tests for depth-optimal synthesis (paper §5 extension)."""

import pytest

from repro.core.circuit import Circuit
from repro.core.gates import all_gates
from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.synth.depth import (
    DepthOptimalSynthesizer,
    all_layers,
    build_depth_database,
    layer_word,
)


@pytest.fixture(scope="module")
def depth_synth():
    synth = DepthOptimalSynthesizer(4, max_depth=4)
    synth.database  # force build
    return synth


class TestLayers:
    def test_layer_counts(self):
        assert len(all_layers(4)) == 103
        assert len(all_layers(3)) == 22

    def test_layers_have_disjoint_support(self):
        for layer in all_layers(4):
            wires: set[int] = set()
            for gate in layer:
                assert not (wires & gate.support)
                wires |= gate.support

    def test_single_gate_layers_first(self):
        layers = all_layers(4)
        assert all(len(layer) == 1 for layer in layers[:32])

    def test_layer_word_order_independent(self):
        from repro.core.gates import CNOT, NOT

        layer_a = (NOT(0), CNOT(2, 3))
        layer_b = (CNOT(2, 3), NOT(0))
        assert layer_word(layer_a, 4) == layer_word(layer_b, 4)

    def test_layer_words_are_involutions(self):
        from repro.core import packed

        for layer in all_layers(4)[:40]:
            word = layer_word(layer, 4)
            assert packed.compose(word, word, 4) == packed.identity(4)

    def test_paper_example_layer_exists(self):
        """Section 5: 'sequence NOT(a) CNOT(b,c) is counted as a single
        gate' -- that pair is one of our layers."""
        from repro.core.gates import CNOT, NOT

        assert (NOT(0), CNOT(1, 2)) in all_layers(4)


class TestDepthDatabase:
    def test_depth_counts_start(self, depth_synth):
        counts = depth_synth.database.counts_by_depth()
        assert counts[0] == 1
        # Depth 1 classes: every layer collapses to 11 canonical classes.
        assert counts[1] == 11

    def test_gates_have_depth_one(self, depth_synth):
        for gate in all_gates(4):
            assert depth_synth.depth(Permutation(gate.to_word(4), 4)) == 1

    def test_depth_at_most_gate_count(self, depth_synth, db4_k4, rng):
        for size in (2, 3):
            reps = db4_k4.reps_by_size[size]
            for _ in range(5):
                word = int(reps[rng.randrange(len(reps))])
                assert depth_synth.depth(Permutation(word, 4)) <= size


class TestDepthSynthesis:
    def test_synthesize_achieves_reported_depth(self, depth_synth, db4_k4, rng):
        for size in (1, 2, 3):
            reps = db4_k4.reps_by_size[size]
            for _ in range(4):
                word = int(reps[rng.randrange(len(reps))])
                perm = Permutation(word, 4)
                circuit = depth_synth.synthesize(perm)
                assert circuit.implements(perm)
                assert circuit.depth() == depth_synth.depth(perm)

    def test_rd32_depth(self, depth_synth, engine4_l7):
        """rd32's gate-count-optimal circuit has depth 4; depth-optimal
        synthesis does at least as well."""
        from repro.benchmarks_data import get_benchmark

        rd32 = get_benchmark("rd32").permutation()
        gate_optimal = engine4_l7.minimal_circuit(rd32.word)
        depth = depth_synth.depth(rd32)
        assert depth <= gate_optimal.depth()
        circuit = depth_synth.synthesize(rd32)
        assert circuit.implements(rd32)
        assert circuit.depth() == depth

    def test_out_of_reach_raises(self, depth_synth):
        from repro.benchmarks_data import get_benchmark

        with pytest.raises(SynthesisError):
            depth_synth.depth(get_benchmark("hwb4").permutation())

    def test_parallel_pair_is_depth_one(self, depth_synth):
        circuit = Circuit.parse("NOT(a) CNOT(c,d)", 4)
        perm = Permutation(circuit.to_word(), 4)
        assert depth_synth.depth(perm) == 1
