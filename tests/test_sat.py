"""Tests for the SAT subsystem: CNF, CDCL solver, synthesis encoding."""

import itertools
import random

import pytest

from repro.errors import UnsatisfiableError
from repro.sat.cnf import CNF
from repro.sat.encoding import encode_synthesis
from repro.sat.solver import Solver, solve_cnf
from repro.sat.synth import sat_synthesize, sat_synthesize_fixed_size


class TestCNF:
    def test_new_vars(self):
        cnf = CNF()
        assert cnf.new_vars(3) == [1, 2, 3]
        assert cnf.n_vars == 3

    def test_add_validates_literals(self):
        cnf = CNF()
        cnf.new_var()
        with pytest.raises(ValueError):
            cnf.add(2)  # unallocated variable
        with pytest.raises(ValueError):
            cnf.add(0)
        with pytest.raises(ValueError):
            cnf.add()

    def test_exactly_one(self):
        cnf = CNF()
        vars_ = cnf.new_vars(3)
        cnf.exactly_one(vars_)
        result = solve_cnf(cnf)
        assert result.satisfiable
        assert sum(result.model[v] for v in vars_) == 1


class TestSolver:
    def test_trivial_sat(self):
        result = Solver(1, [(1,)]).solve()
        assert result.satisfiable and result.model[1]

    def test_trivial_unsat(self):
        result = Solver(1, [(1,), (-1,)]).solve()
        assert not result.satisfiable

    def test_empty_formula_sat(self):
        assert Solver(3, []).solve().satisfiable

    def test_tautologies_dropped(self):
        result = Solver(2, [(1, -1), (2,)]).solve()
        assert result.satisfiable and result.model[2]

    def test_random_3sat_vs_brute_force(self):
        rng = random.Random(2024)
        for _ in range(120):
            n = rng.randint(3, 8)
            clauses = []
            for _ in range(rng.randint(2, 35)):
                size = rng.randint(1, 3)
                wires = rng.sample(range(1, n + 1), min(size, n))
                clauses.append(
                    tuple(v if rng.random() < 0.5 else -v for v in wires)
                )
            brute = any(
                all(
                    any((lit > 0) == bits[abs(lit) - 1] for lit in clause)
                    for clause in clauses
                )
                for bits in itertools.product([False, True], repeat=n)
            )
            result = Solver(n, clauses).solve()
            assert result.satisfiable == brute
            if result.satisfiable:
                model = result.model
                assert all(
                    any((lit > 0) == model[abs(lit)] for lit in clause)
                    for clause in clauses
                )

    def test_pigeonhole_unsat(self):
        cnf = CNF()
        holes, pigeons = 4, 5
        var = {
            (p, h): cnf.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            cnf.add(*[var[p, h] for h in range(holes)])
        for h in range(holes):
            cnf.at_most_one([var[p, h] for p in range(pigeons)])
        result = solve_cnf(cnf)
        assert not result.satisfiable
        assert result.conflicts > 0

    def test_conflict_budget(self):
        cnf = CNF()
        holes, pigeons = 7, 8
        var = {
            (p, h): cnf.new_var()
            for p in range(pigeons)
            for h in range(holes)
        }
        for p in range(pigeons):
            cnf.add(*[var[p, h] for h in range(holes)])
        for h in range(holes):
            cnf.at_most_one([var[p, h] for p in range(pigeons)])
        result = solve_cnf(cnf, conflict_budget=10)
        assert not result.satisfiable
        assert result.conflicts >= 10


class TestSynthesisEncoding:
    def test_zero_gate_identity(self):
        result = sat_synthesize(list(range(16)), max_gates=1)
        assert result.circuit.gate_count == 0

    def test_single_gates(self):
        from repro.core.gates import all_gates
        from repro.core.permutation import Permutation

        for gate in all_gates(4)[:8]:
            perm = Permutation(gate.to_word(4), 4)
            result = sat_synthesize(perm, max_gates=2)
            assert result.circuit.gate_count == 1
            assert result.circuit.implements(perm)

    def test_optimal_size_matches_search(self, engine4_l7):
        """SAT-optimal and lookup-optimal agree on small functions."""
        from repro.core.circuit import Circuit
        from repro.core.permutation import Permutation

        specimen = Circuit.parse("NOT(a) CNOT(a,b) TOF(b,c,d)", 4)
        perm = Permutation(specimen.to_word(), 4)
        expected = engine4_l7.size_of(perm.word)
        result = sat_synthesize(perm, max_gates=4)
        assert result.circuit.gate_count == expected

    def test_fixed_size_unsat(self):
        """No 1-gate circuit implements a 2-gate function."""
        from repro.core.circuit import Circuit
        from repro.core.permutation import Permutation

        two_gate = Circuit.parse("NOT(a) CNOT(a,b)", 4)
        perm = Permutation(two_gate.to_word(), 4)
        with pytest.raises(UnsatisfiableError):
            sat_synthesize_fixed_size(perm, 1)

    def test_fixed_size_sat(self):
        circuit = sat_synthesize_fixed_size(
            [x ^ 1 for x in range(16)], 1
        )
        assert circuit.gate_count == 1

    def test_encoding_size_scales_linearly_in_depth(self):
        from repro.core.permutation import Permutation

        perm = Permutation.identity(4)
        small = encode_synthesis(perm, 2)
        large = encode_synthesis(perm, 4)
        ratio = len(large.cnf) / len(small.cnf)
        assert 1.8 < ratio < 2.3

    def test_n3_encoding(self):
        """The encoding is width-generic: synthesize a 3-bit function."""
        result = sat_synthesize([1, 0, 3, 2, 5, 4, 7, 6], max_gates=2)  # NOT(a)
        assert result.circuit.gate_count == 1
        assert result.circuit.n_wires == 3
