"""Unit tests for repro.core.combinatorics (plain changes)."""

import pytest

from repro.core.combinatorics import (
    arrangements_in_plain_changes_order,
    compose_perms,
    factorial,
    invert_perm,
    plain_changes,
)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
def test_plain_changes_length(n):
    assert len(plain_changes(n)) == factorial(n) - 1


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
def test_plain_changes_visits_every_permutation_once(n):
    arrangements = arrangements_in_plain_changes_order(n)
    assert len(arrangements) == factorial(n)
    assert len(set(arrangements)) == factorial(n)
    assert arrangements[0] == tuple(range(n))


def test_plain_changes_swaps_are_adjacent():
    for n in range(2, 6):
        for pos in plain_changes(n):
            assert 0 <= pos < n - 1


def test_plain_changes_known_sequence_n3():
    assert plain_changes(3) == [1, 0, 1, 0, 1]


def test_compose_and_invert_perms():
    p = (1, 2, 0)
    q = (2, 0, 1)
    assert compose_perms(p, q) == (0, 1, 2)  # q undoes p
    assert invert_perm(p) == q
    assert compose_perms(p, invert_perm(p)) == (0, 1, 2)


def test_plain_changes_rejects_bad_input():
    with pytest.raises(ValueError):
        plain_changes(0)
