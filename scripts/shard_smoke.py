#!/usr/bin/env python3
"""CI smoke for the sharded daemon: correctness under SIGKILL, then
throughput.

Three phases, all over *real* ``repro serve`` subprocesses mapping one
shared ``.rdb`` store (``REPRO_CACHE_DIR``, default ``.db-cache``):

1. **Reference** -- a 1-shard cluster answers a mixed ``synth``/``size``
   batch; the raw response line is the byte-for-byte oracle.
2. **Fault isolation** -- a 3-shard cluster; the shard that *owns* the
   first batch spec is SIGKILLed before the batch lands.  The router
   must re-route the dead shard's slice and return the **identical**
   response line, and the rolled-up ``health`` must show the supervisor
   restarting the victim back to ``ok``.
3. **Throughput** -- a 4th shard joins live (``shard_join``), then a
   512-request fast-path batch is timed against the 4-shard cluster vs
   the single daemon.  Gate: speedup >= ``SHARD_SMOKE_MIN_SPEEDUP``
   (default 2.0 with >= 4 cores; relaxed to 1.2 below that, where the
   win is only I/O and batch-window overlap, not CPU parallelism --
   docs/SHARDING.md records measured numbers).

Env: ``SMOKE_K`` (default 5), ``REPRO_CACHE_DIR`` (default .db-cache),
``SHARD_SMOKE_MIN_SPEEDUP`` (float, overrides the core-count default).

Run:  PYTHONPATH=src python scripts/shard_smoke.py
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

K = int(os.environ.get("SMOKE_K", "5"))
CACHE_DIR = Path(os.environ.get("REPRO_CACHE_DIR", ".db-cache"))
THROUGHPUT_REQUESTS = 512
TIMED_RUNS = 3

#: Mixed batch: synth and size across easy and mid-depth specs, each a
#: distinct equivalence class so a 3-ring genuinely scatters it.
MIXED_REQUESTS = [
    {"id": 1, "op": "synth", "spec": "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]"},
    {"id": 2, "op": "size", "spec": "[1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14]"},
    {"id": 3, "op": "synth", "spec": "[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15]"},
    {"id": 4, "op": "size", "spec": "[8,3,2,9,7,12,5,14,0,11,10,1,15,4,13,6]"},
    {"id": 5, "op": "synth", "spec": "[3,2,1,0,7,6,5,4,11,10,9,8,15,14,13,12]"},
    {"id": 6, "op": "size", "spec": "[15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0]"},
]
MIXED_LINE = json.dumps({"id": 0, "op": "batch", "requests": MIXED_REQUESTS})


def launch(count: int, faults=None):
    from repro.service.sharding import ShardCluster

    cluster = ShardCluster.launch(
        count,
        k=K,
        max_list_size=1,
        cache_dir=CACHE_DIR,
        faults=faults,
    )
    cluster.router.start()
    return cluster


def fast_path_line() -> str:
    """A 512-request batch of ``size`` lookups over distinct classes."""
    from repro.core.permutation import Permutation
    from repro.engines import create_engine

    engine = create_engine(
        "optimal", n_wires=4, k=K, max_list_size=1, cache_dir=CACHE_DIR
    ).prepare()
    reps = engine.impl.database.reps_by_size[min(3, K)]
    entries = [
        {
            "id": i,
            "op": "size",
            "spec": Permutation(int(reps[i % reps.shape[0]]), 4).spec(),
        }
        for i in range(THROUGHPUT_REQUESTS)
    ]
    return json.dumps({"id": 0, "op": "batch", "requests": entries})


def check_batch_body(label: str, raw: str) -> None:
    body = json.loads(raw)
    assert body.get("ok"), f"{label}: batch envelope not ok: {body}"
    results = body["result"]["results"]
    assert len(results) == len(MIXED_REQUESTS), f"{label}: short batch"
    for sub in results:
        assert sub.get("ok"), f"{label}: sub-request failed: {sub}"
        assert sub["result"].get("source") != "degraded", (
            f"{label}: degraded answer in batch: {sub}"
        )


def shard_entry(health: dict, shard_id: str) -> dict:
    for entry in health.get("shards", []):
        if entry.get("shard") == shard_id:
            return entry
    return {}


def await_restart(router, victim: str, budget: float = 120.0) -> dict:
    """Poll rolled-up health until the victim is back up with a restart
    on record; returns the final health body."""
    deadline = time.monotonic() + budget
    last = {}
    while time.monotonic() < deadline:
        last = router.health()
        shard = shard_entry(last, victim)
        if (
            last.get("status") == "ok"
            and shard.get("state") == "up"
            and shard.get("restarts", 0) >= 1
        ):
            return last
        time.sleep(0.5)
    raise AssertionError(
        f"victim {victim} never restarted to ok within {budget}s: {last}"
    )


def median_seconds(router, line: str) -> float:
    samples = []
    for _ in range(TIMED_RUNS):
        start = time.perf_counter()
        body = json.loads(router.handle_line(line))
        samples.append(time.perf_counter() - start)
        assert body.get("ok"), f"timed batch failed: {body}"
        assert body["result"]["count"] == THROUGHPUT_REQUESTS
    return statistics.median(samples)


def main() -> int:
    from repro.core.equivalence import canonical
    from repro.core.permutation import Permutation

    CACHE_DIR.mkdir(parents=True, exist_ok=True)

    # -- Phase 1: single-daemon reference ------------------------------
    print(f"[shard-smoke] launching 1-shard reference cluster (k={K})")
    single = launch(1)
    try:
        reference = single.router.handle_line(MIXED_LINE)
        check_batch_body("reference", reference)
        print(f"[shard-smoke] reference batch ok ({len(reference)} bytes)")

        # -- Phase 2: SIGKILL the owning shard under a 3-ring ----------
        print("[shard-smoke] launching 3-shard cluster")
        cluster = launch(3)
        try:
            word = Permutation.coerce(MIXED_REQUESTS[0]["spec"], 4).word
            victim = cluster.router.ring.owner(canonical(word, 4))
            backend = cluster.supervisor.get(victim).backend
            pid = backend.describe().get("pid")
            print(f"[shard-smoke] SIGKILL {victim} (pid {pid})")
            backend.kill()  # SIGKILL + reap; supervisor has not noticed

            routed = cluster.router.handle_line(MIXED_LINE)
            check_batch_body("post-kill", routed)
            assert routed == reference, (
                "sharded batch diverged from the single-daemon reference:\n"
                f"  reference: {reference!r}\n  sharded:   {routed!r}"
            )
            print("[shard-smoke] post-kill batch byte-identical to reference")

            health = await_restart(cluster.router, victim)
            print(
                f"[shard-smoke] health ok again: {victim} restarts="
                f"{shard_entry(health, victim)['restarts']} "
                f"epoch={health['epoch']}"
            )

            # -- Phase 3: live join to 4 shards, throughput gate -------
            joined = json.loads(
                cluster.router.handle_line(json.dumps({"id": 90, "op": "shard_join"}))
            )
            assert joined.get("ok"), f"shard_join failed: {joined}"
            assert len(cluster.router.ring) == 4, joined
            print(
                f"[shard-smoke] joined {joined['result']['shard']}; "
                f"ring is now {sorted(cluster.router.ring.members)}"
            )

            line = fast_path_line()
            # Warm both clusters once (store pages + result caches), then
            # time medians over identical warmed lines.
            for router in (single.router, cluster.router):
                warm = json.loads(router.handle_line(line))
                assert warm.get("ok"), f"warmup batch failed: {warm}"
            t_single = median_seconds(single.router, line)
            t_sharded = median_seconds(cluster.router, line)
            speedup = t_single / t_sharded if t_sharded > 0 else float("inf")

            cores = os.cpu_count() or 1
            override = os.environ.get("SHARD_SMOKE_MIN_SPEEDUP")
            required = (
                float(override)
                if override
                else (2.0 if cores >= 4 else 1.2)
            )
            print(
                f"[shard-smoke] {THROUGHPUT_REQUESTS}-request fast-path "
                f"batch: single={t_single * 1000:.1f}ms "
                f"4-shard={t_sharded * 1000:.1f}ms "
                f"speedup={speedup:.2f}x (required {required:.2f}x on "
                f"{cores} cores)"
            )
            if speedup < required:
                print(
                    f"[shard-smoke] FAIL: speedup {speedup:.2f}x below the "
                    f"{required:.2f}x gate",
                    file=sys.stderr,
                )
                return 1
        finally:
            cluster.close()
    finally:
        single.close()
    print("[shard-smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
