#!/usr/bin/env python3
"""One-off deep run: build the k = 7 database and verify Table 4 row 7.

Expected (paper Table 4): 19,466,575 equivalence classes and
932,651,938 functions of optimal size exactly 7.  Takes several minutes
and ~2 GB of RAM on a single core; the result lands in ``.bench-cache``
so the bench suite can reuse it via REPRO_BENCH_K=7.

Run:  python scripts/run_k7.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.engines import create_engine

EXPECTED_REDUCED = [1, 4, 33, 425, 6538, 101983, 1482686, 19466575]
EXPECTED_FUNCTIONS = [
    1,
    32,
    784,
    16204,
    294507,
    4807552,
    70763560,
    932651938,
]


def main() -> None:
    cache = Path(__file__).resolve().parent.parent / ".bench-cache"
    # max_list_size=0: this run only builds and checks the database;
    # benchmark sessions materialize their own search lists.
    engine = create_engine(
        "optimal", n_wires=4, k=7, max_list_size=0, cache_dir=cache,
        verbose=True,
    )
    start = time.perf_counter()
    db = engine.prepare().impl.database
    build_seconds = time.perf_counter() - start
    print(f"\nbuilt k=7 in {build_seconds:.0f}s")

    reduced = db.reduced_counts()
    print(f"reduced counts: {reduced}")
    assert reduced == EXPECTED_REDUCED, "MISMATCH vs paper Table 4 (reduced)"

    start = time.perf_counter()
    functions = db.function_counts()
    print(f"function counts: {functions} "
          f"[class-size accounting {time.perf_counter() - start:.0f}s]")
    assert functions == EXPECTED_FUNCTIONS, "MISMATCH vs paper Table 4"

    print(f"EXACT MATCH with paper Table 4 rows 0..7; saved to {cache}")


if __name__ == "__main__":
    main()
