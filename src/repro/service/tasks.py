"""Cancellable work items for the hard-query path.

The hard ``A_i``-list scans, SAT solves, and heuristic bounds used to
run as opaque blocking batches: the deadline/breaker machinery could
only *abandon* them (stop waiting) while the computation burned on.
This module makes each unit of hard work a first-class
:class:`WorkItem` with a :class:`CancelToken`, so the resilience layer
-- and the racing engine built on top -- can *preempt* work instead:

* :class:`CancelToken` -- a thread-safe cancellation flag with an
  optional monotonic deadline and parent chaining (cancelling a group
  token cancels every lane derived from it).  Cooperative code calls
  :meth:`CancelToken.checkpoint` at loop boundaries; the scan loops in
  ``repro.synth.search`` and ``repro.analysis.hard`` accept exactly
  such a callable.
* :class:`WorkItem` -- one cancellable unit of work with a strict
  state machine::

      pending ──> running ──> done
         │           ├──────> cancelled
         │           └──────> degraded
         └─────────> cancelled

  No transition escapes that DAG (property-tested in
  ``tests/test_tasks.py``); every terminal state is reached exactly
  once and latches.  ``degraded`` means the work ended without its
  exact answer (an error, an exhausted budget) and the caller should
  fall back; ``cancelled`` means it was preempted on purpose.
* :class:`TaskRegistry` -- tracks in-flight items and counts outcomes
  (including cancellations by reason and forced process-level kills)
  for the daemon's ``stats``/``health`` payloads, and offers
  :meth:`TaskRegistry.cancel_in_flight` -- the one call behind
  deadline-expiry, breaker-trip, and shutdown preemption.

Every ``.wait()`` in this module is bounded: the unbounded-wait check
rule (``repro check``) covers ``repro/service/`` and gates on it.
"""

from __future__ import annotations

import threading
import time

from repro.errors import ServiceError, WorkCancelledError
from repro.perf.trace import trace

#: Work-item states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
DEGRADED = "degraded"

#: The full transition DAG; anything else is a bug, not a shrug.
TRANSITIONS: "dict[str, frozenset[str]]" = {
    PENDING: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, CANCELLED, DEGRADED}),
    DONE: frozenset(),
    CANCELLED: frozenset(),
    DEGRADED: frozenset(),
}

#: States with no outgoing transitions.
TERMINAL_STATES = frozenset(
    state for state, nexts in TRANSITIONS.items() if not nexts
)


class CancelToken:
    """A thread-safe cancellation flag with an optional deadline.

    Args:
        deadline: Anything exposing ``expired() -> bool`` (a
            :class:`repro.service.resilience.Deadline`); when it
            expires the token reads as cancelled with reason
            ``"deadline"`` without anyone calling :meth:`cancel`.
        parent: A token to chain from -- cancelling the parent cancels
            this token too (the racing engine gives every lane a child
            of the race's group token).
    """

    __slots__ = ("_event", "_lock", "_reason", "deadline", "parent")

    def __init__(self, deadline=None, parent: "CancelToken | None" = None) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason: "str | None" = None
        self.deadline = deadline
        self.parent = parent

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation; the first call wins and sets the
        reason.  Returns True when this call flipped the token."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason
            self._event.set()
            return True

    @property
    def cancelled(self) -> bool:
        """Whether the token reads as cancelled (explicitly, via its
        deadline, or via its parent chain)."""
        if self._event.is_set():
            return True
        if self.deadline is not None and self.deadline.expired():
            self.cancel("deadline")
            return True
        if self.parent is not None and self.parent.cancelled:
            self.cancel(self.parent.reason or "cancelled")
            return True
        return False

    @property
    def reason(self) -> "str | None":
        """Why the token was cancelled (None while live)."""
        if not self.cancelled:
            return None
        return self._reason

    def checkpoint(self) -> None:
        """Cooperative cancellation point: raises
        :class:`WorkCancelledError` once the token is cancelled.

        Bound methods of this are what the scan loops receive as their
        ``cancel`` callable -- no service import needed there.
        """
        if self.cancelled:
            reason = self._reason or "cancelled"
            raise WorkCancelledError(
                f"work cancelled ({reason})", reason=reason
            )

    def wait_cancelled(self, timeout: float) -> bool:
        """Bounded wait for cancellation; True when cancelled."""
        if self.cancelled:
            return True
        return self._event.wait(timeout=timeout)

    def child(self) -> "CancelToken":
        """A token chained to this one (shares the deadline)."""
        return CancelToken(deadline=self.deadline, parent=self)


class WorkItem:
    """One cancellable unit of hard work.

    Args:
        name: Label for traces and stats (``"scan"``, ``"sat"``, ...).
        fn: The work, called as ``fn(token)``; it should thread
            ``token.checkpoint`` into its inner loops.
        payload: Opaque identifier for the caller (the packed word for
            scan items); carried through untouched.
        token: The cancellation token (a fresh one when omitted).
        registry: Owning :class:`TaskRegistry`, notified on terminal
            transitions.
    """

    def __init__(
        self,
        name: str,
        fn=None,
        *,
        payload=None,
        token: "CancelToken | None" = None,
        registry: "TaskRegistry | None" = None,
        clock=time.monotonic,
    ) -> None:
        self.name = name
        self.fn = fn
        self.payload = payload
        self.token = token if token is not None else CancelToken()
        self.registry = registry
        self._clock = clock
        self._lock = threading.Lock()
        self._state = PENDING
        self._done = threading.Event()
        self.result = None
        self.error: "BaseException | None" = None
        self.created_at = clock()
        self.started_at: "float | None" = None
        self.finished_at: "float | None" = None
        self.cancel_requested_at: "float | None" = None

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def _transition(self, new_state: str, apply=None) -> None:
        """Move to ``new_state`` or raise; caller holds no lock.

        ``apply`` runs under the lock after validation and before the
        state flips, so payload writes (result, error) are only visible
        on transitions that actually happen -- a late ``finish`` racing
        a force-cancel must not clobber anything.
        """
        with self._lock:
            allowed = TRANSITIONS.get(self._state)
            if allowed is None or new_state not in allowed:
                raise ServiceError(
                    f"work item {self.name!r}: illegal transition "
                    f"{self._state} -> {new_state}"
                )
            if apply is not None:
                apply()
            self._state = new_state
            if new_state == RUNNING:
                self.started_at = self._clock()
                return
            # Terminal.
            self.finished_at = self._clock()
        self._done.set()
        if self.registry is not None:
            self.registry._note_terminal(self, new_state)

    def start(self) -> None:
        """pending -> running."""
        self._transition(RUNNING)

    def finish(self, result) -> None:
        """running -> done with the exact answer."""

        def _apply() -> None:
            self.result = result

        self._transition(DONE, _apply)

    def degrade(self, error: "BaseException | None" = None) -> None:
        """running -> degraded: the work ended without its answer."""

        def _apply() -> None:
            self.error = error

        self._transition(DEGRADED, _apply)

    def cancel(self, reason: str = "cancelled", *, force: bool = False) -> bool:
        """Request cancellation.

        A pending item is cancelled immediately (it never ran).  A
        running item has its token flipped and reaches ``cancelled``
        when the work observes the checkpoint -- unless ``force`` is
        set, which marks it cancelled *now* (the supervisor does this
        after killing a non-cooperative worker process).  Returns True
        when the item reached the cancelled state in this call.
        """
        with trace("task.cancel", item=self.name, reason=reason):
            self.token.cancel(reason)
            with self._lock:
                state = self._state
                if self.cancel_requested_at is None:
                    self.cancel_requested_at = self._clock()
            if state == PENDING:
                try:
                    self._transition(CANCELLED)
                except ServiceError:
                    # Lost the race against start()/a concurrent cancel.
                    return False
                return True
            if state == RUNNING and force:
                try:
                    self._transition(CANCELLED)
                except ServiceError:
                    return False
                return True
            return False

    def mark_cancelled(self) -> bool:
        """running -> cancelled, from the thread running the work (the
        cooperative checkpoint fired).  Returns False if already
        terminal."""
        try:
            self._transition(CANCELLED)
        except ServiceError:
            return False
        return True

    # ------------------------------------------------------------------
    # Execution and waiting
    # ------------------------------------------------------------------
    def run(self):
        """Execute ``fn(token)`` under the state machine.

        A token already cancelled never starts.  A
        :class:`WorkCancelledError` out of the work lands in
        ``cancelled``; any other exception lands in ``degraded`` with
        the error recorded (the caller decides how to fall back).
        Returns the result (None unless the item reached ``done``).
        """
        if self.fn is None:
            raise ServiceError(f"work item {self.name!r} has no work function")
        if self.token.cancelled:
            self.cancel(self.token.reason or "cancelled")
            return None
        try:
            self.start()
        except ServiceError:
            # Cancelled between the check above and start().
            return None
        try:
            result = self.fn(self.token)
        except WorkCancelledError:
            self.mark_cancelled()
            return None
        except BaseException as exc:
            self.degrade(exc)
            return None
        if self.token.cancelled and self.mark_cancelled():
            # The work returned but the token flipped while it ran --
            # a lost race lane whose loop never hit a checkpoint again.
            return None
        try:
            self.finish(result)
        except ServiceError:
            # A concurrent force-cancel beat us to the terminal state.
            return None
        return result

    def wait(self, timeout: float) -> bool:
        """Bounded wait for a terminal state; True when terminal."""
        return self._done.wait(timeout=timeout)

    def cancel_latency(self) -> "float | None":
        """Seconds from cancel request to terminal state (None when
        never cancelled or still running)."""
        if self.cancel_requested_at is None or self.finished_at is None:
            return None
        return max(0.0, self.finished_at - self.cancel_requested_at)


class TaskRegistry:
    """Tracks in-flight work items and counts outcomes for stats.

    Thread-safe; shared by the dispatcher, the racing engine (via the
    service), and shutdown.  ``metrics`` is an optional
    :class:`repro.service.metrics.MetricsRegistry` that receives the
    ``cancel_latency_seconds`` histogram and per-outcome counters.
    """

    def __init__(self, metrics=None, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.metrics = metrics
        self._in_flight: "set[WorkItem]" = set()
        self._created = 0
        self._outcomes = {DONE: 0, CANCELLED: 0, DEGRADED: 0}
        self._cancelled_by_reason: "dict[str, int]" = {}
        self._forced_kills = 0

    def create(
        self,
        name: str,
        fn=None,
        *,
        payload=None,
        deadline=None,
        token: "CancelToken | None" = None,
    ) -> WorkItem:
        """A new tracked :class:`WorkItem` (in-flight until terminal)."""
        if token is None:
            token = CancelToken(deadline=deadline)
        item = WorkItem(
            name, fn, payload=payload, token=token, registry=self,
            clock=self._clock,
        )
        with self._lock:
            self._created += 1
            self._in_flight.add(item)
        return item

    def _note_terminal(self, item: WorkItem, state: str) -> None:
        with self._lock:
            self._in_flight.discard(item)
            self._outcomes[state] = self._outcomes.get(state, 0) + 1
            if state == CANCELLED:
                reason = item.token.reason or "cancelled"
                self._cancelled_by_reason[reason] = (
                    self._cancelled_by_reason.get(reason, 0) + 1
                )
        if self.metrics is not None:
            self.metrics.counter(f"tasks_{state}").inc()
            latency = item.cancel_latency()
            if latency is not None:
                self.metrics.histogram("cancel_latency_seconds").observe(
                    latency
                )

    def note_forced_kill(self, count: int = 1) -> None:
        """Record ``count`` process-level kills of non-cooperative work."""
        with self._lock:
            self._forced_kills += count
        if self.metrics is not None:
            self.metrics.counter("tasks_forced_kills").inc(count)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._in_flight)

    def cancel_in_flight(self, reason: str) -> int:
        """Cancel every in-flight item (the preemption primitive behind
        deadline expiry, breaker trips, and shutdown).  Returns how
        many items were asked to stop."""
        with self._lock:
            items = list(self._in_flight)
        for item in items:
            item.cancel(reason)
        return len(items)

    def snapshot(self) -> dict:
        """JSON-ready registry state for ``stats``/``health``."""
        with self._lock:
            return {
                "in_flight": len(self._in_flight),
                "created": self._created,
                "done": self._outcomes.get(DONE, 0),
                "cancelled": self._outcomes.get(CANCELLED, 0),
                "degraded": self._outcomes.get(DEGRADED, 0),
                "cancelled_by_reason": dict(
                    sorted(self._cancelled_by_reason.items())
                ),
                "forced_kills": self._forced_kills,
            }


__all__ = [
    "CANCELLED",
    "DEGRADED",
    "DONE",
    "PENDING",
    "RUNNING",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "CancelToken",
    "TaskRegistry",
    "WorkItem",
]
