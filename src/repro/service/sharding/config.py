"""Tunables for the sharded daemon (router + shard cluster).

Mirrors :class:`repro.service.resilience.ResilienceConfig`: a frozen
dataclass built from ``extra["sharding"]`` that rejects unknown keys --
a typo must fail loudly at startup, not silently run with defaults.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ServiceError


@dataclass(frozen=True)
class ShardingConfig:
    """Knobs for routing, health probing, failover, and draining.

    Attributes:
        probe_interval: Seconds between supervisor health-probe cycles.
        probe_timeout: Wire timeout for one ``health`` probe.
        suspect_after: Consecutive missed probes before ``up`` ->
            ``suspect`` (the shard stays routable but is watched).
        dead_after: Consecutive missed probes before the shard is
            declared ``dead``, evicted from the ring, and (budget
            permitting) restarted.
        max_restarts: Per-shard restart budget; beyond it the shard
            stays dead and its keyspace is served by the survivors.
        drain_timeout: Seconds a ``drain`` waits for in-flight forwards
            to finish before cancelling them (reason ``shard_leave``).
        forward_timeout: Read timeout for one forwarded request.
        forward_attempts: How many preference-ranked shards the router
            tries before degrading to a local upper-bound answer.
    """

    probe_interval: float = 1.0
    probe_timeout: float = 5.0
    suspect_after: int = 1
    dead_after: int = 3
    max_restarts: int = 2
    drain_timeout: float = 30.0
    forward_timeout: float = 120.0
    forward_attempts: int = 3

    def __post_init__(self) -> None:
        for name in ("probe_interval", "probe_timeout", "drain_timeout",
                     "forward_timeout"):
            if getattr(self, name) <= 0:
                raise ServiceError(f"sharding {name} must be positive")
        for name in ("suspect_after", "dead_after", "forward_attempts"):
            if getattr(self, name) < 1:
                raise ServiceError(f"sharding {name} must be >= 1")
        if self.max_restarts < 0:
            raise ServiceError("sharding max_restarts must be >= 0")

    @classmethod
    def from_extra(cls, extra: "dict | None") -> "ShardingConfig":
        """Build from ``ServiceConfig.extra["sharding"]``."""
        raw = dict((extra or {}).get("sharding", {}))
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ServiceError(
                f"unknown sharding option(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(known))})"
            )
        return cls(**raw)


__all__ = ["ShardingConfig"]
