"""Launching a process-backed shard cluster on the local host.

:func:`ShardCluster.launch` is what ``repro serve --shards N`` runs: it
pre-builds the ``.rdb`` database store **once** (so N shards race zero
BFS builds and the memory-mapped table is shared physical pages across
all of them), spawns N ``repro serve`` subprocesses on ephemeral ports,
registers them with a :class:`ShardSupervisor`, and wraps the result in
a :class:`ShardRouter` ready to hand to ``TCPDaemon``/``serve_stdio``.

The cluster also provides the router's *spawner*, which is what makes
the ``shard_join`` op (and crash restarts) work: a fresh shard is just
another ``repro serve --port 0`` child pointed at the same cache
directory.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from pathlib import Path

import repro
from repro.errors import ServiceError
from repro.service.sharding.config import ShardingConfig
from repro.service.sharding.router import ShardRouter
from repro.service.sharding.shard import ProcessShard
from repro.service.sharding.supervisor import ShardSupervisor


def shard_environment(cache_dir=None) -> "dict[str, str]":
    """Environment for a shard subprocess.

    Prepends this package's source root to ``PYTHONPATH`` (so the child
    resolves the same ``repro`` regardless of how the parent was
    launched) and pins ``REPRO_CACHE_DIR`` so every shard maps the same
    pre-built store.
    """
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    if cache_dir is not None:
        env["REPRO_CACHE_DIR"] = str(cache_dir)
    return env


def shard_command(
    *,
    host: str = "127.0.0.1",
    n_wires: int = 4,
    k: int = 6,
    max_list_size: "int | None" = None,
    workers: int = 0,
) -> "list[str]":
    """The ``repro serve`` invocation for one shard.

    ``--port 0`` gives every (re)start a fresh ephemeral port --
    :class:`ProcessShard` reads the bound address off the ready line.
    """
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        "0",
        "--wires",
        str(n_wires),
        "-k",
        str(k),
        "--workers",
        str(workers),
    ]
    if max_list_size is not None:
        command.extend(["--lists", str(max_list_size)])
    return command


class ShardCluster:
    """A router plus the N local shard processes it fronts."""

    def __init__(
        self, router: ShardRouter, supervisor: ShardSupervisor
    ) -> None:
        self.router = router
        self.supervisor = supervisor

    @classmethod
    def launch(
        cls,
        shard_count: int,
        *,
        host: str = "127.0.0.1",
        n_wires: int = 4,
        k: int = 6,
        max_list_size: "int | None" = None,
        workers: int = 0,
        cache_dir=None,
        config: "ShardingConfig | None" = None,
        faults=None,
        prebuild: bool = True,
        ready_timeout: float = 300.0,
    ) -> "ShardCluster":
        """Build the store, spawn the shards, return a ready cluster."""
        if shard_count < 1:
            raise ServiceError("a cluster needs at least one shard")
        if prebuild:
            # One BFS build in this process; the children find the .rdb
            # in the cache and just map it.
            from repro.engines.optimal import make_optimal_synthesizer

            make_optimal_synthesizer(
                n_wires=n_wires,
                k=k,
                max_list_size=max_list_size,
                cache_dir=cache_dir,
            ).prepare()
        command = shard_command(
            host=host,
            n_wires=n_wires,
            k=k,
            max_list_size=max_list_size,
            workers=workers,
        )
        env = shard_environment(cache_dir)

        def spawn(shard_id: str) -> ProcessShard:
            return ProcessShard(
                shard_id, command, env=env, ready_timeout=ready_timeout
            ).start()

        supervisor = ShardSupervisor(config=config)
        backends: "list[ProcessShard | None]" = []
        executor = ThreadPoolExecutor(
            max_workers=shard_count, thread_name_prefix="repro-shard-spawn"
        )
        try:
            futures = [
                executor.submit(spawn, f"shard-{index}")
                for index in range(shard_count)
            ]
            errors = []
            for future in futures:
                try:
                    backends.append(future.result(timeout=ready_timeout * 2))
                except (ServiceError, _FutureTimeout) as exc:
                    errors.append(exc)
                    backends.append(None)
        finally:
            executor.shutdown(wait=False)
        live = [backend for backend in backends if backend is not None]
        if not live:
            raise ServiceError(
                f"no shard came up (first error: {errors[0]})"
                if errors
                else "no shard came up"
            )
        for backend in live:
            supervisor.add(backend)
        router = ShardRouter(
            supervisor,
            n_wires=n_wires,
            config=config,
            faults=faults,
            spawner=spawn,
        )
        return cls(router, supervisor)

    def close(self) -> None:
        self.router.shutdown()

    def __enter__(self) -> "ShardCluster":
        self.router.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "ShardCluster",
    "shard_command",
    "shard_environment",
]
