"""Fault-isolated sharding for the synthesis daemon.

A sharded deployment is N complete daemons (shards) behind one
consistent-hash router:

* :mod:`repro.service.sharding.ring` -- rendezvous hashing over the
  canonical-representative keyspace, with a routing epoch.
* :mod:`repro.service.sharding.shard` -- shard backends (subprocess or
  in-process) and the shard lifecycle states.
* :mod:`repro.service.sharding.supervisor` -- health probes, suspect /
  dead eviction, bounded restarts, live drain/leave.
* :mod:`repro.service.sharding.router` -- the request front-end:
  single-owner routing with preference-list failover, batch
  scatter/gather that tolerates partial failure, and cluster-wide
  ``health``/``stats``/``shards`` rollups.
* :mod:`repro.service.sharding.cluster` -- launching N local
  ``repro serve`` processes over one shared ``.rdb`` store (what
  ``repro serve --shards N`` runs).

This package is its own architecture layer (``sharding``), *above*
``service``: the service never imports it, the CLI and benchmarks
reach it lazily.
"""

from repro.service.sharding.cluster import (
    ShardCluster,
    shard_command,
    shard_environment,
)
from repro.service.sharding.config import ShardingConfig
from repro.service.sharding.ring import HashRing, member_seed, rendezvous_score
from repro.service.sharding.router import ShardRouter
from repro.service.sharding.shard import (
    DEAD,
    DRAINING,
    JOINING,
    LEFT,
    ROUTABLE_STATES,
    SHARD_STATES,
    SUSPECT,
    UP,
    InProcessShard,
    ProcessShard,
)
from repro.service.sharding.supervisor import ManagedShard, ShardSupervisor

__all__ = [
    "DEAD",
    "DRAINING",
    "JOINING",
    "LEFT",
    "ROUTABLE_STATES",
    "SHARD_STATES",
    "SUSPECT",
    "UP",
    "HashRing",
    "InProcessShard",
    "ManagedShard",
    "ProcessShard",
    "ShardCluster",
    "ShardRouter",
    "ShardingConfig",
    "ShardSupervisor",
    "member_seed",
    "rendezvous_score",
    "shard_command",
    "shard_environment",
]
