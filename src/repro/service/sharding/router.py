"""The shard router: consistent-hash front-end over N shard daemons.

:class:`ShardRouter` duck-types the :class:`SynthesisService` surface
(``handle_line``/``submit``/``start``/``shutdown``/``stopping``/
``faults``/``add_shutdown_hook``), so the existing transports --
:class:`repro.service.daemon.TCPDaemon` and ``serve_stdio`` -- serve a
sharded cluster completely unchanged.

Routing: each ``synth``/``size`` request is keyed by the canonical
representative of its spec (one equivalence class, one owner, one
result-cache partition) and forwarded to the rendezvous owner.
``compile`` requests route the same way, keyed by the canonical
representative of the spec's deterministic base completion
(:func:`repro.specs.routing_word`) -- a pure function of the spec, so
router and shard agree on the owner before any search runs.  If the
owner is unreachable the router walks the preference list -- every
shard maps the complete ``.rdb`` store, so the re-routed answer is
*exact*.  Only when no live shard remains (or the deadline is burned)
does the router degrade to a local fallback-engine answer tagged
``"guarantee": "upper_bound"`` -- a response is always written.

``batch`` ops scatter by owner and gather with per-shard deadlines; a
failed slice re-routes its members individually (exact) or degrades
(tagged), never poisons the batch, and never blocks on a dead peer.

Every forward runs under a :class:`repro.service.tasks.WorkItem` token
registered with the target shard, which is what makes live drain
observable: ``shard_leave`` cancels the stragglers' tokens and the
router re-routes at its next checkpoint.  Rollups (``health``,
``stats``, ``shards``) aggregate per-shard state, breaker status, task
accounting, and the routing-table epoch.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout

from repro import __version__
from repro.core.equivalence import canonical
from repro.core.permutation import Permutation
from repro.engines import GUARANTEE_UPPER_BOUND, SynthesisRequest, create_engine
from repro.errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceShutdownError,
)
from repro.service import protocol
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import Deadline
from repro.service.sharding.config import ShardingConfig
from repro.service.sharding.shard import LEFT, UP
from repro.service.sharding.supervisor import ShardSupervisor
from repro.service.tasks import TaskRegistry
from repro.specs import compile_spec, routing_word, spec_from_wire


class ShardRouter:
    """Route requests across a supervised shard cluster.

    Args:
        supervisor: The :class:`ShardSupervisor` owning membership (its
            ring is the routing table).
        n_wires: Wire count the cluster serves (requests naming another
            get an ``invalid_spec`` envelope, like a plain daemon).
        config: :class:`ShardingConfig`; defaults to the supervisor's.
        metrics: Optional shared :class:`MetricsRegistry`.
        faults: Optional :class:`repro.service.faults.FaultInjector`
            (the ``kill_shard``/``partition_shard`` kinds fire here).
        spawner: Optional callable ``spawner(shard_id) -> backend``
            used by the ``shard_join`` op; a cluster launcher provides
            one, unit-test routers may not.
        fallback_engine: Engine answering when no shard can (default
            ``"heuristic"`` -- in-process, no database needed).
    """

    def __init__(
        self,
        supervisor: ShardSupervisor,
        *,
        n_wires: int = 4,
        config: "ShardingConfig | None" = None,
        metrics: "MetricsRegistry | None" = None,
        faults=None,
        spawner=None,
        fallback_engine: str = "heuristic",
    ) -> None:
        self.supervisor = supervisor
        self.ring = supervisor.ring
        self.n_wires = n_wires
        self.config = config or supervisor.config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        self.tasks = TaskRegistry(metrics=self.metrics)
        self._spawner = spawner
        self._fallback_name = fallback_engine
        self._fallback = None
        self._fallback_lock = threading.Lock()
        self._next_shard_index = len(supervisor.shards())
        self._shutdown_hooks: list = []
        self._shutdown_lock = threading.Lock()
        self._shutdown_requested = False
        self._shutdown_started = False
        self._stopped = threading.Event()
        self._started_at: "float | None" = None

    # ------------------------------------------------------------------
    # Lifecycle (SynthesisService surface)
    # ------------------------------------------------------------------
    def start(self) -> "ShardRouter":
        self.supervisor.start()
        if self._started_at is None:
            self._started_at = time.monotonic()
        return self

    @property
    def stopping(self) -> bool:
        return self._shutdown_requested or self._shutdown_started

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def add_shutdown_hook(self, hook) -> None:
        self._shutdown_hooks.append(hook)

    def shutdown(self) -> None:
        """Stop probing, drain shards gracefully, stop transports."""
        with self._shutdown_lock:
            already_started = self._shutdown_started
            self._shutdown_started = True
        if already_started:
            while not self._stopped.wait(timeout=1.0):
                pass
            return
        self.tasks.cancel_in_flight("shutdown")
        self.supervisor.close(stop_shards=True)
        for hook in self._shutdown_hooks:
            try:
                hook()
            except Exception:
                pass
        self._stopped.set()

    def request_shutdown(self) -> None:
        self._shutdown_requested = True
        threading.Thread(
            target=self.shutdown, name="repro-router-shutdown", daemon=True
        ).start()

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def handle_line(self, line: "str | bytes") -> str:
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            self.metrics.counter("responses_error").inc()
            return protocol.encode_response(
                None, error=protocol.error_envelope(exc)
            )
        return self.submit(request)

    def submit(self, request: "protocol.Request") -> str:
        self.metrics.counter("requests_total").inc()
        self.metrics.counter(f"requests_{request.op}").inc()
        deadline = Deadline.from_ms(request.deadline_ms)
        if self.faults is not None:
            self.faults.delay_request(request.op)
        if request.op == "ping":
            return protocol.encode_response(
                request.id,
                result={
                    "pong": True,
                    "version": __version__,
                    "router": True,
                    "shards": len(self.ring),
                    "epoch": self.ring.epoch,
                },
            )
        if request.op == "stats":
            return protocol.encode_response(request.id, result=self.stats())
        if request.op == "health":
            return protocol.encode_response(request.id, result=self.health())
        if request.op == "shards":
            return protocol.encode_response(
                request.id, result=self.shards_status()
            )
        if request.op == "shutdown":
            self.request_shutdown()
            return protocol.encode_response(
                request.id, result={"draining": True}
            )
        if request.op == "shard_join":
            return self._shard_join(request)
        if request.op == "shard_leave":
            return self._shard_leave(request)
        # synth / size / compile / batch: synthesis work.
        if self.stopping:
            return self._error_response(
                request.id, ServiceShutdownError("router is draining")
            )
        if request.op == "batch":
            return self._batch_submit(request, deadline)
        if request.wires is not None and request.wires != self.n_wires:
            return self._error_response(
                request.id,
                ProtocolError(
                    f"this daemon serves n_wires={self.n_wires}, "
                    f"got wires={request.wires}",
                    kind="invalid_spec",
                ),
            )
        try:
            perm = self._routing_perm(request)
        except ReproError as exc:
            return self._error_response(request.id, exc)
        except (TypeError, ValueError) as exc:
            return self._error_response(
                request.id,
                ProtocolError(f"unparseable spec: {exc}", kind="invalid_spec"),
            )
        return self._route_work(request, perm, deadline)

    def _routing_perm(self, request: "protocol.Request") -> Permutation:
        """The permutation a work request routes by.

        ``synth``/``size`` carry one directly; a ``compile`` spec has
        not been completed yet, so its routing key is the deterministic
        base completion -- the forwarded shard recomputes the same plan
        from the same spec, so the key only needs to be stable, not the
        eventual winner.
        """
        if request.op == "compile":
            return Permutation(
                routing_word(spec_from_wire(request.spec), self.n_wires),
                self.n_wires,
            )
        return Permutation.coerce(request.spec_value(), self.n_wires)

    # ------------------------------------------------------------------
    # Single-request routing
    # ------------------------------------------------------------------
    def _route_work(
        self,
        request: "protocol.Request",
        perm: Permutation,
        deadline: "Deadline | None",
        canon: "int | None" = None,
    ) -> str:
        if canon is None:
            canon = canonical(perm.word, self.n_wires)
        payload = self._forward_payload(request, deadline)
        work = self.tasks.create(
            "forward", payload=request.op, deadline=deadline
        )
        work.start()
        envelope, shard_id, reason = self._forward(
            canon, payload, work, deadline
        )
        if envelope is not None:
            self._finish(work, shard_id)
            self.metrics.counter("responses_forwarded").inc()
            if envelope.get("ok"):
                return protocol.encode_response(
                    request.id, result=envelope.get("result", {})
                )
            return protocol.encode_response(
                request.id, error=envelope.get("error", {})
            )
        if work.token.cancelled:
            reason = work.token.reason or reason
            if not work.finished:
                work.mark_cancelled()
        elif not work.finished:
            work.degrade()
        return self._degraded_response(request, perm, reason)

    def _forward(
        self,
        canon: int,
        payload: dict,
        work,
        deadline: "Deadline | None",
    ) -> "tuple[dict | None, str | None, str]":
        """Walk the preference list for ``canon``; first answer wins.

        Returns ``(envelope, shard_id, reason)`` -- envelope None when
        every attempt failed, with ``reason`` saying why.
        """
        tried: set = set()
        reason = "no_live_shard"
        for _ in range(self.config.forward_attempts):
            if work.token.cancelled and work.token.reason == "shutdown":
                return None, None, "shutdown"
            managed = self._pick(canon, tried)
            if managed is None:
                return None, None, reason
            tried.add(managed.shard_id)
            if self.faults is not None:
                if self.faults.kill_shard(managed.backend):
                    self.metrics.counter("fault_shard_kills").inc()
                if self.faults.partition_shard(managed.shard_id):
                    self.metrics.counter("fault_shard_partitions").inc()
                    self.supervisor.note_failure(managed.shard_id)
                    self.metrics.counter("reroutes").inc()
                    reason = "shard_unreachable"
                    continue
            if deadline is not None:
                if deadline.expired():
                    return None, None, "deadline"
            timeout = self._forward_wait(deadline)
            managed.begin_request(work.token)
            try:
                envelope = managed.backend.call(payload, timeout=timeout)
            except ServiceError:
                envelope = None
            finally:
                managed.end_request(work.token)
            if envelope is not None:
                error = envelope.get("error") or {}
                if envelope.get("ok") or error.get("kind") != "shutdown":
                    self.metrics.counter(
                        f"forwards_{managed.shard_id}"
                    ).inc()
                    return envelope, managed.shard_id, ""
                # The shard is draining (we raced a leave): treat like
                # an unreachable peer and walk on.
            self.metrics.counter("forward_failures").inc()
            self.supervisor.note_failure(managed.shard_id)
            self.metrics.counter("reroutes").inc()
            reason = "shard_unreachable"
        return None, None, reason

    def _pick(self, canon: int, tried: set):
        """The best routable shard for ``canon`` not yet tried."""
        for shard_id in self.ring.preference(canon):
            if shard_id in tried:
                continue
            managed = self.supervisor.get(shard_id)
            if managed is not None and managed.routable:
                return managed
        return None

    def _forward_wait(self, deadline: "Deadline | None") -> float:
        timeout = self.config.forward_timeout
        if deadline is not None:
            # Give the shard its full remaining budget plus slack for
            # its own degraded answer to come back.
            timeout = min(timeout, max(0.1, deadline.remaining()) + 2.0)
        return timeout

    def _forward_payload(
        self, request: "protocol.Request", deadline: "Deadline | None"
    ) -> dict:
        payload: dict = {"id": request.id, "op": request.op}
        if request.spec is not None:
            payload["spec"] = request.spec
        if request.word is not None:
            payload["word"] = request.word
        if request.wires is not None:
            payload["wires"] = request.wires
        if request.engine is not None:
            payload["engine"] = request.engine
        if deadline is not None:
            payload["deadline_ms"] = max(1, int(deadline.remaining() * 1000))
        payload.update(request.options)
        return payload

    # ------------------------------------------------------------------
    # Batch scatter/gather
    # ------------------------------------------------------------------
    def _batch_submit(
        self, request: "protocol.Request", deadline: "Deadline | None"
    ) -> str:
        entries = request.options.get("requests", [])
        slots: "list[dict | None]" = [None] * len(entries)
        parsed: list = []  # (index, sub_request, perm, canon)
        for index, entry in enumerate(entries):
            try:
                sub = protocol.decode_payload(entry)
                if sub.wires is not None and sub.wires != self.n_wires:
                    raise ProtocolError(
                        f"this daemon serves n_wires={self.n_wires}, "
                        f"got wires={sub.wires}",
                        kind="invalid_spec",
                    )
                perm = self._routing_perm(sub)
            except ReproError as exc:
                slots[index] = self._error_envelope_for(entry, exc)
                continue
            except (TypeError, ValueError) as exc:
                slots[index] = self._error_envelope_for(
                    entry,
                    ProtocolError(
                        f"unparseable spec: {exc}", kind="invalid_spec"
                    ),
                )
                continue
            parsed.append(
                (index, sub, perm, canonical(perm.word, self.n_wires))
            )
        groups: "dict[str | None, list]" = {}
        for item in parsed:
            groups.setdefault(self.ring.owner(item[3]), []).append(item)

        def run_slice(owner, items) -> None:
            try:
                self._forward_slice(owner, items, slots, deadline)
            except Exception:  # defensive: never poison the batch
                for index, sub, perm, _canon in items:
                    if slots[index] is None:
                        slots[index] = json.loads(
                            self._degraded_response(sub, perm, "router_error")
                        )

        if len(groups) > 1:
            # Scatter: one thread per slice, gathered with a bound that
            # covers a full failover walk.
            budget = self.config.forward_timeout * (
                self.config.forward_attempts + 1
            )
            executor = ThreadPoolExecutor(
                max_workers=len(groups), thread_name_prefix="repro-scatter"
            )
            try:
                futures = [
                    executor.submit(run_slice, owner, items)
                    for owner, items in groups.items()
                ]
                for future in futures:
                    try:
                        future.result(timeout=budget)
                    except _FutureTimeout:  # pragma: no cover - wedged peer
                        pass
            finally:
                executor.shutdown(wait=False)
        elif groups:
            owner, items = next(iter(groups.items()))
            run_slice(owner, items)
        for index, sub, perm, _canon in parsed:
            if slots[index] is None:  # pragma: no cover - wedged peer
                slots[index] = json.loads(
                    self._degraded_response(sub, perm, "router_timeout")
                )
        return protocol.encode_response(
            request.id, result={"count": len(slots), "results": slots}
        )

    def _forward_slice(
        self, owner, items, slots, deadline: "Deadline | None"
    ) -> None:
        """Forward one owner's slice as a shard-side ``batch``; on any
        failure, re-route the members individually."""
        managed = (
            self.supervisor.get(owner) if owner is not None else None
        )
        work = self.tasks.create(
            "slice", payload=owner or "unrouted", deadline=deadline
        )
        work.start()
        if managed is not None and self.faults is not None:
            if self.faults.kill_shard(managed.backend):
                self.metrics.counter("fault_shard_kills").inc()
            if self.faults.partition_shard(managed.shard_id):
                self.metrics.counter("fault_shard_partitions").inc()
                self.supervisor.note_failure(managed.shard_id)
                managed = None
        envelope = None
        if managed is not None and managed.routable:
            payload = {
                "id": None,
                "op": "batch",
                "requests": [
                    self._forward_payload(sub, deadline)
                    for _index, sub, _perm, _canon in items
                ],
            }
            managed.begin_request(work.token)
            try:
                envelope = managed.backend.call(
                    payload, timeout=self._forward_wait(deadline)
                )
            except ServiceError:
                self.metrics.counter("forward_failures").inc()
                self.supervisor.note_failure(managed.shard_id)
                envelope = None
            finally:
                managed.end_request(work.token)
        if envelope is not None and envelope.get("ok"):
            results = (envelope.get("result") or {}).get("results") or []
            if len(results) == len(items):
                for (index, _sub, _perm, _canon), sub_env in zip(
                    items, results
                ):
                    slots[index] = sub_env
                self._finish(work, owner)
                self.metrics.counter("slices_forwarded").inc()
                return
        # The slice failed: dead/partitioned owner, drain race, or a
        # malformed reply.  Each member re-routes through the normal
        # preference walk -- exact answers from the survivors, degraded
        # only as the last resort.  The batch never loses a request.
        if work.token.cancelled:
            if not work.finished:
                work.mark_cancelled()
        elif not work.finished:
            work.degrade()
        self.metrics.counter("slices_rerouted").inc()
        for index, sub, perm, canon in items:
            slots[index] = json.loads(
                self._route_work(sub, perm, deadline, canon=canon)
            )

    # ------------------------------------------------------------------
    # Shard membership ops
    # ------------------------------------------------------------------
    def _shard_join(self, request: "protocol.Request") -> str:
        if self._spawner is None:
            return self._error_response(
                request.id,
                ProtocolError(
                    "this router has no shard spawner; shard_join needs a "
                    "cluster-managed router (repro serve --shards N)"
                ),
            )
        shard_id = request.options.get("shard")
        if shard_id is None:
            shard_id = self._fresh_shard_id()
        elif not isinstance(shard_id, str) or not shard_id:
            return self._error_response(
                request.id,
                ProtocolError("shard_join 'shard' must be a non-empty string"),
            )
        try:
            backend = self._spawner(shard_id)
            managed = self.supervisor.add(backend)
        except ServiceError as exc:
            return self._error_response(request.id, exc)
        self.metrics.counter("shard_joins").inc()
        return protocol.encode_response(
            request.id,
            result={
                "shard": shard_id,
                "state": managed.state,
                "epoch": self.ring.epoch,
                "members": list(self.ring.members),
            },
        )

    def _fresh_shard_id(self) -> str:
        while True:
            candidate = f"shard-{self._next_shard_index}"
            self._next_shard_index += 1
            existing = self.supervisor.get(candidate)
            if existing is None or existing.state == LEFT:
                return candidate

    def _shard_leave(self, request: "protocol.Request") -> str:
        shard_id = request.options.get("shard")
        try:
            summary = self.supervisor.drain(shard_id)
        except ServiceError as exc:
            return self._error_response(request.id, exc)
        self.metrics.counter("shard_leaves").inc()
        summary["members"] = list(self.ring.members)
        return protocol.encode_response(request.id, result=summary)

    # ------------------------------------------------------------------
    # Rollups
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Cluster-wide resilience rollup.

        Probes every shard synchronously first, so a crash that
        happened between probe ticks is already reflected in the answer
        (and the probe itself triggers eviction/restart).  ``status``
        is the worst surviving guarantee: ``ok`` only when every
        non-left shard is up and itself reports ``ok``.
        """
        self.supervisor.probe_all()
        snap = self.supervisor.snapshot()
        active = [s for s in snap["shards"] if s["state"] != LEFT]
        if self.stopping:
            status = "stopping"
        elif not snap["members"]:
            status = "degraded"
        elif any(s["state"] != UP for s in active):
            status = "degraded"
        elif any(s["health"] != "ok" for s in active):
            status = "degraded"
        else:
            status = "ok"
        body = {
            "status": status,
            "version": __version__,
            "router": True,
            "epoch": snap["epoch"],
            "members": snap["members"],
            "restarts": snap["restarts"],
            "shards": snap["shards"],
            "tasks": self.tasks.snapshot(),
        }
        if self.faults is not None:
            body["faults"] = self.faults.snapshot()
        return body

    def stats(self) -> dict:
        """Router config/metrics plus a best-effort per-shard stats pull."""
        per_shard: "dict[str, dict | None]" = {}
        for managed in self.supervisor.shards():
            if not managed.routable:
                per_shard[managed.shard_id] = None
                continue
            try:
                envelope = managed.backend.call(
                    {"id": "stats", "op": "stats"},
                    timeout=self.config.probe_timeout,
                )
                per_shard[managed.shard_id] = (
                    envelope.get("result") if envelope.get("ok") else None
                )
            except ServiceError:
                per_shard[managed.shard_id] = None
        return {
            "version": __version__,
            "uptime": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else None
            ),
            "router": {
                "epoch": self.ring.epoch,
                "members": list(self.ring.members),
                "restarts": self.supervisor.total_restarts,
                "n_wires": self.n_wires,
                "forward_attempts": self.config.forward_attempts,
                "forward_timeout": self.config.forward_timeout,
            },
            "metrics": self.metrics.snapshot(),
            "tasks": self.tasks.snapshot(),
            "shards": per_shard,
        }

    def shards_status(self) -> dict:
        """The ``shards`` op payload: membership without fresh probes."""
        snap = self.supervisor.snapshot()
        snap["stopping"] = self.stopping
        return snap

    # ------------------------------------------------------------------
    # Degraded answers (no shard could answer)
    # ------------------------------------------------------------------
    def _fallback_engine(self):
        with self._fallback_lock:
            if self._fallback is None:
                self._fallback = create_engine(
                    self._fallback_name, n_wires=self.n_wires
                )
            return self._fallback

    def _degraded_response(
        self, request: "protocol.Request", perm: Permutation, reason: str
    ) -> str:
        if request.op == "compile":
            return self._degraded_compile(request, reason)
        try:
            engine = self._fallback_engine()
            with self._fallback_lock:
                result = engine.synthesize(
                    SynthesisRequest(spec=perm, n_wires=self.n_wires)
                )
        except Exception as exc:  # pragma: no cover - fallback broke
            return self._error_response(request.id, exc)
        self.metrics.counter("responses_ok").inc()
        self.metrics.counter("responses_degraded").inc()
        self.metrics.counter(f"degraded_{reason}").inc()
        body = {
            "spec": perm.spec(),
            "word": protocol.word_to_hex(perm.word),
            "size": result.size,
            "source": "degraded",
            "guarantee": GUARANTEE_UPPER_BOUND,
            "degraded_reason": reason,
            "tier": self._fallback_name,
        }
        if request.op == "synth":
            body["circuit"] = result.circuit
            body["depth"] = result.depth
            body["cost"] = result.cost
        return protocol.encode_response(request.id, result=body)

    def _degraded_compile(
        self, request: "protocol.Request", reason: str
    ) -> str:
        """No shard could compile: run the generic compile path against
        the in-process fallback engine (no database needed)."""
        try:
            spec = spec_from_wire(request.spec)
            engine = self._fallback_engine()
            with self._fallback_lock:
                result = compile_spec(spec, engine, n_wires=self.n_wires)
        except Exception as exc:  # pragma: no cover - fallback broke
            return self._error_response(request.id, exc)
        self.metrics.counter("responses_ok").inc()
        self.metrics.counter("responses_degraded").inc()
        self.metrics.counter(f"degraded_{reason}").inc()
        body = result.to_wire()
        body["source"] = "degraded"
        body["guarantee"] = GUARANTEE_UPPER_BOUND
        body["degraded_reason"] = reason
        body["tier"] = self._fallback_name
        return protocol.encode_response(request.id, result=body)

    # ------------------------------------------------------------------
    # Response shaping helpers
    # ------------------------------------------------------------------
    def _error_envelope_for(self, entry, exc: BaseException) -> dict:
        request_id = entry.get("id") if isinstance(entry, dict) else None
        return json.loads(
            protocol.encode_response(
                request_id, error=protocol.error_envelope(exc)
            )
        )

    def _error_response(self, request_id, exc: BaseException) -> str:
        self.metrics.counter("responses_error").inc()
        return protocol.encode_response(
            request_id, error=protocol.error_envelope(exc)
        )

    @staticmethod
    def _finish(work, value) -> None:
        try:
            if not work.finished:
                work.finish(value)
        except ServiceError:  # lost a race against force-cancel
            pass


__all__ = ["ShardRouter"]
