"""Shard supervision: health probes, failover, restarts, drain/leave.

The :class:`ShardSupervisor` owns the cluster's membership truth.  It
probes every shard over the existing ``health`` op, walks each through
the lifecycle state machine (``joining -> up <-> suspect -> dead``,
plus ``draining -> left`` for live leaves), evicts dead shards from the
hash ring (bumping the routing epoch, which re-routes their keyspace to
the survivors), and restarts crashed backends up to
``ShardingConfig.max_restarts`` times.

Fault isolation is the contract: one dead, wedged, or breaker-open
shard changes *its* slice's latency/affinity, never the cluster's
ability to answer.  Because every shard maps the complete ``.rdb``
store, re-routing during the outage yields exact answers -- the
degraded (upper-bound) path only runs when no live shard remains.

In-flight accounting rides :class:`repro.service.tasks.CancelToken`:
the router registers each forward's token with the target
:class:`ManagedShard`; a drain waits (bounded) for those tokens to
clear and cancels stragglers with reason ``shard_leave``, which the
router observes at its next checkpoint and re-routes.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import ServiceError
from repro.service.sharding.config import ShardingConfig
from repro.service.sharding.ring import HashRing
from repro.service.sharding.shard import (
    DEAD,
    DRAINING,
    JOINING,
    LEFT,
    ROUTABLE_STATES,
    SUSPECT,
    UP,
)


class ManagedShard:
    """Supervisor-side record of one shard: backend + lifecycle state."""

    def __init__(self, backend, clock=time.monotonic) -> None:
        self.backend = backend
        self.shard_id: str = backend.shard_id
        self.state: str = JOINING
        self.misses = 0
        self.probes = 0
        self.restarts = 0
        self.last_health: "dict | None" = None
        self._clock = clock
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._tokens: set = set()
        self._events: deque = deque(maxlen=32)

    @property
    def routable(self) -> bool:
        return self.state in ROUTABLE_STATES

    def record(self, event: str, **info) -> None:
        with self._lock:
            self._events.append(
                {"event": event, "at": round(self._clock(), 3), **info}
            )

    # ------------------------------------------------------------------
    # In-flight accounting (the router brackets every forward with these)
    # ------------------------------------------------------------------
    def begin_request(self, token) -> None:
        with self._lock:
            self._tokens.add(token)

    def end_request(self, token) -> None:
        with self._lock:
            self._tokens.discard(token)
            if not self._tokens:
                self._idle.notify_all()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._tokens)

    def wait_idle(self, timeout: float) -> bool:
        """Bounded wait until no forwards are in flight on this shard."""
        deadline = self._clock() + timeout
        with self._idle:
            while self._tokens:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=min(remaining, 0.5))
            return True

    def cancel_in_flight(self, reason: str) -> int:
        """Cancel every in-flight forward's token; returns how many."""
        with self._lock:
            tokens = list(self._tokens)
        for token in tokens:
            token.cancel(reason)
        return len(tokens)

    def snapshot(self) -> dict:
        """JSON-ready per-shard rollup for ``health``/``shards``."""
        health = self.last_health or {}
        with self._lock:
            events = list(self._events)
        return {
            "shard": self.shard_id,
            "state": self.state,
            "misses": self.misses,
            "probes": self.probes,
            "restarts": self.restarts,
            "in_flight": self.in_flight,
            "health": health.get("status"),
            "breaker": (health.get("breaker") or {}).get("state"),
            "tasks": health.get("tasks"),
            "backend": self.backend.describe(),
            "events": events,
        }


class ShardSupervisor:
    """Health-checks shards, evicts and restarts the dead, drains leavers.

    Probing runs on a background thread started by :meth:`start`;
    :meth:`probe_all` is also callable synchronously (the router does
    this when answering ``health``, so a crash that happened between
    ticks is visible to the caller asking right now, and the chaos
    tests drive the state machine deterministically without clocks).
    """

    def __init__(
        self,
        ring: "HashRing | None" = None,
        config: "ShardingConfig | None" = None,
        *,
        clock=time.monotonic,
    ) -> None:
        self.ring = ring if ring is not None else HashRing()
        self.config = config or ShardingConfig()
        self._clock = clock
        self._shards: "dict[str, ManagedShard]" = {}
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._stopped = False
        self.total_restarts = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add(self, backend, *, probe: bool = True) -> ManagedShard:
        """Register a shard (state ``joining``); an immediate successful
        probe promotes it to ``up`` and into the ring."""
        managed = ManagedShard(backend, clock=self._clock)
        with self._lock:
            existing = self._shards.get(managed.shard_id)
            if existing is not None and existing.state != LEFT:
                raise ServiceError(
                    f"shard id {managed.shard_id!r} is already registered"
                )
            self._shards[managed.shard_id] = managed
        managed.record("join")
        if probe:
            self.probe(managed)
        return managed

    def get(self, shard_id: str) -> "ManagedShard | None":
        with self._lock:
            return self._shards.get(shard_id)

    def shards(self) -> "list[ManagedShard]":
        with self._lock:
            return list(self._shards.values())

    # ------------------------------------------------------------------
    # Probing and the state machine
    # ------------------------------------------------------------------
    def start(self) -> "ShardSupervisor":
        with self._lock:
            if self._thread is not None:
                return self
            self._stopped = False
            self._thread = threading.Thread(
                target=self._probe_loop,
                name="repro-shard-supervisor",
                daemon=True,
            )
            self._thread.start()
        return self

    def _probe_loop(self) -> None:
        while True:
            self._wake.wait(timeout=self.config.probe_interval)
            self._wake.clear()
            if self._stopped:
                return
            self.probe_all()

    def probe_all(self) -> None:
        """One synchronous probe cycle over every supervisable shard."""
        for managed in self.shards():
            if managed.state in (DRAINING, LEFT):
                continue
            self.probe(managed)

    def probe(self, managed: ManagedShard) -> bool:
        """One ``health`` probe; True when the shard answered ok."""
        managed.probes += 1
        envelope = None
        if managed.backend.alive():
            try:
                envelope = managed.backend.call(
                    {"id": "probe", "op": "health"},
                    timeout=self.config.probe_timeout,
                )
            except ServiceError:
                envelope = None
        if envelope is not None and envelope.get("ok"):
            managed.last_health = envelope.get("result", {})
            managed.misses = 0
            if managed.state in (JOINING, SUSPECT, DEAD):
                self._mark_up(managed)
            return True
        self._note_miss(managed)
        return False

    def note_failure(self, shard_id: str) -> None:
        """Router-reported transport failure: counts like a missed probe
        and wakes the probe loop for fast confirmation."""
        managed = self.get(shard_id)
        if managed is None or managed.state in (DRAINING, LEFT):
            return
        self._note_miss(managed)
        self._wake.set()

    def _note_miss(self, managed: ManagedShard) -> None:
        managed.misses += 1
        gone = (
            managed.misses >= self.config.dead_after
            or not managed.backend.alive()
        )
        if gone:
            if managed.state != DEAD:
                self._mark_dead(managed)
            elif (
                managed.backend.restartable
                and managed.restarts < self.config.max_restarts
            ):
                # Still dead on a later probe with restart budget left
                # (e.g. the previous restart attempt failed).
                self.restart(managed)
        elif (
            managed.state == UP
            and managed.misses >= self.config.suspect_after
        ):
            managed.state = SUSPECT
            managed.record("suspect", misses=managed.misses)

    def _mark_up(self, managed: ManagedShard) -> None:
        previous = managed.state
        managed.state = UP
        self.ring.add(managed.shard_id)
        managed.record("up", previous=previous, epoch=self.ring.epoch)

    def _mark_dead(self, managed: ManagedShard) -> None:
        managed.state = DEAD
        self.ring.remove(managed.shard_id)
        managed.record("dead", misses=managed.misses, epoch=self.ring.epoch)
        # Its keyspace now re-routes via the ring (exact answers -- every
        # shard maps the full store); forwards still waiting on the dead
        # peer are preempted rather than left to burn their timeout.
        managed.cancel_in_flight("shard_dead")
        if (
            managed.backend.restartable
            and managed.restarts < self.config.max_restarts
        ):
            self.restart(managed)

    def restart(self, managed: ManagedShard) -> bool:
        """Respawn a dead shard's backend and re-probe it."""
        managed.restarts += 1
        with self._lock:
            self.total_restarts += 1
        try:
            managed.backend.restart()
        except ServiceError as exc:
            managed.record("restart_failed", error=str(exc))
            return False
        managed.state = JOINING
        managed.misses = 0
        managed.record(
            "restarted",
            generation=getattr(managed.backend, "generation", None),
        )
        return self.probe(managed)

    # ------------------------------------------------------------------
    # Live leave
    # ------------------------------------------------------------------
    def drain(self, shard_id: str, *, timeout: "float | None" = None) -> dict:
        """Remove a shard from routing, let in-flight work finish, stop it.

        New requests stop routing to the shard the moment it leaves the
        ring (epoch bump).  In-flight forwards get ``drain_timeout``
        seconds to complete; stragglers are cancelled through their
        :mod:`repro.service.tasks` tokens with reason ``shard_leave``,
        which the router observes and re-routes.  The backend is then
        shut down gracefully and the shard parks in ``left``.
        """
        managed = self.get(shard_id)
        if managed is None:
            raise ServiceError(f"unknown shard {shard_id!r}")
        if managed.state == LEFT:
            return {
                "shard": shard_id,
                "drained": True,
                "cancelled": 0,
                "epoch": self.ring.epoch,
            }
        budget = timeout if timeout is not None else self.config.drain_timeout
        managed.state = DRAINING
        self.ring.remove(shard_id)
        managed.record("draining", epoch=self.ring.epoch)
        completed = managed.wait_idle(budget)
        cancelled = 0
        if not completed:
            cancelled = managed.cancel_in_flight("shard_leave")
            # Give the cancelled forwards a moment to unwind before the
            # backend goes away under them.
            managed.wait_idle(1.0)
        try:
            managed.backend.stop()
        except ServiceError:  # pragma: no cover - peer died mid-drain
            pass
        managed.state = LEFT
        managed.record("left", cancelled=cancelled, epoch=self.ring.epoch)
        return {
            "shard": shard_id,
            "drained": completed,
            "cancelled": cancelled,
            "epoch": self.ring.epoch,
        }

    # ------------------------------------------------------------------
    # Rollup and shutdown
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready cluster membership state."""
        return {
            "epoch": self.ring.epoch,
            "members": list(self.ring.members),
            "restarts": self.total_restarts,
            "shards": [managed.snapshot() for managed in self.shards()],
        }

    def close(self, *, stop_shards: bool = True) -> None:
        """Stop the probe thread and (by default) every shard backend."""
        with self._lock:
            self._stopped = True
            thread, self._thread = self._thread, None
        self._wake.set()
        if thread is not None:
            thread.join(timeout=5.0)
        if not stop_shards:
            return
        for managed in self.shards():
            if managed.state == LEFT:
                continue
            try:
                managed.backend.stop()
            except ServiceError:  # pragma: no cover - already gone
                pass
            managed.state = LEFT
            managed.record("left", cancelled=0, epoch=self.ring.epoch)


__all__ = ["ManagedShard", "ShardSupervisor"]
