"""Shard backends and the shard lifecycle states.

A *shard* is one complete synthesis daemon -- its own dispatcher,
result-cache partition, worker pool, breaker, and supervisor -- mapping
the shared read-only ``.rdb`` store.  The router talks to shards through
a small backend duck type:

* ``shard_id``                   -- stable identity (the ring member).
* ``call(payload, timeout)``     -- one request dict in, one decoded
                                    response envelope out; raises the
                                    :class:`repro.errors.ServiceError`
                                    family on transport failure.
* ``alive()``                    -- process-level liveness.
* ``kill()`` / ``restart()`` / ``stop()`` -- crash, respawn, drain.
* ``describe()``                 -- JSON-ready identity for rollups.

Two implementations: :class:`ProcessShard` (a real ``repro serve``
subprocess reached over TCP -- SIGKILL-able, restartable; what
``repro serve --shards N`` runs) and :class:`InProcessShard` (wraps a
:class:`repro.service.daemon.SynthesisService` in this process -- what
the unit tests and in-process bench ops use, with ``kill`` simulating a
crash by making every call fail like a dead TCP peer).

Lifecycle states (driven by the
:class:`repro.service.sharding.supervisor.ShardSupervisor`)::

    joining --> up <--> suspect --> dead --> joining   (restart)
                 \\
                  +--> draining --> left               (live leave)
"""

from __future__ import annotations

import json
import queue
import re
import subprocess
import threading
import time

from repro.errors import ServiceConnectError, ServiceError
from repro.service.client import ServiceClient

#: Shard lifecycle states.
JOINING = "joining"
UP = "up"
SUSPECT = "suspect"
DEAD = "dead"
DRAINING = "draining"
LEFT = "left"

SHARD_STATES = (JOINING, UP, SUSPECT, DEAD, DRAINING, LEFT)

#: States in which the router may send new work to a shard.  A suspect
#: shard (one missed probe) stays routable -- a transient blip should
#: not re-route its slice -- but transport failures walk the preference
#: list anyway, so nothing waits on it if it is really gone.
ROUTABLE_STATES = frozenset({UP, SUSPECT})

#: The ready line ``repro serve`` prints once its listener is bound.
_READY_RE = re.compile(r"listening on ([0-9.]+):(\d+)")


class InProcessShard:
    """A shard backed by an in-process :class:`SynthesisService`.

    ``call`` round-trips JSON through ``handle_line`` -- the identical
    code path a TCP peer exercises, minus the socket.  ``kill`` marks
    the backend broken so calls raise :class:`ServiceConnectError`
    exactly like a connection to a SIGKILLed process would; ``restart``
    clears the flag (the warm service stands in for a respawn).
    """

    restartable = True

    def __init__(self, shard_id: str, service) -> None:
        self.shard_id = shard_id
        self.service = service
        self.generation = 1
        self._broken = False

    def start(self) -> "InProcessShard":
        self.service.start()
        return self

    def alive(self) -> bool:
        return not self._broken and not self.service.stopped

    def call(self, payload: dict, timeout: "float | None" = None) -> dict:
        if not self.alive():
            raise ServiceConnectError(
                f"shard {self.shard_id} is down (simulated crash)"
            )
        return json.loads(self.service.handle_line(json.dumps(payload)))

    def kill(self) -> None:
        self._broken = True

    def restart(self) -> None:
        self._broken = False
        self.generation += 1

    def stop(self, timeout: float = 10.0) -> None:
        self._broken = True
        self.service.shutdown()

    def describe(self) -> dict:
        return {
            "kind": "in-process",
            "generation": self.generation,
            "alive": self.alive(),
        }


class ProcessShard:
    """A shard backed by a ``repro serve`` subprocess reached over TCP.

    The command must print the daemon's ready line (``... listening on
    HOST:PORT ...``) on stdout; binding ``--port 0`` makes every
    (re)start pick a fresh ephemeral port, so a restarted shard never
    races a half-dead predecessor for its listener.

    Connections are pooled per thread and per *generation*: a restart
    bumps the generation, so every pooled connection to the dead
    process is discarded instead of feeding requests to a ghost.
    """

    restartable = True

    def __init__(
        self,
        shard_id: str,
        command: "list[str]",
        *,
        env: "dict | None" = None,
        ready_timeout: float = 120.0,
        connect_timeout: float = 5.0,
    ) -> None:
        self.shard_id = shard_id
        self.command = list(command)
        self.env = dict(env) if env is not None else None
        self.ready_timeout = ready_timeout
        self.connect_timeout = connect_timeout
        self.host: "str | None" = None
        self.port: "int | None" = None
        self.generation = 0
        self._proc: "subprocess.Popen | None" = None
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ProcessShard":
        if self.alive():
            return self
        self._proc = subprocess.Popen(
            self.command,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self.env,
            text=True,
        )
        lines: "queue.Queue[str]" = queue.Queue()
        threading.Thread(
            target=self._pump_stdout,
            args=(self._proc.stdout, lines),
            name=f"repro-shard-{self.shard_id}-stdout",
            daemon=True,
        ).start()
        self.host, self.port = self._await_ready(lines)
        self.generation += 1
        return self

    @staticmethod
    def _pump_stdout(stream, lines: "queue.Queue[str]") -> None:
        # Runs for the life of the child: after the ready line is
        # consumed it keeps draining so a chatty daemon can never fill
        # the pipe and wedge itself.
        for line in stream:
            lines.put(line)

    def _await_ready(self, lines: "queue.Queue[str]") -> "tuple[str, int]":
        deadline = time.monotonic() + self.ready_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise ServiceError(
                    f"shard {self.shard_id} did not report ready within "
                    f"{self.ready_timeout}s"
                )
            try:
                line = lines.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                if self._proc.poll() is not None:
                    raise ServiceError(
                        f"shard {self.shard_id} exited with code "
                        f"{self._proc.returncode} before reporting ready"
                    ) from None
                continue
            match = _READY_RE.search(line)
            if match:
                return match.group(1), int(match.group(2))

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def kill(self) -> None:
        """SIGKILL the shard process (the chaos primitive)."""
        if self._proc is None:
            return
        if self._proc.poll() is None:
            self._proc.kill()
        try:
            self._proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass

    def restart(self) -> None:
        """Hard-replace the process: kill what is left, spawn fresh."""
        self.kill()
        self.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful: ask the daemon to drain, then wait; kill stragglers."""
        if self._proc is None:
            return
        if self._proc.poll() is None:
            try:
                client = ServiceClient(
                    self.host, self.port, timeout=self.connect_timeout
                )
                try:
                    client.request_raw({"id": 0, "op": "shutdown"})
                finally:
                    client.close()
            except ServiceError:
                pass
            try:
                self._proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.kill()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _client(self) -> ServiceClient:
        entry = getattr(self._local, "entry", None)
        if entry is not None and entry[0] == self.generation:
            return entry[1]
        if entry is not None:
            entry[1].close()
        client = ServiceClient(
            self.host, self.port, connect_timeout=self.connect_timeout
        )
        self._local.entry = (self.generation, client)
        return client

    def call(self, payload: dict, timeout: "float | None" = None) -> dict:
        if self.port is None:
            raise ServiceConnectError(
                f"shard {self.shard_id} was never started"
            )
        client = self._client()
        if timeout is not None:
            client.set_read_timeout(timeout)
        return client.request_raw(payload)

    def describe(self) -> dict:
        alive = self.alive()
        return {
            "kind": "process",
            "pid": self._proc.pid if alive else None,
            "address": (
                f"{self.host}:{self.port}" if self.port is not None else None
            ),
            "generation": self.generation,
            "alive": alive,
        }


__all__ = [
    "DEAD",
    "DRAINING",
    "JOINING",
    "LEFT",
    "ROUTABLE_STATES",
    "SHARD_STATES",
    "SUSPECT",
    "UP",
    "InProcessShard",
    "ProcessShard",
]
