"""Rendezvous (highest-random-weight) routing over the canonical keyspace.

Each request is routed by the *canonical representative* of its
specification (the Section 3.2 symmetry key), so all <= 48 members of an
equivalence class land on the same shard and share one result-cache
partition.  Rendezvous hashing gives the two properties the cluster
needs with no virtual-node bookkeeping:

* **Balance** -- each of N shards owns ~1/N of the keyspace, because
  the per-(key, member) scores are independent 64-bit hashes.
* **Minimal disruption** -- removing a member re-routes only the keys
  it owned; adding one steals ~1/(N+1) of each survivor's slice.
  Nothing else moves, which is what makes live join/leave cheap.

Ownership is an *affinity*, not a capability: every shard maps the same
complete read-only ``.rdb`` store (shared physical pages, see
``docs/DATABASE.md``), so any shard can answer any query exactly.
Failover re-routing therefore returns exact answers; degraded
(upper-bound) answers happen only when no live shard is reachable.

The scores mix :func:`repro.hashing.wang.hash64shift` -- the same
Thomas Wang finalizer the database's hash table uses (Table 2) -- over
the key and a per-member seed derived from the shard id, so routing is
deterministic across processes and runs (no ``PYTHONHASHSEED``
dependence).

Every membership change bumps the ring *epoch*; the router surfaces it
in ``health``/``stats``/``shards`` rollups so operators (and the chaos
tests) can see exactly when the routing table moved.
"""

from __future__ import annotations

import hashlib
import threading

from repro.hashing.wang import MASK64, hash64shift

#: Odd multiplicative constant (2^64 / golden ratio) spreading the key
#: before the Wang finalizer; keys are canonical representatives, which
#: are far from uniform in the low bits.
_SPREAD = 0x9E3779B97F4A7C15


def member_seed(member: str) -> int:
    """A stable 64-bit seed for a member id.

    Uses blake2b rather than ``hash()`` so routing is identical in
    every process regardless of interpreter hash randomization.
    """
    digest = hashlib.blake2b(member.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def rendezvous_score(key: int, seed: int) -> int:
    """The HRW weight of ``key`` on the member with ``seed``."""
    return hash64shift((key * _SPREAD ^ seed) & MASK64)


class HashRing:
    """Thread-safe rendezvous-hash routing table with an epoch counter.

    Members are shard ids (strings).  ``owner(key)`` is the member with
    the highest rendezvous score for the key; ``preference(key)`` ranks
    every member by descending score (ties broken by id), which is the
    failover order the router walks when the owner is unreachable.
    """

    def __init__(self, members=()) -> None:
        self._lock = threading.Lock()
        self._seeds: "dict[str, int]" = {}
        self._epoch = 0
        for member in members:
            self.add(member)

    @property
    def epoch(self) -> int:
        """Bumped on every successful add/remove."""
        with self._lock:
            return self._epoch

    @property
    def members(self) -> "tuple[str, ...]":
        with self._lock:
            return tuple(sorted(self._seeds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._seeds)

    def __contains__(self, member: str) -> bool:
        with self._lock:
            return member in self._seeds

    def add(self, member: str) -> bool:
        """Add a member; True when the ring changed (epoch bumped)."""
        with self._lock:
            if member in self._seeds:
                return False
            self._seeds[member] = member_seed(member)
            self._epoch += 1
            return True

    def remove(self, member: str) -> bool:
        """Remove a member; True when the ring changed (epoch bumped)."""
        with self._lock:
            if member not in self._seeds:
                return False
            del self._seeds[member]
            self._epoch += 1
            return True

    def owner(self, key: int) -> "str | None":
        """The member owning ``key`` (None on an empty ring)."""
        with self._lock:
            best = None
            best_score = -1
            for member, seed in self._seeds.items():
                score = rendezvous_score(key, seed)
                if score > best_score or (
                    score == best_score and (best is None or member < best)
                ):
                    best, best_score = member, score
            return best

    def preference(self, key: int) -> "list[str]":
        """All members ranked by descending score: the failover order."""
        with self._lock:
            items = list(self._seeds.items())
        ranked = sorted(
            items,
            key=lambda item: (-rendezvous_score(key, item[1]), item[0]),
        )
        return [member for member, _ in ranked]

    def spread(self, keys) -> "dict[str, int]":
        """How many of ``keys`` each member owns (balance diagnostics)."""
        counts: "dict[str, int]" = {member: 0 for member in self.members}
        for key in keys:
            owner = self.owner(int(key))
            if owner is not None:
                counts[owner] += 1
        return counts


__all__ = ["HashRing", "member_seed", "rendezvous_score"]
