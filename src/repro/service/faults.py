"""Deterministic fault injection for the synthesis service.

Chaos testing only earns its keep when every recovery path can be
driven on purpose.  A :class:`FaultPlan` is a finite list of
:class:`FaultSpec` entries -- no randomness, no clocks -- wired in via
``ServiceConfig.extra["fault_plan"]``; the daemon consults its
:class:`FaultInjector` at fixed injection points ("stages") and each
armed spec fires a bounded number of ``times`` before disarming.

Supported fault kinds and the stage each fires at:

===================  ============  =============================================
kind                 stage         effect
===================  ============  =============================================
``delay``            request       sleep ``delay`` seconds on the connection
                                   thread before enqueueing (burns the
                                   request's ``deadline_ms`` budget)
``drop_connection``  response      the TCP handler closes the connection
                                   instead of writing the response
``kill_worker``      hard          SIGKILL every live hard-pool worker right
                                   after a batch is dispatched to the pool
``corrupt_cache``    cache_save    garble the persisted result-cache file
                                   after a successful save (simulates a torn
                                   write for the next load)
``kill_shard``       shard_kill    the shard router SIGKILLs the target
                                   shard's backend immediately before
                                   forwarding to it (a crash mid-request)
``partition_shard``  shard_partition  the router treats the target shard as
                                   unreachable for one forward (the process
                                   stays healthy -- a network partition)
===================  ============  =============================================

``delay`` specs may carry an ``op`` filter (fire only for that protocol
op); ``kill_shard``/``partition_shard`` may carry a ``shard`` filter
(fire only when routing to that shard id); the other kinds fire at
stages where neither is in scope.  Everything the injector did is
visible in ``health`` via :meth:`FaultInjector.snapshot`.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.errors import ServiceError

#: Known fault kinds and the injection stage each fires at.
FAULT_STAGES = {
    "delay": "request",
    "drop_connection": "response",
    "kill_worker": "hard",
    "corrupt_cache": "cache_save",
    "kill_shard": "shard_kill",
    "partition_shard": "shard_partition",
}

#: Kinds that may carry a ``shard`` filter (fire only for that shard id).
_SHARD_KINDS = ("kill_shard", "partition_shard")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what to do, where, and how many times."""

    kind: str
    times: int = 1
    delay: float = 0.0
    op: "str | None" = None
    shard: "str | None" = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_STAGES:
            raise ServiceError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(sorted(FAULT_STAGES))})"
            )
        if self.times < 1:
            raise ServiceError(f"fault times must be >= 1, got {self.times}")
        if self.kind == "delay" and self.delay <= 0:
            raise ServiceError("delay faults need a positive 'delay' seconds")
        if self.op is not None and self.kind != "delay":
            raise ServiceError(
                f"'op' filter is only supported for delay faults, "
                f"not {self.kind!r}"
            )
        if self.shard is not None and self.kind not in _SHARD_KINDS:
            raise ServiceError(
                f"'shard' filter is only supported for "
                f"{' / '.join(_SHARD_KINDS)} faults, not {self.kind!r}"
            )

    @property
    def stage(self) -> str:
        return FAULT_STAGES[self.kind]


class FaultPlan:
    """An ordered, finite list of faults to inject."""

    def __init__(self, specs: "list[FaultSpec]") -> None:
        self.specs = list(specs)

    @classmethod
    def from_dicts(cls, raw) -> "FaultPlan":
        """Validate ``extra["fault_plan"]`` (a list of plain dicts)."""
        if not isinstance(raw, (list, tuple)):
            raise ServiceError(
                "fault_plan must be a list of fault dicts, "
                f"got {type(raw).__name__}"
            )
        specs = []
        allowed = {"kind", "times", "delay", "op", "shard"}
        for entry in raw:
            if not isinstance(entry, dict):
                raise ServiceError(
                    f"fault_plan entries must be dicts, got {entry!r}"
                )
            unknown = sorted(set(entry) - allowed)
            if unknown:
                raise ServiceError(
                    f"unknown fault field(s): {', '.join(unknown)} "
                    f"(valid: {', '.join(sorted(allowed))})"
                )
            specs.append(FaultSpec(**entry))
        return cls(specs)


class FaultInjector:
    """Arms a :class:`FaultPlan` and fires matching specs at each stage.

    Thread-safe: specs are taken (and their remaining count decremented)
    under a lock, so a fault planned ``times: 1`` fires exactly once even
    under concurrent connections.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._lock = threading.Lock()
        self._armed = [[spec, spec.times] for spec in plan.specs]
        self._fired: dict[str, int] = {}

    @classmethod
    def from_extra(cls, extra: "dict | None") -> "FaultInjector | None":
        """The injector for ``ServiceConfig.extra`` (None when no plan)."""
        raw = (extra or {}).get("fault_plan")
        if not raw:
            return None
        return cls(FaultPlan.from_dicts(raw))

    def _take(
        self,
        stage: str,
        op: "str | None" = None,
        shard: "str | None" = None,
    ) -> "FaultSpec | None":
        """First armed spec matching ``stage`` (and filters), consumed."""
        with self._lock:
            for slot in self._armed:
                spec, remaining = slot
                if remaining < 1 or spec.stage != stage:
                    continue
                if spec.op is not None and spec.op != op:
                    continue
                if spec.shard is not None and spec.shard != shard:
                    continue
                slot[1] = remaining - 1
                self._fired[spec.kind] = self._fired.get(spec.kind, 0) + 1
                return spec
        return None

    # ------------------------------------------------------------------
    # Injection points (called by the daemon / supervisor / transports)
    # ------------------------------------------------------------------
    def delay_request(self, op: str) -> float:
        """Stage ``request``: sleep on the connection thread; returns the
        seconds slept (0.0 when no delay fault is armed)."""
        spec = self._take("request", op=op)
        if spec is None:
            return 0.0
        time.sleep(spec.delay)
        return spec.delay

    def should_drop_connection(self) -> bool:
        """Stage ``response``: should the transport drop instead of
        writing the response?"""
        return self._take("response") is not None

    def kill_workers(self, pool) -> int:
        """Stage ``hard``: SIGKILL every live pool worker; returns how
        many were killed (0 when unarmed or the pool is inline)."""
        if self._take("hard") is None:
            return 0
        killed = 0
        for pid in pool.worker_pids():
            try:
                os.kill(pid, signal.SIGKILL)
                killed += 1
            except OSError:  # already gone
                pass
        return killed

    def corrupt_cache_file(self, path) -> bool:
        """Stage ``cache_save``: garble the saved cache file (truncate to
        half and append garbage -- both the JSON parse and the checksum
        will reject it on the next load)."""
        if self._take("cache_save") is None or path is None:
            return False
        try:
            data = path.read_bytes()
        except OSError:
            return False
        path.write_bytes(data[: max(1, len(data) // 2)] + b"\x00garbled")
        return True

    def kill_shard(self, backend) -> bool:
        """Stage ``shard_kill``: SIGKILL the shard backend the router is
        about to forward to (crash-mid-request chaos primitive)."""
        if self._take("shard_kill", shard=backend.shard_id) is None:
            return False
        backend.kill()
        return True

    def partition_shard(self, shard_id: str) -> bool:
        """Stage ``shard_partition``: should the router treat this shard
        as unreachable for the current forward?"""
        return self._take("shard_partition", shard=shard_id) is not None

    def snapshot(self) -> dict:
        """JSON-ready injector state for ``health``."""
        with self._lock:
            armed = sum(1 for _, remaining in self._armed if remaining > 0)
            return {"armed": armed, "fired": dict(self._fired)}


__all__ = ["FAULT_STAGES", "FaultInjector", "FaultPlan", "FaultSpec"]
