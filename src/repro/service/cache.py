"""Result cache for the synthesis service, keyed by canonical class.

Every key is ``(engine, n_wires, canonical_word)``.  For the default
``optimal`` engine all (up to 48) members of an equivalence class share
one entry -- the paper's Section 3.2 symmetry applied to serving.  An
entry records what is class-invariant (the optimal size, or the proven
lower bound for out-of-reach classes) plus a small map of exact words to
their reconstructed circuit strings.  Sizes transfer across the whole
class for free; circuits are per-word because relabeling/inversion
changes the gate list, and byte-identical output to a direct
:meth:`OptimalSynthesizer.search` matters more than the few peels saved.

Other engines get their own keyspace via the ``engine`` keyword: their
answers are *not* class-invariant (the MMD heuristic's size changes
under relabeling), so the daemon keys them by exact word (``canon`` =
the word itself) and stores the serialized wire result as the circuit
string.  Keyspaces never mix: a heuristic answer can never shadow an
optimal one.

The cache is LRU over entries (all keyspaces share one LRU ring),
thread-safe, and optionally persistent: ``save()`` writes a versioned
JSON file that ``load()`` (or the constructor) replays, so a restarted
daemon starts warm.  Records without an ``engine`` field belong to
``optimal``, which keeps files from older daemons loadable.

Persistence is crash-safe: ``save()`` writes a temp file, fsyncs it,
atomically renames it over the target, and fsyncs the directory, and
the payload carries a SHA-256 checksum over the serialized entries so a
torn or bit-flipped file is *detected* rather than half-loaded.  The
constructor treats a corrupt file as survivable: it quarantines the
file (rename to ``<name>.corrupt``) and starts cold, recording what
happened for the ``health`` op.  An explicit :meth:`load` still raises,
so callers that need the strict behaviour keep it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ServiceError

log = logging.getLogger(__name__)

#: On-disk format version; bump on incompatible change.
CACHE_FORMAT_VERSION = 1

#: Size ceiling for the per-entry circuit map (class size is <= 48).
MAX_CIRCUITS_PER_ENTRY = 48


@dataclass
class CacheEntry:
    """One equivalence class worth of results.

    ``size`` is None for classes proven out of reach, in which case
    ``lower_bound``/``max_size`` record the proof context (a later query
    against a *deeper* engine must not trust a stale bound).
    """

    size: "int | None"
    lower_bound: "int | None" = None
    max_size: "int | None" = None
    circuits: dict[int, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CacheHit:
    """What the cache knows about one queried word."""

    size: "int | None"
    lower_bound: "int | None"
    circuit: "str | None"


#: Keyspace used when no engine is named (the batched optimal pipeline).
DEFAULT_ENGINE = "optimal"


class ResultCache:
    """LRU + persistent map: (engine, n_wires, canonical word) -> CacheEntry."""

    def __init__(
        self,
        capacity: int = 65536,
        path: "str | Path | None" = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path else None
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, int, int], CacheEntry]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        #: Whether the most recent :meth:`save` succeeded (None = never saved).
        self.last_save_ok: "bool | None" = None
        #: Set when the constructor quarantined a corrupt cache file.
        self.quarantined: "Path | None" = None
        self.load_error: "str | None" = None
        if self.path and self.path.exists():
            try:
                self.load(self.path)
            except ServiceError as exc:
                # A corrupt persisted cache must not take the daemon down:
                # every entry is recomputable.  Quarantine the file (so the
                # evidence survives and the next save doesn't overwrite it)
                # and start cold.
                self.quarantined = self.path.with_suffix(
                    self.path.suffix + ".corrupt"
                )
                self.load_error = str(exc)
                try:
                    self.path.replace(self.quarantined)
                except OSError:
                    self.quarantined = None
                log.warning(
                    "result cache load failed; quarantined %s and starting "
                    "cold: %s",
                    self.quarantined or self.path,
                    exc,
                )
                with self._lock:
                    self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Lookups / stores
    # ------------------------------------------------------------------
    def lookup(
        self,
        n_wires: int,
        canon: int,
        word: "int | None" = None,
        engine: str = DEFAULT_ENGINE,
    ) -> "CacheHit | None":
        """Size (and circuit for ``word``, when stored) of a class.

        Returns None on a complete miss.  Touches the entry for LRU.
        """
        key = (engine, n_wires, canon)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            circuit = entry.circuits.get(word) if word is not None else None
            return CacheHit(
                size=entry.size,
                lower_bound=entry.lower_bound,
                circuit=circuit,
            )

    def store_size(
        self, n_wires: int, canon: int, size: int, engine: str = DEFAULT_ENGINE
    ) -> None:
        """Record the optimal size of a class."""
        with self._lock:
            self._touch(n_wires, canon, engine).size = size

    def store_bound(
        self,
        n_wires: int,
        canon: int,
        lower_bound: int,
        max_size: int,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        """Record a proven lower bound for an out-of-reach class."""
        with self._lock:
            entry = self._touch(n_wires, canon, engine)
            entry.lower_bound = lower_bound
            entry.max_size = max_size

    def store_circuit(
        self,
        n_wires: int,
        canon: int,
        word: int,
        size: int,
        circuit: str,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        """Record a reconstructed circuit for one exact word of a class.

        Non-default keyspaces may store any string here -- the daemon
        uses it for the engine's full serialized wire result.
        """
        with self._lock:
            entry = self._touch(n_wires, canon, engine)
            entry.size = size
            if len(entry.circuits) < MAX_CIRCUITS_PER_ENTRY or word in entry.circuits:
                entry.circuits[word] = circuit

    def bound_for(
        self,
        n_wires: int,
        canon: int,
        engine_max_size: int,
        engine: str = DEFAULT_ENGINE,
    ) -> "int | None":
        """A cached lower bound, only if proved at >= this engine depth."""
        key = (engine, n_wires, canon)
        with self._lock:
            entry = self._entries.get(key)
            if (
                entry is None
                or entry.lower_bound is None
                or entry.max_size is None
                or entry.max_size < engine_max_size
            ):
                return None
            self._entries.move_to_end(key)
            return entry.lower_bound

    def _touch(
        self, n_wires: int, canon: int, engine: str = DEFAULT_ENGINE
    ) -> CacheEntry:
        """Get-or-create an entry, refresh LRU order, evict if over."""
        key = (engine, n_wires, canon)
        entry = self._entries.get(key)
        if entry is None:
            entry = CacheEntry(size=None)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        else:
            self._entries.move_to_end(key)
        return entry

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def hit_rate(self) -> "float | None":
        total = self.hits + self.misses
        return self.hits / total if total else None

    def stats(self) -> dict:
        with self._lock:
            circuits = sum(len(e.circuits) for e in self._entries.values())
            by_engine: dict[str, int] = {}
            for engine, _, _ in self._entries:
                by_engine[engine] = by_engine.get(engine, 0) + 1
            return {
                "entries": len(self._entries),
                "entries_by_engine": by_engine,
                "capacity": self.capacity,
                "circuits": circuits,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate(),
            }

    def health(self) -> dict:
        """JSON-ready persistence status for the ``health`` op."""
        with self._lock:
            entries = len(self._entries)
        return {
            "entries": entries,
            "persistent": self.path is not None,
            "quarantined": str(self.quarantined) if self.quarantined else None,
            "load_error": self.load_error,
            "last_save_ok": self.last_save_ok,
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: "str | Path | None" = None) -> Path:
        """Write all entries as versioned, checksummed JSON; returns the
        path used.

        Crash-safe: the payload is written to a temp file, fsynced, and
        atomically renamed over the target (followed by a best-effort
        directory fsync), so a crash mid-save leaves either the old file
        or the new one -- never a torn mix.  The SHA-256 checksum over
        the serialized entries lets :meth:`load` detect corruption that
        slips past the JSON parser.
        """
        target = Path(path) if path else self.path
        if target is None:
            raise ServiceError("no cache path configured to save to")
        target.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            entries = []
            for (engine, n_wires, canon), entry in self._entries.items():
                record = {
                    "n": n_wires,
                    "canon": f"{canon:#x}",
                    "size": entry.size,
                    "lower_bound": entry.lower_bound,
                    "max_size": entry.max_size,
                    "circuits": {
                        f"{word:#x}": circuit
                        for word, circuit in entry.circuits.items()
                    },
                }
                if engine != DEFAULT_ENGINE:
                    record["engine"] = engine
                entries.append(record)
        entries_json = json.dumps(entries, separators=(",", ":"))
        checksum = hashlib.sha256(entries_json.encode("utf-8")).hexdigest()
        payload = (
            '{"version":%d,"checksum":"%s","entries":%s}'
            % (CACHE_FORMAT_VERSION, checksum, entries_json)
        )
        tmp = target.with_suffix(target.suffix + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
            try:
                dir_fd = os.open(target.parent, os.O_RDONLY)
            except OSError:
                pass  # platform without directory fds; rename is still atomic
            else:
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        except OSError as exc:
            self.last_save_ok = False
            raise ServiceError(
                f"failed to persist result cache to {target}: {exc}"
            ) from exc
        self.last_save_ok = True
        return target

    def load(self, path: "str | Path") -> int:
        """Replay a saved cache file; returns the number of entries added.

        A corrupt or version-mismatched file is rejected with
        :class:`ServiceError` rather than silently emptying the cache.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"result cache file {path} is unreadable: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ServiceError(
                f"result cache file {path} is malformed: missing 'entries'"
            )
        if payload.get("version") != CACHE_FORMAT_VERSION:
            raise ServiceError(
                f"result cache file {path} has unsupported version "
                f"{payload.get('version')!r} (expected {CACHE_FORMAT_VERSION})"
            )
        checksum = payload.get("checksum")
        if checksum is not None:
            # Files from before the checksum footer lack the field and
            # still load; a present-but-wrong checksum means corruption.
            entries_json = json.dumps(
                payload["entries"], separators=(",", ":")
            )
            actual = hashlib.sha256(entries_json.encode("utf-8")).hexdigest()
            if actual != checksum:
                raise ServiceError(
                    f"result cache file {path} failed its checksum "
                    f"(stored {checksum[:12]}..., computed {actual[:12]}...)"
                )
        added = 0
        with self._lock:
            for record in payload["entries"]:
                try:
                    key = (
                        str(record.get("engine", DEFAULT_ENGINE)),
                        int(record["n"]),
                        int(record["canon"], 16),
                    )
                    entry = CacheEntry(
                        size=record.get("size"),
                        lower_bound=record.get("lower_bound"),
                        max_size=record.get("max_size"),
                        circuits={
                            int(word, 16): circuit
                            for word, circuit in record.get(
                                "circuits", {}
                            ).items()
                        },
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise ServiceError(
                        f"result cache file {path} has a malformed entry: {exc}"
                    ) from exc
                self._entries[key] = entry
                added += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return added


__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_ENGINE",
    "MAX_CIRCUITS_PER_ENTRY",
    "CacheEntry",
    "CacheHit",
    "ResultCache",
]
