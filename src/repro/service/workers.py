"""Multiprocessing worker pool for hard synthesis queries.

Queries that miss the database (size > k) fall through to the
``A_i``-list scan, which is seconds of numpy work per query at paper
scale -- far too slow to serialize on the dispatcher thread.  The pool
fans those out across processes.

Process start-up strategy:

* Under ``fork`` (Linux), the pool is created *after* the parent has
  prepared its :class:`SynthesisHandle`; children inherit the database
  and lists copy-on-write, so start-up is instant and memory is shared.
  The pool must be created before the daemon starts its serving threads
  (forking a multithreaded process is unsafe).
* Under ``spawn`` (macOS/Windows default), each worker re-loads the
  database from the synthesizer's ``.npz`` cache path and rebuilds the
  lists in its initializer.

Workers never raise across the process boundary: outcomes (including
proven lower bounds) travel back as plain tuples, so exceptions with
non-trivial constructors survive and the parent rebuilds them.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from repro.errors import ServiceError, SizeLimitExceededError

#: Handle inherited by fork-started workers (set in the parent just
#: before the pool is created; visible to children copy-on-write).
_FORK_HANDLE = None

#: Engine used inside a worker process (either the inherited fork handle
#: or one rebuilt by the spawn initializer).
_WORKER_ENGINE = None


@dataclass(frozen=True)
class HardResult:
    """Outcome of one hard query, safely picklable.

    Either ``size``/``circuit`` are set (success) or ``lower_bound`` is
    (the scan exhausted and proved size > L).
    """

    word: int
    size: "int | None" = None
    circuit: "str | None" = None
    lists_scanned: int = 0
    candidates_tested: int = 0
    lower_bound: "int | None" = None
    message: str = ""

    def raise_if_bound(self) -> None:
        if self.lower_bound is not None:
            raise SizeLimitExceededError(
                self.message or "function out of search reach",
                lower_bound=self.lower_bound,
            )


def _init_fork_worker() -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = _FORK_HANDLE.engine


def _init_spawn_worker(n_wires, k, max_list_size, cache_path) -> None:
    global _WORKER_ENGINE
    from repro.engines.optimal import make_optimal_synthesizer

    synth = make_optimal_synthesizer(
        n_wires=n_wires,
        k=k,
        max_list_size=max_list_size,
        cache_dir=cache_path.parent if cache_path else False,
    )
    _WORKER_ENGINE = synth.handle().engine


def solve_word(word: int) -> HardResult:
    """Full search for one word on whatever engine is in scope.

    Used both inside pool workers (module-level so it pickles by name)
    and inline when the pool is disabled.
    """
    engine = _WORKER_ENGINE
    if engine is None:
        raise ServiceError("worker engine not initialized")
    return solve_with_engine(engine, word)


def solve_with_engine(engine, word: int) -> HardResult:
    """Search ``word`` on ``engine`` and box the outcome."""
    try:
        outcome = engine.search(word)
    except SizeLimitExceededError as exc:
        return HardResult(
            word=word, lower_bound=exc.lower_bound, message=str(exc)
        )
    return HardResult(
        word=word,
        size=outcome.size,
        circuit=str(outcome.circuit),
        lists_scanned=outcome.lists_scanned,
        candidates_tested=outcome.candidates_tested,
    )


class HardQueryPool:
    """A process pool bound to one prepared synthesis handle.

    With ``processes=0`` the pool degrades to inline execution on the
    caller's thread (useful for tests and single-core deployments); the
    API is identical.
    """

    def __init__(
        self,
        handle,
        processes: int = 0,
        start_method: "str | None" = None,
    ) -> None:
        global _FORK_HANDLE
        self.handle = handle
        self.processes = max(0, processes)
        self._pool = None
        if self.processes == 0:
            return
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise ServiceError(
                f"start method {start_method!r} unavailable "
                f"(have: {', '.join(methods)})"
            )
        ctx = multiprocessing.get_context(start_method)
        if start_method == "fork":
            _FORK_HANDLE = handle
            self._pool = ctx.Pool(
                processes=self.processes, initializer=_init_fork_worker
            )
        else:
            if handle.cache_path is None or not handle.cache_path.exists():
                raise ServiceError(
                    "spawn-based worker pool needs a persisted database "
                    "cache (run with caching enabled)"
                )
            self._pool = ctx.Pool(
                processes=self.processes,
                initializer=_init_spawn_worker,
                initargs=(
                    handle.n_wires,
                    handle.k,
                    handle.max_list_size,
                    handle.cache_path,
                ),
            )

    @property
    def is_parallel(self) -> bool:
        return self._pool is not None

    def solve_many(self, words: "list[int]") -> "list[HardResult]":
        """Solve a batch of hard words, preserving input order."""
        if not words:
            return []
        if self._pool is None:
            return [solve_with_engine(self.handle.engine, w) for w in words]
        return self._pool.map(solve_word, words, chunksize=1)

    def close(self) -> None:
        global _FORK_HANDLE
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if _FORK_HANDLE is self.handle:
            _FORK_HANDLE = None

    def __enter__(self) -> "HardQueryPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["HardQueryPool", "HardResult", "solve_with_engine", "solve_word"]
