"""Multiprocessing worker pool for hard synthesis queries.

Queries that miss the database (size > k) fall through to the
``A_i``-list scan, which is seconds of numpy work per query at paper
scale -- far too slow to serialize on the dispatcher thread.  The pool
fans those out across processes.

Process start-up strategy:

* Under ``fork`` (Linux), the pool is created *after* the parent has
  prepared its :class:`SynthesisHandle`; children inherit the database
  and lists copy-on-write, so start-up is instant and memory is shared.
  The pool must be created before the daemon starts its serving threads
  (forking a multithreaded process is unsafe).
* Under ``spawn`` (macOS/Windows default), each worker reopens the
  handle's database *store* in its initializer, routed through the
  :mod:`repro.store` resolver: an ``.rdb`` store memory-maps zero-copy
  (so even spawned workers share one page-cache copy of the table and
  start in O(page-fault) time), and only a legacy ``.npz``-only cache
  pays a per-worker load-and-rebuild.  Pool restarts after a fault
  re-run the same initializer with the same store path, so recovered
  workers reopen the same mapping.

Workers never raise across the process boundary: outcomes (including
proven lower bounds) travel back as plain tuples, so exceptions with
non-trivial constructors survive and the parent rebuilds them.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from dataclasses import dataclass

from repro.errors import ServiceError, SizeLimitExceededError, WorkerPoolError

#: Handle inherited by fork-started workers (set in the parent just
#: before the pool is created; visible to children copy-on-write).
_FORK_HANDLE = None

#: Engine used inside a worker process (either the inherited fork handle
#: or one rebuilt by the spawn initializer).
_WORKER_ENGINE = None


@dataclass(frozen=True)
class HardResult:
    """Outcome of one hard query, safely picklable.

    Either ``size``/``circuit`` are set (success) or ``lower_bound`` is
    (the scan exhausted and proved size > L).
    """

    word: int
    size: "int | None" = None
    circuit: "str | None" = None
    lists_scanned: int = 0
    candidates_tested: int = 0
    lower_bound: "int | None" = None
    message: str = ""

    def raise_if_bound(self) -> None:
        if self.lower_bound is not None:
            raise SizeLimitExceededError(
                self.message or "function out of search reach",
                lower_bound=self.lower_bound,
            )


def _init_fork_worker() -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = _FORK_HANDLE.engine


def _init_spawn_worker(n_wires, k, max_list_size, store_path) -> None:
    global _WORKER_ENGINE
    from repro.engines.optimal import make_optimal_synthesizer

    synth = make_optimal_synthesizer(
        n_wires=n_wires,
        k=k,
        max_list_size=max_list_size,
        cache_dir=False,
    )
    synth.prepare_from_store(store_path)
    _WORKER_ENGINE = synth.handle().engine


def _handle_store_path(handle):
    """The store path a spawned/restarted worker should reopen.

    Prefers the handle's ``.rdb`` store (zero-copy shared mapping);
    falls back to the ``.rdb`` sidecar of its ``.npz`` cache path, then
    to the ``.npz`` itself.  None when the handle was never persisted.
    """
    if handle.store_path is not None and handle.store_path.exists():
        return handle.store_path
    if handle.cache_path is not None and handle.cache_path.exists():
        from repro.store import resolve_store

        return resolve_store(handle.cache_path)
    return None


def solve_word(word: int) -> HardResult:
    """Full search for one word on whatever engine is in scope.

    Used both inside pool workers (module-level so it pickles by name)
    and inline when the pool is disabled.
    """
    engine = _WORKER_ENGINE
    if engine is None:
        raise ServiceError("worker engine not initialized")
    return solve_with_engine(engine, word)


def solve_with_engine(engine, word: int) -> HardResult:
    """Search ``word`` on ``engine`` and box the outcome."""
    try:
        outcome = engine.search(word)
    except SizeLimitExceededError as exc:
        return HardResult(
            word=word, lower_bound=exc.lower_bound, message=str(exc)
        )
    return HardResult(
        word=word,
        size=outcome.size,
        circuit=str(outcome.circuit),
        lists_scanned=outcome.lists_scanned,
        candidates_tested=outcome.candidates_tested,
    )


class HardQueryPool:
    """A process pool bound to one prepared synthesis handle.

    With ``processes=0`` the pool degrades to inline execution on the
    caller's thread (useful for tests and single-core deployments); the
    API is identical.
    """

    def __init__(
        self,
        handle,
        processes: int = 0,
        start_method: "str | None" = None,
    ) -> None:
        global _FORK_HANDLE
        self.handle = handle
        self.processes = max(0, processes)
        self.start_method = start_method
        self._pool = None
        if self.processes == 0:
            return
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise ServiceError(
                f"start method {start_method!r} unavailable "
                f"(have: {', '.join(methods)})"
            )
        ctx = multiprocessing.get_context(start_method)
        if start_method == "fork":
            _FORK_HANDLE = handle
            self._pool = ctx.Pool(
                processes=self.processes, initializer=_init_fork_worker
            )
        else:
            store_path = _handle_store_path(handle)
            if store_path is None:
                raise ServiceError(
                    "spawn-based worker pool needs a persisted database "
                    "store (.rdb or .npz; run with caching enabled)"
                )
            self._pool = ctx.Pool(
                processes=self.processes,
                initializer=_init_spawn_worker,
                initargs=(
                    handle.n_wires,
                    handle.k,
                    handle.max_list_size,
                    store_path,
                ),
            )

    @property
    def is_parallel(self) -> bool:
        return self._pool is not None

    def worker_pids(self) -> "list[int]":
        """PIDs of live worker processes (empty for the inline pool).

        Reads the pool's private worker list: the stdlib exposes no
        public liveness surface, and supervision needs one.
        """
        if self._pool is None:
            return []
        return [p.pid for p in self._pool._pool if p.is_alive()]

    def alive_workers(self) -> int:
        """How many worker processes are currently alive."""
        return len(self.worker_pids())

    def solve_many(
        self,
        words: "list[int]",
        timeout: "float | None" = None,
        on_dispatch=None,
    ) -> "list[HardResult]":
        """Solve a batch of hard words, preserving input order.

        ``timeout`` bounds the whole batch; exceeding it raises
        :class:`WorkerPoolError` (a killed worker's task is silently
        lost by ``multiprocessing.Pool``, so a bounded wait is the only
        reliable dead/hung-worker detector).  ``on_dispatch`` is called
        with the pool after the batch is handed to the workers -- the
        fault-injection hook used by the chaos suite.
        """
        if not words:
            return []
        if self._pool is None:
            if on_dispatch is not None:
                on_dispatch(self)
            return [solve_with_engine(self.handle.engine, w) for w in words]
        async_result = self._pool.map_async(solve_word, words, chunksize=1)
        if on_dispatch is not None:
            on_dispatch(self)
        try:
            return async_result.get(timeout)
        except multiprocessing.TimeoutError as exc:
            raise WorkerPoolError(
                f"hard-query batch of {len(words)} word(s) exceeded its "
                f"{timeout}s supervision timeout (worker dead or hung)"
            ) from exc
        except ServiceError:
            raise
        except Exception as exc:
            raise WorkerPoolError(f"hard-query pool failed: {exc}") from exc

    def restarted(self) -> "HardQueryPool":
        """Terminate this pool and return a fresh one with the same
        configuration (the supervisor's restart primitive)."""
        self.terminate()
        return HardQueryPool(
            self.handle,
            processes=self.processes,
            start_method=self.start_method,
        )

    def terminate(self, grace: float = 5.0) -> None:
        """Kill workers immediately (no graceful drain).

        A worker SIGKILLed mid-task can die *holding the pool's shared
        task-queue lock*, and the stdlib ``Pool.terminate`` drains that
        queue under the same lock -- so a naive teardown of a broken
        pool deadlocks forever.  Teardown therefore runs on a watchdog
        thread bounded by ``grace`` seconds; if it wedges, the surviving
        workers are SIGKILLed directly and the pool object is abandoned
        (``terminate`` flips the pool's state before the wedge point, so
        no new workers respawn, and its helper threads are daemonic).
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        pids = [p.pid for p in pool._pool if p.is_alive()]

        def _teardown() -> None:
            pool.terminate()
            # repro: allow[unbounded-wait] multiprocessing.Pool.join has no timeout parameter; the watchdog join below bounds this thread
            pool.join()

        reaper = threading.Thread(
            target=_teardown, name="pool-teardown", daemon=True
        )
        reaper.start()
        reaper.join(timeout=grace)
        if reaper.is_alive():
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass

    def close(self) -> None:
        global _FORK_HANDLE
        if self._pool is not None:
            self._pool.close()
            # repro: allow[unbounded-wait] multiprocessing.Pool.join has no timeout parameter; close() precedes it so idle workers exit promptly
            self._pool.join()
            self._pool = None
        if _FORK_HANDLE is self.handle:
            _FORK_HANDLE = None

    def __enter__(self) -> "HardQueryPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "HardQueryPool",
    "HardResult",
    "solve_with_engine",
    "solve_word",
]
