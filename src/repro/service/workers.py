"""Multiprocessing worker pool for hard synthesis queries.

Queries that miss the database (size > k) fall through to the
``A_i``-list scan, which is seconds of numpy work per query at paper
scale -- far too slow to serialize on the dispatcher thread.  The pool
fans those out across processes.

Process start-up strategy:

* Under ``fork`` (Linux), the pool is created *after* the parent has
  prepared its :class:`SynthesisHandle`; children inherit the database
  and lists copy-on-write, so start-up is instant and memory is shared.
  The pool must be created before the daemon starts its serving threads
  (forking a multithreaded process is unsafe).
* Under ``spawn`` (macOS/Windows default), each worker reopens the
  handle's database *store* in its initializer, routed through the
  :mod:`repro.store` resolver: an ``.rdb`` store memory-maps zero-copy
  (so even spawned workers share one page-cache copy of the table and
  start in O(page-fault) time), and only a legacy ``.npz``-only cache
  pays a per-worker load-and-rebuild.  Pool restarts after a fault
  re-run the same initializer with the same store path, so recovered
  workers reopen the same mapping.

Workers never raise across the process boundary: outcomes (including
proven lower bounds) travel back as plain tuples, so exceptions with
non-trivial constructors survive and the parent rebuilds them.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass

from repro.errors import ServiceError, SizeLimitExceededError, WorkerPoolError
from repro.service.tasks import PENDING

#: Handle inherited by fork-started workers (set in the parent just
#: before the pool is created; visible to children copy-on-write).
_FORK_HANDLE = None

#: Engine used inside a worker process (either the inherited fork handle
#: or one rebuilt by the spawn initializer).
_WORKER_ENGINE = None


@dataclass(frozen=True)
class HardResult:
    """Outcome of one hard query, safely picklable.

    Either ``size``/``circuit`` are set (success) or ``lower_bound`` is
    (the scan exhausted and proved size > L).
    """

    word: int
    size: "int | None" = None
    circuit: "str | None" = None
    lists_scanned: int = 0
    candidates_tested: int = 0
    lower_bound: "int | None" = None
    message: str = ""

    def raise_if_bound(self) -> None:
        if self.lower_bound is not None:
            raise SizeLimitExceededError(
                self.message or "function out of search reach",
                lower_bound=self.lower_bound,
            )


def _init_fork_worker() -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = _FORK_HANDLE.engine


def _init_spawn_worker(n_wires, k, max_list_size, store_path) -> None:
    global _WORKER_ENGINE
    from repro.engines.optimal import make_optimal_synthesizer

    synth = make_optimal_synthesizer(
        n_wires=n_wires,
        k=k,
        max_list_size=max_list_size,
        cache_dir=False,
    )
    synth.prepare_from_store(store_path)
    _WORKER_ENGINE = synth.handle().engine


def _handle_store_path(handle):
    """The store path a spawned/restarted worker should reopen.

    Prefers the handle's ``.rdb`` store (zero-copy shared mapping);
    falls back to the ``.rdb`` sidecar of its ``.npz`` cache path, then
    to the ``.npz`` itself.  None when the handle was never persisted.
    """
    if handle.store_path is not None and handle.store_path.exists():
        return handle.store_path
    if handle.cache_path is not None and handle.cache_path.exists():
        from repro.store import resolve_store

        return resolve_store(handle.cache_path)
    return None


def solve_word(word: int) -> HardResult:
    """Full search for one word on whatever engine is in scope.

    Used both inside pool workers (module-level so it pickles by name)
    and inline when the pool is disabled.
    """
    engine = _WORKER_ENGINE
    if engine is None:
        raise ServiceError("worker engine not initialized")
    return solve_with_engine(engine, word)


def solve_with_engine(engine, word: int, cancel=None) -> HardResult:
    """Search ``word`` on ``engine`` and box the outcome.

    ``cancel`` is a cooperative checkpoint threaded into the list scan
    (see :meth:`repro.synth.search.MeetInTheMiddleSearch.search`);
    whatever it raises propagates untouched so the work-item machinery
    can classify the abort.
    """
    try:
        outcome = engine.search(word, cancel=cancel)
    except SizeLimitExceededError as exc:
        return HardResult(
            word=word, lower_bound=exc.lower_bound, message=str(exc)
        )
    return HardResult(
        word=word,
        size=outcome.size,
        circuit=str(outcome.circuit),
        lists_scanned=outcome.lists_scanned,
        candidates_tested=outcome.candidates_tested,
    )


class WorkPreempted(ServiceError):
    """Internal signal: every in-flight work item of a dispatch was
    cancelled while running in worker processes.  Processes cannot
    observe cooperative checkpoints across the boundary, so the
    supervisor answers this by killing and rebuilding the pool -- the
    process-level kill path for non-cooperative work."""


class HardQueryPool:
    """A process pool bound to one prepared synthesis handle.

    With ``processes=0`` the pool degrades to inline execution on the
    caller's thread (useful for tests and single-core deployments); the
    API is identical.
    """

    def __init__(
        self,
        handle,
        processes: int = 0,
        start_method: "str | None" = None,
    ) -> None:
        global _FORK_HANDLE
        self.handle = handle
        self.processes = max(0, processes)
        self.start_method = start_method
        self._pool = None
        if self.processes == 0:
            return
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        if start_method not in methods:
            raise ServiceError(
                f"start method {start_method!r} unavailable "
                f"(have: {', '.join(methods)})"
            )
        ctx = multiprocessing.get_context(start_method)
        if start_method == "fork":
            _FORK_HANDLE = handle
            self._pool = ctx.Pool(
                processes=self.processes, initializer=_init_fork_worker
            )
        else:
            store_path = _handle_store_path(handle)
            if store_path is None:
                raise ServiceError(
                    "spawn-based worker pool needs a persisted database "
                    "store (.rdb or .npz; run with caching enabled)"
                )
            self._pool = ctx.Pool(
                processes=self.processes,
                initializer=_init_spawn_worker,
                initargs=(
                    handle.n_wires,
                    handle.k,
                    handle.max_list_size,
                    store_path,
                ),
            )

    @property
    def is_parallel(self) -> bool:
        return self._pool is not None

    def worker_pids(self) -> "list[int]":
        """PIDs of live worker processes (empty for the inline pool).

        Reads the pool's private worker list: the stdlib exposes no
        public liveness surface, and supervision needs one.
        """
        if self._pool is None:
            return []
        return [p.pid for p in self._pool._pool if p.is_alive()]

    def alive_workers(self) -> int:
        """How many worker processes are currently alive."""
        return len(self.worker_pids())

    def solve_many(
        self,
        words: "list[int]",
        timeout: "float | None" = None,
        on_dispatch=None,
    ) -> "list[HardResult]":
        """Solve a batch of hard words, preserving input order.

        ``timeout`` bounds the whole batch; exceeding it raises
        :class:`WorkerPoolError` (a killed worker's task is silently
        lost by ``multiprocessing.Pool``, so a bounded wait is the only
        reliable dead/hung-worker detector).  ``on_dispatch`` is called
        with the pool after the batch is handed to the workers -- the
        fault-injection hook used by the chaos suite.
        """
        if not words:
            return []
        if self._pool is None:
            if on_dispatch is not None:
                on_dispatch(self)
            return [solve_with_engine(self.handle.engine, w) for w in words]
        async_result = self._pool.map_async(solve_word, words, chunksize=1)
        if on_dispatch is not None:
            on_dispatch(self)
        try:
            return async_result.get(timeout)
        except multiprocessing.TimeoutError as exc:
            raise WorkerPoolError(
                f"hard-query batch of {len(words)} word(s) exceeded its "
                f"{timeout}s supervision timeout (worker dead or hung)"
            ) from exc
        except ServiceError:
            raise
        except Exception as exc:
            raise WorkerPoolError(f"hard-query pool failed: {exc}") from exc

    def solve_items(
        self,
        items: list,
        timeout: "float | None" = None,
        on_dispatch=None,
        poll: float = 0.02,
    ) -> list:
        """Solve a group of :class:`repro.service.tasks.WorkItem`\\ s
        whose ``payload`` is the packed word.

        Unlike :meth:`solve_many`, every unit is individually
        cancellable:

        * inline (``processes=0``): items run sequentially on the
          caller's thread with the token's cooperative checkpoint
          threaded into the scan -- a cancelled item stops within one
          ``A_i`` list.
        * parallel: items are submitted one task per word and the wait
          is a bounded poll loop.  An item cancelled mid-flight is
          detached immediately (its request degrades now; the worker's
          wasted result is dropped).  When *every* remaining item is
          cancelled the dispatch raises :class:`WorkPreempted` so the
          supervisor kills the pool -- worker processes cannot observe
          checkpoints, so preemption there is process-level.

        ``timeout`` bounds the whole dispatch as before (the dead/hung
        worker detector); exceeding it raises
        :class:`WorkerPoolError`.  Terminal items are skipped, so the
        supervisor can resubmit the same list after a restart.
        """
        open_items = [item for item in items if not item.finished]
        if not open_items:
            return items
        if self._pool is None:
            if on_dispatch is not None:
                on_dispatch(self)
            engine = self.handle.engine
            for item in open_items:
                if item.fn is None:
                    item.fn = lambda token, w=item.payload: solve_with_engine(
                        engine, w, cancel=token.checkpoint
                    )
                item.run()
            return items
        in_flight = []
        for item in open_items:
            if item.token.cancelled:
                item.cancel(item.token.reason or "cancelled", force=True)
                continue
            if item.state == PENDING:
                item.start()
            in_flight.append(
                (item, self._pool.apply_async(solve_word, (item.payload,)))
            )
        if on_dispatch is not None:
            on_dispatch(self)
        deadline = time.monotonic() + timeout if timeout is not None else None
        while in_flight:
            still = []
            progressed = False
            for item, async_result in in_flight:
                if async_result.ready():
                    progressed = True
                    self._settle(item, async_result)
                    continue
                still.append((item, async_result))
            in_flight = still
            if not in_flight:
                break
            cancelled = [
                entry for entry in in_flight if entry[0].token.cancelled
            ]
            if len(cancelled) == len(in_flight):
                registry = in_flight[0][0].registry
                for item, _ in in_flight:
                    item.cancel(item.token.reason or "cancelled", force=True)
                if registry is not None:
                    registry.note_forced_kill(len(in_flight))
                raise WorkPreempted(
                    f"all {len(in_flight)} in-flight work item(s) were "
                    "cancelled; pool workers need a process-level kill"
                )
            if cancelled:
                # Some (not all) items preempted: detach them now so
                # their requests degrade immediately; the stragglers'
                # worker results are dropped when they arrive.
                for item, _ in cancelled:
                    item.cancel(item.token.reason or "cancelled", force=True)
                in_flight = [
                    entry for entry in in_flight if not entry[0].finished
                ]
                if not in_flight:
                    break
            if deadline is not None and time.monotonic() >= deadline:
                raise WorkerPoolError(
                    f"hard-query dispatch of {len(in_flight)} work item(s) "
                    f"exceeded its {timeout}s supervision timeout "
                    "(worker dead or hung)"
                )
            if not progressed:
                time.sleep(poll)
        return items

    @staticmethod
    def _settle(item, async_result) -> None:
        """Move a ready pool result into its item's terminal state."""
        try:
            result = async_result.get(0)
        except Exception as exc:
            try:
                item.degrade(exc)
            except ServiceError:  # force-cancelled concurrently
                pass
            return
        try:
            item.finish(result)
        except ServiceError:  # force-cancelled concurrently
            pass

    def restarted(self) -> "HardQueryPool":
        """Terminate this pool and return a fresh one with the same
        configuration (the supervisor's restart primitive)."""
        self.terminate()
        return HardQueryPool(
            self.handle,
            processes=self.processes,
            start_method=self.start_method,
        )

    def terminate(self, grace: float = 5.0) -> None:
        """Kill workers immediately (no graceful drain).

        A worker SIGKILLed mid-task can die *holding the pool's shared
        task-queue lock*, and the stdlib ``Pool.terminate`` drains that
        queue under the same lock -- so a naive teardown of a broken
        pool deadlocks forever.  Teardown therefore runs on a watchdog
        thread bounded by ``grace`` seconds; if it wedges, the surviving
        workers are SIGKILLed directly and the pool object is abandoned
        (``terminate`` flips the pool's state before the wedge point, so
        no new workers respawn, and its helper threads are daemonic).
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        pids = [p.pid for p in pool._pool if p.is_alive()]

        def _teardown() -> None:
            pool.terminate()
            # repro: allow[unbounded-wait] multiprocessing.Pool.join has no timeout parameter; the watchdog join below bounds this thread
            pool.join()

        reaper = threading.Thread(
            target=_teardown, name="pool-teardown", daemon=True
        )
        reaper.start()
        reaper.join(timeout=grace)
        if reaper.is_alive():
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass

    def close(self) -> None:
        global _FORK_HANDLE
        if self._pool is not None:
            self._pool.close()
            # repro: allow[unbounded-wait] multiprocessing.Pool.join has no timeout parameter; close() precedes it so idle workers exit promptly
            self._pool.join()
            self._pool = None
        if _FORK_HANDLE is self.handle:
            _FORK_HANDLE = None

    def __enter__(self) -> "HardQueryPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "HardQueryPool",
    "HardResult",
    "WorkPreempted",
    "solve_with_engine",
    "solve_word",
]
