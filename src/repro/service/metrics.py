"""Thread-safe counters, gauges, and histograms for the service daemon.

The registry is intentionally tiny -- a dict of named instruments behind
one lock -- because the daemon only ever touches it on the request path
(a handful of increments per batch).  ``snapshot()`` renders everything
to plain JSON-serializable values for the ``stats`` protocol request.

Histograms keep exact count/sum/min/max plus a bounded reservoir of
recent observations for approximate percentiles; with the default
reservoir of 1024 samples the p50/p90/p99 of a steady workload are
accurate to well under a bucket width without unbounded memory.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self):
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, pool size, ...)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self):
        return self._value


class Histogram:
    """Exact count/sum/min/max plus reservoir-based percentiles.

    The reservoir holds the most recent ``reservoir_size`` observations
    (ring buffer); percentiles are computed over it at snapshot time.
    """

    __slots__ = ("_lock", "count", "total", "min", "max", "_ring", "_pos", "_size")

    def __init__(self, reservoir_size: int = 1024) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None
        self._ring: list[float] = []
        self._pos = 0
        self._size = reservoir_size

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._ring) < self._size:
                self._ring.append(value)
            else:
                self._ring[self._pos] = value
                self._pos = (self._pos + 1) % self._size

    @property
    def mean(self) -> "float | None":
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> "float | None":
        """Approximate q-quantile (0 <= q <= 1) over the reservoir."""
        with self._lock:
            if not self._ring:
                return None
            ordered = sorted(self._ring)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self):
        with self._lock:
            if not self.count:
                return {"count": 0}
            ordered = sorted(self._ring)
            count, total = self.count, self.total
            lo, hi = self.min, self.max

        def pick(q: float) -> float:
            return ordered[min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))]

        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
            "p50": pick(0.50),
            "p90": pick(0.90),
            "p99": pick(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as one dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, factory):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """All instruments rendered to JSON-serializable values, sorted
        by name for stable output."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
