"""The synthesis daemon: load the database once, serve many queries.

Architecture::

    TCP / stdio transports          (one thread per connection)
        -> SynthesisService.submit  (parks a PendingRequest, blocks)
            -> BatchQueue           (batch coalescing window)
                -> dispatcher thread
                    -> vectorized lookup: canonical_np + lookup_batch
                       over the WHOLE batch (one numpy pass)
                    -> ResultCache keyed by canonical representative
                    -> fast path: circuit peeling (size <= k)
                    -> hard path: HardQueryPool (A_i-list scans)

Control ops (``ping``/``stats``/``health``/``shutdown``) are answered
synchronously on the connection thread; only synthesis work is queued.
Graceful shutdown closes the queue (new requests get a ``shutdown``
error envelope), drains everything already accepted, persists the
result cache, and only then stops the transports.

The hard path is wrapped in resilience machinery (see
:mod:`repro.service.resilience` and ``docs/RESILIENCE.md``): a
:class:`WorkerSupervisor` bounds every ``A_i``-scan batch and restarts
dead/hung pools, a :class:`CircuitBreaker` sheds hard queries after
consecutive failures or deadline misses, and requests carrying
``deadline_ms`` degrade to an upper-bound answer from the fallback
engine instead of blowing their budget -- a response is always written,
never a hung connection.

Requests naming a non-default ``engine`` bypass the batched pipeline:
servable engines from :mod:`repro.engines` are created lazily on first
use (options from ``config.extra["engine_options"]``), answered
synchronously on the connection thread under a per-engine lock, and
cached in their own keyspace of the shared :class:`ResultCache`.  The
batching machinery exists for the optimal engine's vectorized lookup;
the others have no batch-wide fast path to exploit.
"""

from __future__ import annotations

import json
import logging
import socketserver
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import __version__
from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.engines import (
    GUARANTEE_UPPER_BOUND,
    Engine,
    SynthesisRequest,
    create_engine,
)
from repro.engines.optimal import make_optimal_synthesizer
from repro.errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceShutdownError,
    SizeLimitExceededError,
    SynthesisError,
    WorkCancelledError,
)
from repro.perf.trace import enable as _perf_enable
from repro.perf.trace import get_tracer as _perf_get_tracer
from repro.perf.trace import trace as trace_span
from repro.service import protocol
from repro.service.batching import BatchQueue, PendingRequest
from repro.service.cache import DEFAULT_ENGINE, ResultCache
from repro.service.faults import FaultInjector
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceConfig,
    WorkerSupervisor,
)
from repro.service.tasks import CANCELLED, DEGRADED, TaskRegistry
from repro.service.workers import HardQueryPool
from repro.synth.search import peel_minimal_circuit
from repro.synth.synthesizer import SynthesisHandle

log = logging.getLogger(__name__)


@dataclass
class ServiceConfig:
    """Everything needed to build and tune a daemon."""

    n_wires: int = 4
    k: int = 6
    max_list_size: "int | None" = None
    workers: int = 0
    batch_window: float = 0.002
    max_batch: int = 256
    cache_capacity: int = 65536
    result_cache_path: "str | None" = None
    db_cache_dir: object = None  # None = default dir, False = no persistence
    verbose: bool = False
    extra: dict = field(default_factory=dict)


class SynthesisService:
    """Long-lived serving core shared by the TCP and stdio transports."""

    def __init__(
        self,
        handle: SynthesisHandle,
        config: "ServiceConfig | None" = None,
        cache: "ResultCache | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.handle = handle
        self.config = config or ServiceConfig(
            n_wires=handle.n_wires, k=handle.k,
            max_list_size=handle.max_list_size,
        )
        self.cache = cache if cache is not None else ResultCache(
            capacity=self.config.cache_capacity,
            path=self.config.result_cache_path,
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.queue = BatchQueue(
            max_batch=self.config.max_batch,
            coalesce_window=self.config.batch_window,
        )
        self.resilience = ResilienceConfig.from_extra(self.config.extra)
        self.faults = FaultInjector.from_extra(self.config.extra)
        # Every hard unit of work (scan, SAT solve, race lane) runs as a
        # cancellable WorkItem tracked here; a breaker trip preempts all
        # of them instead of letting abandoned work burn on.
        self.tasks = TaskRegistry(metrics=self.metrics)
        self.breaker = CircuitBreaker(
            failure_threshold=self.resilience.breaker_failure_threshold,
            cooldown=self.resilience.breaker_cooldown,
            on_trip=lambda: self.tasks.cancel_in_flight("breaker_open"),
        )
        self.supervisor: "WorkerSupervisor | None" = None
        self._engines: dict[str, Engine] = {}
        self._engine_locks: dict[str, threading.Lock] = {}
        self._engines_lock = threading.Lock()
        self._dispatcher: "threading.Thread | None" = None
        self._shutdown_hooks: list = []
        self._shutdown_lock = threading.Lock()
        self._shutdown_requested = False
        self._shutdown_started = False
        self._stopped = threading.Event()
        self._started_at: "float | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: ServiceConfig) -> "SynthesisService":
        """Prepare the synthesizer (build/load the database) and wire up
        the service around its warm handle."""
        synth = make_optimal_synthesizer(
            n_wires=config.n_wires,
            k=config.k,
            max_list_size=config.max_list_size,
            cache_dir=config.db_cache_dir,
            verbose=config.verbose,
        )
        handle = synth.handle()
        config.max_list_size = handle.max_list_size
        return cls(handle, config=config)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SynthesisService":
        """Create the worker pool and start the dispatcher.

        The pool is created first, before any serving threads exist:
        fork-starting workers from a multithreaded process is unsafe.
        """
        if self._dispatcher is not None:
            return self
        if self.config.extra.get("trace"):
            # Feed every completed span into the metrics registry so
            # span timings ride the existing stats/snapshot plumbing.
            _perf_enable(sink=self._span_sink)
        pool = HardQueryPool(self.handle, processes=self.config.workers)
        self.supervisor = WorkerSupervisor(
            pool,
            hard_timeout=self.resilience.hard_timeout,
            max_restarts=self.resilience.max_restarts,
            metrics=self.metrics,
            faults=self.faults,
        )
        self._started_at = time.monotonic()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatcher", daemon=True
        )
        self._dispatcher.start()
        return self

    def _span_sink(self, name: str, seconds: float) -> None:
        """Bridge completed trace spans into per-name histograms."""
        self.metrics.histogram(f"span_{name}").observe(seconds)

    @property
    def pool(self) -> "HardQueryPool | None":
        """The *current* hard-query pool (changes across supervisor
        restarts); None before :meth:`start`."""
        return self.supervisor.pool if self.supervisor is not None else None

    @property
    def stopping(self) -> bool:
        return self._shutdown_requested or self._shutdown_started

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def add_shutdown_hook(self, hook) -> None:
        """Register a callable run at the end of graceful shutdown
        (transports use this to stop accepting)."""
        self._shutdown_hooks.append(hook)

    def shutdown(self, *, save_cache: bool = True) -> None:
        """Drain pending requests, persist the cache, stop transports.

        Idempotent and safe to call from any thread except the
        dispatcher itself.
        """
        with self._shutdown_lock:
            already_started = self._shutdown_started
            self._shutdown_started = True
        if already_started:
            # Wait outside the lock: blocking here while holding it would
            # deadlock a concurrent first-caller that still needs it.
            # Bounded waits in a loop so a stuck shutdown stays observable
            # (and interruptible) instead of parking this thread forever.
            while not self._stopped.wait(timeout=1.0):
                pass
            return
        self.queue.close()
        # Preempt in-flight hard work: cancelled items resolve their
        # requests as degraded answers (counted in stats), so the
        # dispatcher drains in bounded time instead of finishing
        # arbitrarily long scans.  Requests still queued drain through
        # the shutdown-aware phase 4 (degraded, never scanned).
        self.tasks.cancel_in_flight("shutdown")
        if self._dispatcher is not None:
            while self._dispatcher.is_alive():
                self._dispatcher.join(timeout=1.0)
        # Anything that raced past close without being dispatched.
        for pending in self.queue.drain_remaining():
            pending.resolve(self._error_response(
                pending.request.id,
                ServiceShutdownError("service stopped before dispatch"),
            ))
        if self.supervisor is not None:
            self.supervisor.close()
        if save_cache and self.cache.path is not None:
            try:
                self.cache.save()
            except ServiceError as exc:
                log.error("result cache save failed during shutdown: %s", exc)
            else:
                if self.faults is not None:
                    self.faults.corrupt_cache_file(self.cache.path)
        for hook in self._shutdown_hooks:
            try:
                hook()
            except Exception:
                pass
        self._stopped.set()

    def request_shutdown(self) -> None:
        """Trigger graceful shutdown from a request-handling thread.

        Sets :attr:`stopping` synchronously (so transports stop reading
        right after acknowledging) and drains on a background thread.
        """
        self._shutdown_requested = True
        threading.Thread(
            target=self.shutdown, name="repro-shutdown", daemon=True
        ).start()

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def handle_line(self, line: "str | bytes") -> str:
        """Decode one protocol line, execute it, encode the response."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            self.metrics.counter("responses_error").inc()
            return protocol.encode_response(
                None, error=protocol.error_envelope(exc)
            )
        return self.submit(request)

    def submit(self, request: "protocol.Request") -> str:
        """Execute one decoded request and return the response line."""
        self.metrics.counter("requests_total").inc()
        self.metrics.counter(f"requests_{request.op}").inc()
        # The deadline starts at accept time, *before* any injected delay
        # or queueing: everything the daemon spends counts against it.
        deadline = Deadline.from_ms(request.deadline_ms)
        if self.faults is not None:
            self.faults.delay_request(request.op)
        if request.op == "ping":
            return protocol.encode_response(
                request.id, result={"pong": True, "version": __version__}
            )
        if request.op == "stats":
            return protocol.encode_response(request.id, result=self.stats())
        if request.op == "health":
            return protocol.encode_response(request.id, result=self.health())
        if request.op == "shutdown":
            self.request_shutdown()
            return protocol.encode_response(
                request.id, result={"draining": True}
            )
        if request.op == "batch":
            return self._batch_submit(request)
        if request.op == "compile":
            return self._compile_submit(request, deadline)
        if request.op in ("shards", "shard_join", "shard_leave"):
            return self._error_response(
                request.id,
                ProtocolError(
                    f"op {request.op!r} needs a sharded router "
                    "(start one with 'repro serve --shards N')"
                ),
            )
        # synth / size: route by engine.  The default keeps the batched
        # optimal pipeline; named engines answer on this thread.
        engine_name = request.engine or DEFAULT_ENGINE
        self.metrics.counter(f"engine_requests_{engine_name}").inc()
        if engine_name != DEFAULT_ENGINE:
            return self._engine_submit(request, engine_name, deadline)
        # Park on the queue and wait for the dispatcher.  The wait is
        # bounded by ``request_timeout`` -- the server-side backstop that
        # guarantees a connection thread can never hang forever even if
        # the dispatcher wedges.
        pending = PendingRequest(request, deadline=deadline)
        try:
            self.queue.put(pending)
        except ServiceShutdownError as exc:
            return self._error_response(request.id, exc)
        self.metrics.gauge("queue_depth").set(self.queue.depth)
        response = pending.wait(self.resilience.request_timeout)
        if response is None:
            # The connection thread is abandoning the request -- preempt
            # any hard work still attached to it so the pool does not
            # keep scanning for an answer nobody will read.
            if pending.work_item is not None:
                pending.work_item.cancel("abandoned")
            self.metrics.counter("responses_timeout").inc()
            return self._error_response(
                request.id,
                ServiceError(
                    "request was not resolved within "
                    f"{self.resilience.request_timeout}s"
                ),
            )
        return response

    def _batch_submit(self, request: "protocol.Request") -> str:
        """Answer a ``batch`` op by executing its sub-requests in order.

        A single daemon has no shards to scatter over, so sub-requests
        run sequentially through the same entry point a standalone
        request would take; each yields a complete response envelope
        (its own id/ok/error), so one bad spec never poisons the batch.
        A sharded router produces the same envelopes for the same
        sub-requests (the shard-smoke CI job compares the two byte for
        byte -- see ``docs/SHARDING.md``).
        """
        envelopes = []
        for entry in request.options.get("requests", []):
            try:
                sub = protocol.decode_payload(entry)
            except ProtocolError as exc:
                envelopes.append(json.loads(protocol.encode_response(
                    entry.get("id") if isinstance(entry, dict) else None,
                    error=protocol.error_envelope(exc),
                )))
                continue
            envelopes.append(json.loads(self.submit(sub)))
        return protocol.encode_response(
            request.id,
            result={"count": len(envelopes), "results": envelopes},
        )

    # ------------------------------------------------------------------
    # Function-form compilation
    # ------------------------------------------------------------------
    def _compile_submit(
        self,
        request: "protocol.Request",
        deadline: "Deadline | None" = None,
    ) -> str:
        """Answer a ``compile`` op: spec form in, circuit + embedding out.

        Runs on the connection thread under the chosen engine's lock (the
        completion search is one logical engine call).  The whole search
        is one cancellable :class:`~repro.service.tasks.WorkItem` whose
        token carries the request deadline: expiry, breaker trips, and
        shutdown preempt it at the next completion boundary, after which
        the request degrades to a fallback-engine compile instead of an
        error.  Compile answers are never cached: the result is keyed by
        the *spec* (not a permutation class), and the embedding payload
        already makes re-compilation cheap to reason about.
        """
        if self.stopping:
            return self._error_response(
                request.id, ServiceShutdownError("service is draining")
            )
        from repro.specs import compile_spec, spec_from_wire

        n = self.handle.n_wires
        if request.wires is not None and request.wires != n:
            return self._error_response(
                request.id,
                ProtocolError(
                    f"this daemon serves n_wires={n}, "
                    f"got wires={request.wires}",
                    kind="invalid_spec",
                ),
            )
        try:
            spec = spec_from_wire(request.spec)
        except ReproError as exc:
            return self._error_response(request.id, exc)
        engine_name = request.engine or DEFAULT_ENGINE
        try:
            engine = self._get_engine(engine_name)
        except SynthesisError as exc:
            return self._error_response(
                request.id, ProtocolError(str(exc), kind="protocol")
            )
        samples = request.options.get("samples")
        if samples is not None and (
            isinstance(samples, bool)
            or not isinstance(samples, int)
            or samples < 1
        ):
            return self._error_response(
                request.id,
                ProtocolError(
                    f"samples must be a positive integer, got {samples!r}"
                ),
            )
        work = self.tasks.create(
            "compile", payload=spec.kind, deadline=deadline
        )
        work.start()
        started = time.perf_counter()
        try:
            with self._engine_locks[engine_name], trace_span(
                "service.compile", engine=engine_name, kind=spec.kind
            ):
                kwargs: dict = {"n_wires": n, "cancel": work.token.checkpoint}
                if samples is not None:
                    kwargs["samples"] = samples
                result = compile_spec(spec, engine, **kwargs)
        except WorkCancelledError as exc:
            work.mark_cancelled()
            if exc.reason == "deadline":
                self.metrics.counter("deadline_misses").inc()
                self.breaker.record_deadline_miss()
            return self._compile_degraded(request, spec, exc.reason)
        except Exception as exc:
            work.degrade(exc)
            return self._error_response(request.id, exc)
        work.finish(result.size)
        self.metrics.histogram("compile_seconds").observe(
            time.perf_counter() - started
        )
        self.metrics.counter("responses_ok").inc()
        body = result.to_wire()
        body["source"] = "engine"
        return protocol.encode_response(request.id, result=body)

    def _compile_degraded(
        self, request: "protocol.Request", spec, reason: str
    ) -> str:
        """Answer a preempted compile from the fallback engine.

        The fallback compile takes the generic candidate path (a handful
        of heuristic synthesis calls, no database scan), so it is cheap
        enough to run inline even when the optimal search just blew its
        deadline.  The answer is correct on every specified row but only
        an upper bound, and -- like every degraded answer -- never cached.
        """
        from repro.specs import compile_spec

        name = self.resilience.fallback_engine
        try:
            engine = self._get_engine(name)
            with self._engine_locks[name]:
                result = compile_spec(spec, engine, n_wires=self.handle.n_wires)
        except Exception as exc:  # pragma: no cover - fallback engine broke
            return self._error_response(request.id, exc)
        self.metrics.counter("responses_ok").inc()
        self.metrics.counter("responses_degraded").inc()
        self.metrics.counter(f"degraded_{reason}").inc()
        body = result.to_wire()
        body["source"] = "degraded"
        body["guarantee"] = GUARANTEE_UPPER_BOUND
        body["degraded_reason"] = reason
        body["tier"] = name
        return protocol.encode_response(request.id, result=body)

    # ------------------------------------------------------------------
    # Non-default engines
    # ------------------------------------------------------------------
    def _get_engine(self, name: str) -> Engine:
        """The lazily-created adapter for ``name``; raises on unknown or
        non-servable names."""
        with self._engines_lock:
            engine = self._engines.get(name)
            if engine is None:
                options = dict(
                    self.config.extra.get("engine_options", {}).get(name, {})
                )
                options.setdefault("n_wires", self.handle.n_wires)
                # Factories that declare them (the racing engine) get
                # the service's work-item registry and warm database
                # handle; ``create_engine`` drops both for the rest.
                options.setdefault("tasks", self.tasks)
                options.setdefault("handle", self.handle)
                # A served race must never outlive the hard-path wall
                # clock: without a client deadline an out-of-reach
                # function would otherwise keep the SAT lane (and the
                # per-engine lock) busy indefinitely.  Requests carrying
                # ``deadline_ms`` still take the tighter budget.
                options.setdefault(
                    "time_budget", self.resilience.hard_timeout
                )
                engine = create_engine(name, **options)
                if not engine.capabilities.servable:
                    raise SynthesisError(
                        f"engine {name!r} is not servable over the daemon"
                    )
                self._engines[name] = engine
                self._engine_locks[name] = threading.Lock()
            return engine

    def _engine_submit(
        self,
        request: "protocol.Request",
        name: str,
        deadline: "Deadline | None" = None,
    ) -> str:
        """Answer one synth/size request with a non-default engine."""
        if self.stopping:
            return self._error_response(
                request.id, ServiceShutdownError("service is draining")
            )
        try:
            engine = self._get_engine(name)
        except SynthesisError as exc:
            return self._error_response(
                request.id, ProtocolError(str(exc), kind="protocol")
            )
        try:
            perm = Permutation.coerce(
                request.spec_value(), request.wires or self.handle.n_wires
            )
        except ReproError as exc:
            return self._error_response(request.id, exc)
        except (TypeError, ValueError) as exc:
            return self._error_response(
                request.id,
                ProtocolError(f"unparseable spec: {exc}", kind="invalid_spec"),
            )
        # Engine answers are not class-invariant (relabeling changes the
        # MMD heuristic's output), so the keyspace is keyed by exact word
        # and the stored "circuit" is the full serialized wire result.
        word, n = perm.word, perm.n_wires
        hit = self.cache.lookup(n, word, word, engine=name)
        if hit is not None and hit.circuit is not None:
            self.metrics.counter(f"engine_cache_hits_{name}").inc()
            self.metrics.counter("served_from_cache").inc()
            payload, source = json.loads(hit.circuit), "cache"
        else:
            started = time.perf_counter()
            # The request's remaining budget rides along as options: the
            # SAT engine turns ``time_budget`` into a solver wall-clock
            # bound, the racing engine derives its lane deadline from
            # ``deadline``.  Engines that read neither are unaffected.
            options: dict = {}
            if deadline is not None:
                options["time_budget"] = max(0.0, deadline.remaining())
                options["deadline"] = deadline
            try:
                with self._engine_locks[name], trace_span(
                    "service.engine", engine=name
                ):
                    result = engine.synthesize(
                        SynthesisRequest(spec=perm, n_wires=n, options=options)
                    )
            except Exception as exc:
                return self._error_response(request.id, exc)
            self.metrics.histogram(f"engine_seconds_{name}").observe(
                time.perf_counter() - started
            )
            payload, source = result.to_wire(), "engine"
            if result.guarantee == GUARANTEE_UPPER_BOUND:
                # A degraded (bound-only) answer -- a race that hit its
                # deadline before any lane proved optimality -- is never
                # cached: a later uncontended query deserves the exact
                # answer.
                self.metrics.counter("responses_degraded").inc()
            else:
                self.cache.store_circuit(
                    n,
                    word,
                    word,
                    result.size,
                    json.dumps(payload, sort_keys=True),
                    engine=name,
                )
        self.metrics.counter("responses_ok").inc()
        body = dict(payload)
        if request.op == "size":
            body.pop("circuit", None)
        body["source"] = source
        return protocol.encode_response(request.id, result=body)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Config + metrics + cache state (the ``stats`` op payload)."""
        batch = self.metrics.histogram("batch_size").snapshot()
        return {
            "version": __version__,
            "uptime": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else None
            ),
            "config": {
                "n_wires": self.handle.n_wires,
                "k": self.handle.k,
                "max_list_size": self.handle.max_list_size,
                "max_size": self.handle.max_size,
                "workers": self.config.workers,
                "batch_window": self.config.batch_window,
                "max_batch": self.config.max_batch,
            },
            "queue_depth": self.queue.depth,
            "mean_batch_size": batch.get("mean"),
            "engines": {
                "default": DEFAULT_ENGINE,
                "loaded": sorted(self._engines),
            },
            "database": self._database_info(),
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
            "trace": self._trace_stats(),
            "tasks": self.tasks.snapshot(),
            "resilience": {
                "breaker": self.breaker.snapshot(),
                "pool": (
                    self.supervisor.liveness()
                    if self.supervisor is not None
                    else None
                ),
            },
        }

    def _database_info(self) -> dict:
        """Where the database lives and whether it is a shared mapping.

        ``mapped: True`` means the table is a read-only ``.rdb``
        memory-map -- every worker process touching it shares one
        page-cache copy (see ``docs/DATABASE.md``).
        """
        from repro.store import is_mapped, mapped_path, store_format

        db = self.handle.database
        path = mapped_path(db)
        if path is None and self.handle.store_path is not None:
            path = self.handle.store_path
        elif path is None and self.handle.cache_path is not None:
            path = self.handle.cache_path
        return {
            "store": str(path) if path is not None else None,
            "format": store_format(path) if path is not None else None,
            "mapped": is_mapped(db),
        }

    def _trace_stats(self) -> dict:
        """The ``stats`` payload's span-tracing block."""
        tracer = _perf_get_tracer()
        if tracer is None:
            return {"enabled": False}
        return {"enabled": True, "aggregate": tracer.aggregate()}

    def health(self) -> dict:
        """Resilience status (the ``health`` op payload).

        ``status`` is ``"ok"`` when everything is nominal, ``"degraded"``
        when the breaker is not closed, workers are dead, or the
        persisted cache was quarantined, and ``"stopping"`` during
        shutdown.  Cheap enough for tight poll loops: no engine work, no
        queue traffic.
        """
        breaker = self.breaker.snapshot()
        pool = (
            self.supervisor.liveness() if self.supervisor is not None else None
        )
        cache = self.cache.health()
        dispatcher_alive = (
            self._dispatcher is not None and self._dispatcher.is_alive()
        )
        if self.stopping:
            status = "stopping"
        elif (
            breaker["state"] != CircuitBreaker.CLOSED
            or (pool is not None and pool["dead"] > 0)
            or cache["quarantined"] is not None
            or not dispatcher_alive
        ):
            status = "degraded"
        else:
            status = "ok"
        body = {
            "status": status,
            "version": __version__,
            "dispatcher_alive": dispatcher_alive,
            "breaker": breaker,
            "pool": pool,
            "cache": cache,
            "tasks": self.tasks.snapshot(),
            "database": self._database_info(),
        }
        if self.faults is not None:
            body["faults"] = self.faults.snapshot()
        return body

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self.queue.next_batch()
            if batch is None:
                return
            started = time.perf_counter()
            for pending in batch:
                self.metrics.histogram("queue_wait_seconds").observe(
                    started - pending.enqueued_at
                )
            self.metrics.histogram("batch_size").observe(len(batch))
            self.metrics.gauge("queue_depth").set(self.queue.depth)
            try:
                self._process_batch(batch)
            except Exception as exc:  # pragma: no cover - defensive
                for pending in batch:
                    if pending.response is None:
                        pending.resolve(
                            self._error_response(pending.request.id, exc)
                        )
            self.metrics.histogram("batch_seconds").observe(
                time.perf_counter() - started
            )

    def _process_batch(self, batch: "list[PendingRequest]") -> None:
        """Resolve a coalesced batch through the vectorized path."""
        with trace_span("service.batch", size=len(batch)):
            self._process_batch_inner(batch)

    def _process_batch_inner(self, batch: "list[PendingRequest]") -> None:
        db = self.handle.database
        n = self.handle.n_wires
        # Phase 1: parse specs; protocol/spec failures resolve immediately.
        work: list[tuple[PendingRequest, int]] = []
        with trace_span("service.parse"):
            for pending in batch:
                request = pending.request
                if request.wires is not None and request.wires != n:
                    pending.resolve(self._error_response(
                        request.id,
                        ProtocolError(
                            f"this daemon serves n_wires={n}, "
                            f"got wires={request.wires}",
                            kind="invalid_spec",
                        ),
                    ))
                    continue
                try:
                    perm = Permutation.coerce(request.spec_value(), n)
                except ReproError as exc:
                    pending.resolve(self._error_response(request.id, exc))
                    continue
                except (TypeError, ValueError) as exc:
                    pending.resolve(self._error_response(
                        request.id,
                        ProtocolError(
                            f"unparseable spec: {exc}", kind="invalid_spec"
                        ),
                    ))
                    continue
                work.append((pending, perm.word))
        if not work:
            return
        # Phase 2: one vectorized canonicalization + hash probe for the
        # whole batch (this is the point of coalescing).
        lookup_started = time.perf_counter()
        with trace_span("service.lookup", words=len(work)):
            words = np.array([w for _, w in work], dtype=np.uint64)
            keys, sizes = db.lookup_with_keys(words)
        self.metrics.histogram("lookup_seconds").observe(
            time.perf_counter() - lookup_started
        )
        # Phase 3: resolve per request from cache / db; collect hard ones.
        hard: list[tuple[PendingRequest, int, int]] = []
        for (pending, word), canon, size in zip(
            work, keys.tolist(), sizes.tolist()
        ):
            request = pending.request
            hit = self.cache.lookup(n, canon, word)
            if hit is not None and hit.size is not None:
                if request.op == "size" or hit.circuit is not None:
                    self.metrics.counter("served_from_cache").inc()
                    pending.resolve(self._ok_synthesis(
                        request, word, hit.size, hit.circuit, "cache"
                    ))
                    continue
            if size != db.MISSING:
                self.metrics.counter("served_from_db").inc()
                self._resolve_db_hit(pending, word, canon, size)
                continue
            bound = self.cache.bound_for(n, canon, self.handle.max_size)
            if bound is not None:
                self.metrics.counter("served_from_cache").inc()
                pending.resolve(self._error_response(
                    request.id,
                    SizeLimitExceededError(
                        f"function requires more than {self.handle.max_size} "
                        "gates (cached proof)",
                        lower_bound=bound,
                    ),
                ))
                continue
            hard.append((pending, word, canon))
        # Phase 4: hard queries fan out to the worker pool -- unless the
        # breaker is open or a request's deadline cannot fit a scan, in
        # which case the request degrades to an upper-bound answer from
        # the fallback engine (never an error, never a hung connection).
        if not hard:
            return
        if self.stopping:
            # Draining after shutdown: queued requests still get valid
            # answers, but no new multi-second scan starts.
            for pending, word, _ in hard:
                self._resolve_degraded(pending, word, "shutdown")
            return
        estimate = (
            self.metrics.histogram("scan_seconds").percentile(0.9) or 0.0
        )
        scan_items: list[tuple[PendingRequest, int, int]] = []
        for item in hard:
            pending, word, canon = item
            deadline = pending.deadline
            if deadline is not None and (
                deadline.expired() or deadline.remaining() < estimate
            ):
                self.metrics.counter("deadline_misses").inc()
                self.breaker.record_deadline_miss()
                self._resolve_degraded(pending, word, "deadline")
                continue
            if not self.breaker.allow():
                self._resolve_degraded(pending, word, "breaker_open")
                continue
            scan_items.append(item)
        if not scan_items:
            return
        scan_started = time.perf_counter()
        self.metrics.counter("hard_queries").inc(len(scan_items))
        # Each hard query becomes one cancellable WorkItem.  The token
        # carries the request's deadline, so expiry mid-scan preempts
        # the unit (cooperatively inline, process-level in the pool)
        # instead of merely being noticed afterwards; breaker trips,
        # shutdown, and abandoning connection threads reach the same
        # tokens through the registry / PendingRequest.work_item.
        items = []
        for pending, word, _ in scan_items:
            work = self.tasks.create(
                "scan", payload=word, deadline=pending.deadline
            )
            pending.work_item = work
            items.append(work)
        try:
            with trace_span("service.scan", queries=len(scan_items)):
                self.supervisor.solve_items(items)
        except ServiceError as exc:
            # The pool kept failing even across restarts.  The breaker
            # counts it; the requests degrade rather than error -- the
            # fallback engine runs in-process and owes nothing to the pool.
            self.breaker.record_failure()
            log.error("hard-query batch failed after restarts: %s", exc)
            for (pending, word, _), work in zip(scan_items, items):
                if not work.finished:
                    work.cancel("pool_failure", force=True)
                self._resolve_degraded(pending, word, "pool_failure")
            return
        self.metrics.histogram("scan_seconds").observe(
            time.perf_counter() - scan_started
        )
        missed = 0
        for (pending, word, canon), work in zip(scan_items, items):
            request = pending.request
            state = work.state
            if state == CANCELLED:
                reason = work.token.reason or "cancelled"
                if reason == "deadline":
                    missed += 1
                    self.metrics.counter("deadline_misses").inc()
                    self.breaker.record_deadline_miss()
                self._resolve_degraded(pending, word, reason)
                continue
            if state == DEGRADED:
                log.error(
                    "hard scan for %s degraded: %s",
                    protocol.word_to_hex(word), work.error,
                )
                self._resolve_degraded(pending, word, "scan_error")
                continue
            result = work.result
            if pending.deadline is not None and pending.deadline.expired():
                # The scan finished but blew the budget: the exact answer
                # still goes out (discarding computed work helps nobody),
                # but the miss counts toward tripping the breaker.
                missed += 1
                self.metrics.counter("deadline_misses").inc()
                self.breaker.record_deadline_miss()
            if result.lower_bound is not None:
                self.cache.store_bound(
                    n, canon, result.lower_bound, self.handle.max_size
                )
                pending.resolve(self._error_response(
                    request.id,
                    SizeLimitExceededError(
                        result.message, lower_bound=result.lower_bound
                    ),
                ))
                continue
            self.cache.store_circuit(
                n, canon, word, result.size, result.circuit
            )
            pending.resolve(self._ok_synthesis(
                request, word, result.size, result.circuit, "scan",
                lists_scanned=result.lists_scanned,
                candidates_tested=result.candidates_tested,
            ))
        if not missed:
            self.breaker.record_success()

    def _resolve_degraded(
        self, pending: PendingRequest, word: int, reason: str
    ) -> None:
        """Answer a hard request from the fallback engine.

        The result is a *valid* circuit whose size is only an upper bound
        on the optimum, labeled ``"guarantee": "upper_bound"`` with the
        degradation ``reason`` (``deadline``, ``breaker_open``,
        ``pool_failure``).  Degraded answers are never cached: a later
        uncontended query for the same class deserves the exact scan.
        """
        request = pending.request
        name = self.resilience.fallback_engine
        try:
            engine = self._get_engine(name)
            with self._engine_locks[name]:
                result = engine.synthesize(SynthesisRequest(
                    spec=Permutation(word, self.handle.n_wires),
                    n_wires=self.handle.n_wires,
                ))
        except Exception as exc:  # pragma: no cover - fallback engine broke
            pending.resolve(self._error_response(request.id, exc))
            return
        self.metrics.counter("responses_ok").inc()
        self.metrics.counter("responses_degraded").inc()
        self.metrics.counter(f"degraded_{reason}").inc()
        body = {
            "spec": Permutation(word, self.handle.n_wires).spec(),
            "word": protocol.word_to_hex(word),
            "size": result.size,
            "source": "degraded",
            "guarantee": GUARANTEE_UPPER_BOUND,
            "degraded_reason": reason,
            "tier": name,
        }
        if request.op == "synth":
            body["circuit"] = result.circuit
            body["depth"] = result.depth
            body["cost"] = result.cost
        pending.resolve(protocol.encode_response(request.id, result=body))

    def _resolve_db_hit(
        self, pending: PendingRequest, word: int, canon: int, size: int
    ) -> None:
        """Answer a request whose class is in the database (size <= k)."""
        request = pending.request
        n = self.handle.n_wires
        self.cache.store_size(n, canon, size)
        if request.op == "size":
            pending.resolve(self._ok_synthesis(request, word, size, None, "db"))
            return
        peel_started = time.perf_counter()
        try:
            circuit = peel_minimal_circuit(word, self.handle.database)
        except ReproError as exc:  # pragma: no cover - inconsistent db
            pending.resolve(self._error_response(request.id, exc))
            return
        self.metrics.histogram("peel_seconds").observe(
            time.perf_counter() - peel_started
        )
        text = str(circuit)
        self.cache.store_circuit(n, canon, word, size, text)
        pending.resolve(self._ok_synthesis(request, word, size, text, "db"))

    # ------------------------------------------------------------------
    # Response shaping
    # ------------------------------------------------------------------
    def _ok_synthesis(
        self,
        request: "protocol.Request",
        word: int,
        size: int,
        circuit_text: "str | None",
        source: str,
        **extra,
    ) -> str:
        self.metrics.counter("responses_ok").inc()
        result = {
            "spec": Permutation(word, self.handle.n_wires).spec(),
            "word": protocol.word_to_hex(word),
            "size": size,
            "source": source,
        }
        if request.op == "synth":
            result["circuit"] = circuit_text
            circuit = Circuit.parse(
                circuit_text if circuit_text != "(identity)" else "",
                self.handle.n_wires,
            )
            result["depth"] = circuit.depth()
            result["cost"] = circuit.cost()
        result.update(extra)
        return protocol.encode_response(request.id, result=result)

    def _error_response(self, request_id, exc: BaseException) -> str:
        self.metrics.counter("responses_error").inc()
        return protocol.encode_response(
            request_id, error=protocol.error_envelope(exc)
        )


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class _TCPHandler(socketserver.StreamRequestHandler):
    """One thread per connection; JSONL in, JSONL out."""

    def handle(self) -> None:  # pragma: no cover - exercised via e2e test
        service: SynthesisService = self.server.service  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 1)
            except (ConnectionError, OSError):
                return
            if not line:
                return
            if not line.strip():
                continue
            response = service.handle_line(line.strip())
            if (
                service.faults is not None
                and service.faults.should_drop_connection()
            ):
                # Injected fault: close the connection without writing the
                # response, as a crashed daemon or broken network would.
                return
            try:
                self.wfile.write(response.encode("utf-8") + b"\n")
                self.wfile.flush()
            except (ConnectionError, OSError):
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class TCPDaemon:
    """A TCP front-end bound to one :class:`SynthesisService`.

    Binding to port 0 picks an ephemeral port; read it back from
    :attr:`address` (the end-to-end tests and benchmark do this).
    """

    def __init__(
        self,
        service: SynthesisService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._server = _ThreadingTCPServer((host, port), _TCPHandler)
        self._server.service = service  # type: ignore[attr-defined]
        self._thread: "threading.Thread | None" = None
        service.add_shutdown_hook(self._server.shutdown)

    @property
    def address(self) -> "tuple[str, int]":
        host, port = self._server.server_address[:2]
        return host, port

    def start(self) -> "TCPDaemon":
        """Start the service and serve connections on a background thread."""
        self.service.start()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-tcp",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for ``repro serve`` (Ctrl-C to stop)."""
        self.service.start()
        try:
            self._server.serve_forever(poll_interval=0.1)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Gracefully drain the service and close the listener.

        A serving thread that survives its join timeout is an error, not
        a shrug: it means connections are still being handled after the
        caller was told the daemon stopped.  Surface it.
        """
        self.service.shutdown()
        thread, self._thread = self._thread, None
        try:
            if thread is not None:
                thread.join(timeout=5)
                if thread.is_alive():
                    log.error(
                        "TCP serving thread %s failed to stop within 5s; "
                        "listener state is undefined", thread.name,
                    )
                    raise ServiceError(
                        "TCP serving thread failed to stop within 5s "
                        "(a connection handler is wedged)"
                    )
        finally:
            self._server.server_close()

    def __enter__(self) -> "TCPDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_stdio(service: SynthesisService, stdin=None, stdout=None) -> int:
    """Serve the JSONL protocol over stdio (for subprocess embedding).

    Returns the number of lines served.  EOF triggers graceful shutdown,
    as does a ``shutdown`` request (after its acknowledgement is
    written).
    """
    import sys

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    service.start()
    served = 0
    try:
        for line in stdin:
            if not line.strip():
                continue
            response = service.handle_line(line.strip())
            stdout.write(response + "\n")
            stdout.flush()
            served += 1
            if service.stopping:
                break
    finally:
        service.shutdown()
    return served


__all__ = [
    "ServiceConfig",
    "SynthesisService",
    "TCPDaemon",
    "serve_stdio",
]
