"""Newline-delimited-JSON wire protocol for the synthesis daemon.

One request per line, one response per line, in order of completion
(responses carry the request ``id`` so clients may pipeline).  The same
framing is used over TCP and over stdio.

Request::

    {"id": 7, "op": "synth", "spec": "[1,2,3,...,0]", "wires": 4}

``op`` is one of:

* ``synth``     -- circuit for ``spec`` (string spec, value list, or hex
                   packed word in ``word``).
* ``size``      -- gate count only (no circuit in the response).
* ``compile``   -- compile a Boolean function form (``spec`` is a JSON
                   object with a ``kind`` from
                   :data:`repro.specs.SPEC_KINDS`) to a circuit,
                   embedding map included -- see ``docs/COMPILE.md``.
* ``stats``     -- metrics snapshot and service configuration.
* ``health``    -- resilience status: circuit breaker, pool liveness,
                   cache persistence state.
* ``ping``      -- liveness check.
* ``shutdown``  -- ask the daemon to drain pending requests and exit.
* ``batch``     -- a list of ``synth``/``size``/``compile``
                   sub-requests under
                   ``requests``; the result is ``{"results": [...]}``
                   holding one complete response envelope per
                   sub-request, in order.  A plain daemon answers them
                   sequentially; a sharded router scatter/gathers the
                   slices (see :mod:`repro.service.sharding`).
* ``shards``       -- routing-table + per-shard rollup (router only).
* ``shard_join``   -- add a shard to the ring (router only).
* ``shard_leave``  -- drain a shard and remove it (router only;
                      ``shard`` names which one).

``synth``/``size``/``compile`` requests may carry an ``engine`` field
naming which
synthesis engine answers (see :mod:`repro.engines`); omitted or
``"optimal"`` routes through the daemon's batched optimal pipeline,
other servable engines (``heuristic``, ``depth``, ``linear``) are
served with their own cache keyspace and metrics.  Unknown or
non-servable engine names get a ``protocol`` error envelope.

Work requests may also carry ``deadline_ms``, a positive
integer budget in milliseconds starting when the daemon accepts the
request (queue time counts).  A request whose hard ``A_i``-scan cannot
fit the remaining budget is answered from the fallback engine with
``"guarantee": "upper_bound"`` instead of blocking -- degraded, never
hung.  See ``docs/RESILIENCE.md``.

Success response::

    {"id": 7, "ok": true, "result": {"size": 4, "circuit": "...", ...}}

Error envelope (never a raw traceback)::

    {"id": 7, "ok": false,
     "error": {"kind": "size_limit", "message": "...", "lower_bound": 10}}

``kind`` is machine-readable: ``protocol`` (malformed request),
``invalid_spec``, ``size_limit`` (carries ``lower_bound``), ``shutdown``
(daemon is draining), or ``internal``.

Packed words travel as hex strings (``"0xfa..."``): 4-wire words use all
64 bits and JSON numbers above 2**53 would silently lose precision.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import (
    ProtocolError,
    ReproError,
    ServiceShutdownError,
    SizeLimitExceededError,
)

#: Ops understood by the daemon.
OPS = (
    "synth",
    "size",
    "compile",
    "stats",
    "health",
    "ping",
    "shutdown",
    "batch",
    "shards",
    "shard_join",
    "shard_leave",
)

#: Ops that carry synthesis work (batchable, routable by canonical rep).
WORK_OPS = ("synth", "size", "compile")

#: Maximum accepted line length (guards the reader against garbage input).
MAX_LINE_BYTES = 1 << 20

#: Maximum sub-requests accepted in one ``batch`` op.
MAX_BATCH_REQUESTS = 1024


@dataclass(frozen=True)
class Request:
    """A decoded protocol request."""

    op: str
    id: object = None
    spec: object = None
    word: "str | None" = None
    wires: "int | None" = None
    engine: "str | None" = None
    deadline_ms: "int | None" = None
    options: dict = field(default_factory=dict)

    def spec_value(self):
        """The specification payload: ``spec`` or the hex ``word``."""
        if self.word is not None:
            return int(self.word, 16)
        return self.spec


def word_to_hex(word: int) -> str:
    """Render a packed word for the wire."""
    return f"{word:#x}"


def decode_request(line: "str | bytes") -> Request:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("request line exceeds 1 MiB")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    return decode_payload(payload)


def decode_payload(payload) -> Request:
    """Validate an already-parsed request object (used directly for the
    sub-requests of a ``batch`` op)."""
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    wires = payload.get("wires")
    if wires is not None and (
        not isinstance(wires, int) or not 1 <= wires <= 4
    ):
        raise ProtocolError(f"wires must be an integer in 1..4, got {wires!r}")
    word = payload.get("word")
    if word is not None:
        if not isinstance(word, str):
            raise ProtocolError("word must be a hex string like '0x1234'")
        try:
            int(word, 16)
        except ValueError as exc:
            raise ProtocolError(f"word is not valid hex: {word!r}") from exc
    if op in ("synth", "size") and payload.get("spec") is None and word is None:
        raise ProtocolError(f"op {op!r} requires a 'spec' or 'word' field")
    if op == "compile" and not isinstance(payload.get("spec"), dict):
        raise ProtocolError(
            "op 'compile' requires 'spec' to be a JSON object with a "
            "'kind' field (see repro.specs)"
        )
    engine = payload.get("engine")
    if engine is not None and not isinstance(engine, str):
        raise ProtocolError(f"engine must be a string, got {engine!r}")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None and (
        isinstance(deadline_ms, bool)
        or not isinstance(deadline_ms, int)
        or deadline_ms < 1
    ):
        raise ProtocolError(
            f"deadline_ms must be a positive integer, got {deadline_ms!r}"
        )
    if op == "batch":
        requests = payload.get("requests")
        if not isinstance(requests, list) or not requests:
            raise ProtocolError(
                "op 'batch' requires a non-empty 'requests' list"
            )
        if len(requests) > MAX_BATCH_REQUESTS:
            raise ProtocolError(
                f"batch carries {len(requests)} sub-requests; "
                f"the limit is {MAX_BATCH_REQUESTS}"
            )
        for entry in requests:
            if not isinstance(entry, dict):
                raise ProtocolError("batch sub-requests must be JSON objects")
            if entry.get("op") not in WORK_OPS:
                raise ProtocolError(
                    "batch sub-requests must set 'op' to one of "
                    f"{', '.join(WORK_OPS)}, got {entry.get('op')!r}"
                )
    if op == "shard_leave":
        shard = payload.get("shard")
        if not isinstance(shard, str) or not shard:
            raise ProtocolError(
                "op 'shard_leave' requires a 'shard' string naming the "
                "shard to drain"
            )
    known = {"id", "op", "spec", "word", "wires", "engine", "deadline_ms"}
    options = {k: v for k, v in payload.items() if k not in known}
    return Request(
        op=op,
        id=payload.get("id"),
        spec=payload.get("spec"),
        word=word,
        wires=wires,
        engine=engine,
        deadline_ms=deadline_ms,
        options=options,
    )


def encode_response(
    request_id, result: "dict | None" = None, error: "dict | None" = None
) -> str:
    """Render one response line (without the trailing newline)."""
    if (result is None) == (error is None):
        raise ValueError("exactly one of result/error must be given")
    if error is not None:
        body = {"id": request_id, "ok": False, "error": error}
    else:
        body = {"id": request_id, "ok": True, "result": result}
    return json.dumps(body, separators=(",", ":"), sort_keys=True)


def decode_response(line: "str | bytes") -> dict:
    """Parse one response line into its dict form (client side)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"response is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError("response must be a JSON object with 'ok'")
    return payload


def error_envelope(exc: BaseException) -> dict:
    """Map an exception to the wire error envelope."""
    if isinstance(exc, SizeLimitExceededError):
        return {
            "kind": "size_limit",
            "message": str(exc),
            "lower_bound": exc.lower_bound,
        }
    if isinstance(exc, ProtocolError):
        return {"kind": exc.kind, "message": str(exc)}
    if isinstance(exc, ServiceShutdownError):
        return {"kind": "shutdown", "message": str(exc)}
    if isinstance(exc, ReproError):
        return {"kind": "invalid_spec", "message": str(exc)}
    return {"kind": "internal", "message": f"{type(exc).__name__}: {exc}"}


def raise_for_error(envelope: dict) -> None:
    """Client-side: re-raise the library exception an envelope encodes."""
    kind = envelope.get("kind", "internal")
    message = envelope.get("message", "service error")
    if kind == "size_limit":
        raise SizeLimitExceededError(
            message, lower_bound=int(envelope.get("lower_bound", 0))
        )
    if kind == "shutdown":
        raise ServiceShutdownError(message)
    raise ProtocolError(message, kind=kind)


__all__ = [
    "OPS",
    "WORK_OPS",
    "MAX_LINE_BYTES",
    "MAX_BATCH_REQUESTS",
    "Request",
    "decode_payload",
    "decode_request",
    "decode_response",
    "encode_response",
    "error_envelope",
    "raise_for_error",
    "word_to_hex",
]
