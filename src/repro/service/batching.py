"""Request queue with batch coalescing.

The daemon's dispatcher does not process requests one at a time: it
blocks until at least one request is pending, then waits a short
*coalescing window* for concurrent arrivals and drains everything into
one batch (bounded by ``max_batch``).  The batch then flows through the
vectorized database path -- one ``canonical_np`` + ``lookup_batch`` call
for the whole group instead of per-request ``size_of`` calls -- which is
where the service's throughput under concurrent load comes from.

The window only costs latency when traffic is concurrent enough to
benefit: the very first request in an idle queue is dispatched after at
most ``coalesce_window`` seconds, and a full batch dispatches
immediately.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.errors import ServiceShutdownError


class PendingRequest:
    """A request parked in the queue with its completion signal.

    The connection thread that enqueued it blocks on :meth:`wait`; the
    dispatcher fulfills it with :meth:`resolve`.
    """

    __slots__ = (
        "request", "enqueued_at", "response", "deadline", "work_item",
        "_event",
    )

    def __init__(self, request, deadline=None) -> None:
        self.request = request
        self.enqueued_at = time.perf_counter()
        self.response: "dict | None" = None
        #: Optional :class:`repro.service.resilience.Deadline`, created
        #: at accept time so queue time counts against the budget.
        self.deadline = deadline
        #: The :class:`repro.service.tasks.WorkItem` the dispatcher
        #: attached when this request went to the hard path -- the
        #: handle through which an abandoning connection thread (or
        #: shutdown) can preempt the scan instead of orphaning it.
        self.work_item = None
        self._event = threading.Event()

    def resolve(self, response: dict) -> None:
        self.response = response
        self._event.set()

    def wait(self, timeout: "float | None" = None) -> "dict | None":
        if not self._event.wait(timeout):
            return None
        return self.response


class BatchQueue:
    """Bounded FIFO of :class:`PendingRequest` with coalesced dequeue."""

    def __init__(
        self,
        max_batch: int = 256,
        coalesce_window: float = 0.002,
        max_depth: int = 100_000,
    ) -> None:
        self.max_batch = max_batch
        self.coalesce_window = coalesce_window
        self.max_depth = max_depth
        self._items: "deque[PendingRequest]" = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: PendingRequest) -> None:
        """Enqueue; raises :class:`ServiceShutdownError` once closed."""
        with self._not_empty:
            if self._closed:
                raise ServiceShutdownError(
                    "service is shutting down; request rejected"
                )
            if len(self._items) >= self.max_depth:
                raise ServiceShutdownError(
                    f"request queue is full ({self.max_depth} pending)"
                )
            self._items.append(item)
            self._not_empty.notify()

    def next_batch(self) -> "list[PendingRequest] | None":
        """Block for work, coalesce concurrent arrivals, return a batch.

        Returns None only when the queue is closed *and* fully drained,
        which is the dispatcher's signal to exit.  After close, remaining
        items keep coming out in batches (graceful drain).
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                # Bounded wait: close() notifies, but a bounded loop also
                # survives a missed wakeup instead of parking forever.
                self._not_empty.wait(timeout=0.5)
            # Something is pending.  Give concurrent producers a short
            # window to pile on, unless we already have a full batch or
            # are draining a closed queue (no new producers can arrive).
            if (
                not self._closed
                and self.coalesce_window > 0
                and len(self._items) < self.max_batch
            ):
                deadline = time.monotonic() + self.coalesce_window
                while len(self._items) < self.max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
            batch = []
            while self._items and len(batch) < self.max_batch:
                batch.append(self._items.popleft())
            return batch

    def close(self) -> None:
        """Stop accepting new requests; wake the dispatcher to drain."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain_remaining(self) -> "list[PendingRequest]":
        """Remove and return everything still queued (after close)."""
        with self._not_empty:
            items = list(self._items)
            self._items.clear()
            return items


__all__ = ["BatchQueue", "PendingRequest"]
