"""Blocking JSONL client for the synthesis daemon.

One socket, one request per call; thread-unsafe by design (each client
thread opens its own connection, which is also what exercises the
daemon's batch coalescing).  Errors come back as the library exceptions
they encode -- a ``size_limit`` envelope raises
:class:`SizeLimitExceededError` with the proven bound, exactly like the
in-process API.

Failure handling is typed and retry-aware:

* Connect failures raise :class:`ServiceConnectError` (refused /
  unreachable) or :class:`ServiceTimeoutError` with ``phase="connect"``
  -- the request never reached the daemon, so retrying is always safe.
* Read failures raise :class:`ServiceTimeoutError` with ``phase="read"``
  or :class:`ServiceError` -- the daemon may have executed the request,
  so only *idempotent* ops are retried (see :data:`SAFE_RETRY_OPS`;
  ``synth``/``size`` answers are pure functions of the canonical
  representative, so re-asking is harmless; ``shutdown`` is not re-sent).
* Pass a :class:`repro.service.resilience.RetryPolicy` to enable
  automatic reconnect-and-retry with exponential backoff and
  deterministic (seeded) jitter.
"""

from __future__ import annotations

import json
import random
import socket
import time

from repro.errors import (
    ProtocolError,
    ServiceConnectError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.service import protocol
from repro.service.resilience import RetryPolicy

#: Ops whose effects are idempotent, hence safe to retry after a *read*
#: failure (the daemon may have already executed the first attempt).
#: ``batch`` qualifies because its sub-requests are restricted to the
#: idempotent work ops; ``shards`` is a read-only rollup.  Membership
#: ops (``shard_join``/``shard_leave``) and ``shutdown`` are not here:
#: re-sending them is not provably safe.
SAFE_RETRY_OPS = (
    "synth",
    "size",
    "compile",
    "ping",
    "stats",
    "health",
    "batch",
    "shards",
)


class ServiceClient:
    """Talk to a running daemon over TCP.

    Usage::

        with ServiceClient("127.0.0.1", 7878) as client:
            result = client.synth("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
            print(result["size"], result["circuit"])

    ``connect_timeout`` bounds the TCP handshake (fail-fast default:
    5 s), ``read_timeout`` bounds each response wait (default: 60 s, the
    worst-case hard scan is long).  The legacy single ``timeout``
    argument sets both.  ``retry`` enables automatic retries with
    backoff; ``retry_seed`` makes the jitter schedule reproducible.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7878,
        timeout: "float | None" = None,
        *,
        connect_timeout: "float | None" = None,
        read_timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
        retry_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = (
            connect_timeout
            if connect_timeout is not None
            else (timeout if timeout is not None else 5.0)
        )
        self.read_timeout = (
            read_timeout
            if read_timeout is not None
            else (timeout if timeout is not None else 60.0)
        )
        self.retry = retry
        self._rng = random.Random(retry_seed)
        self._sock: "socket.socket | None" = None
        self._file = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
            except socket.timeout as exc:
                raise ServiceTimeoutError(
                    f"connect to daemon at {self.host}:{self.port} timed "
                    f"out after {self.connect_timeout}s",
                    phase="connect",
                ) from exc
            except OSError as exc:
                raise ServiceConnectError(
                    f"cannot connect to daemon at {self.host}:{self.port}: {exc}"
                ) from exc
            # Past the handshake every wait is a *read* wait.
            self._sock.settimeout(self.read_timeout)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def set_read_timeout(self, seconds: float) -> None:
        """Change the per-response wait, applying it to a live socket
        too (the shard router adjusts this per forwarded request)."""
        self.read_timeout = seconds
        if self._sock is not None:
            self._sock.settimeout(seconds)

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Raw request plumbing
    # ------------------------------------------------------------------
    def request_raw(self, payload: dict) -> dict:
        """Send one already-shaped request dict, return the envelope."""
        self.connect()
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        try:
            self._file.write(line.encode("utf-8"))
            self._file.flush()
            response = self._file.readline()
        except socket.timeout as exc:
            self.close()
            raise ServiceTimeoutError(
                f"daemon did not respond within {self.read_timeout}s",
                phase="read",
            ) from exc
        except OSError as exc:
            self.close()
            raise ServiceError(f"connection to daemon lost: {exc}") from exc
        if not response:
            self.close()
            raise ServiceError("daemon closed the connection")
        if not response.endswith(b"\n"):
            # The peer died mid-write: a partial line would raise
            # ProtocolError from the decoder, which is *not* retriable.
            # Surface it as the transport failure it really is, so the
            # retry policy can re-ask for idempotent ops.
            self.close()
            raise ServiceError(
                "connection dropped mid-response (truncated line)"
            )
        return protocol.decode_response(response)

    def request(self, op: str, **fields) -> dict:
        """Send a request, raise on error envelope, return the result.

        With a :class:`RetryPolicy` configured, failed attempts are
        retried (after a backoff sleep) when retrying is provably safe:
        connect-phase failures always are -- the daemon never saw the
        request -- read-phase failures only for :data:`SAFE_RETRY_OPS`.
        The request keeps its ``id`` across attempts.
        """
        self._next_id += 1
        payload = {"id": self._next_id, "op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        attempts = self.retry.retries if self.retry is not None else 0
        attempt = 0
        while True:
            try:
                envelope = self.request_raw(payload)
                break
            except (ServiceConnectError, ServiceTimeoutError, ServiceError) as exc:
                if attempt >= attempts or not self._retriable(op, exc):
                    raise
                time.sleep(self.retry.delay(attempt, self._rng))
                attempt += 1
        if envelope.get("id") != self._next_id:
            raise ProtocolError(
                f"response id {envelope.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not envelope.get("ok"):
            protocol.raise_for_error(envelope.get("error", {}))
        return envelope.get("result", {})

    @staticmethod
    def _retriable(op: str, exc: ServiceError) -> bool:
        """Is retrying this failure safe for this op?"""
        if isinstance(exc, ServiceConnectError):
            return True
        if isinstance(exc, ServiceTimeoutError) and exc.phase == "connect":
            return True
        # Read-phase failure: the daemon may have executed the request.
        return op in SAFE_RETRY_OPS

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def synth(
        self,
        spec,
        wires: "int | None" = None,
        engine: "str | None" = None,
        deadline_ms: "int | None" = None,
    ) -> dict:
        """Circuit for a spec; raises SizeLimitExceededError when the
        function is out of the serving engine's reach.  ``engine`` picks
        which daemon-side engine answers (default: the optimal one);
        ``deadline_ms`` caps server-side latency -- a hard query that
        cannot fit the budget comes back with ``"guarantee":
        "upper_bound"`` instead of blocking."""
        return self.request(
            "synth",
            engine=engine,
            deadline_ms=deadline_ms,
            **self._spec_fields(spec, wires),
        )

    def size(
        self,
        spec,
        wires: "int | None" = None,
        engine: "str | None" = None,
        deadline_ms: "int | None" = None,
    ) -> int:
        """Gate count for a spec (optimal unless ``engine`` says else)."""
        return int(
            self.request(
                "size",
                engine=engine,
                deadline_ms=deadline_ms,
                **self._spec_fields(spec, wires),
            )["size"]
        )

    def compile(
        self,
        spec,
        wires: "int | None" = None,
        engine: "str | None" = None,
        deadline_ms: "int | None" = None,
        samples: "int | None" = None,
    ) -> dict:
        """Compile a Boolean function form to a circuit.

        ``spec`` is either a :mod:`repro.specs` form (anything with a
        ``to_wire`` method) or its wire dict (``{"kind": ..., ...}``).
        The result carries the circuit, the ``guarantee``
        (``optimal``/``upper_bound``), and the ``embedding`` map in the
        caller's terms -- see ``docs/COMPILE.md``.  ``samples`` bounds
        the sampled completion search; idempotent, hence retry-safe.
        """
        if hasattr(spec, "to_wire"):
            spec = spec.to_wire()
        return self.request(
            "compile",
            spec=spec,
            wires=wires,
            engine=engine,
            deadline_ms=deadline_ms,
            samples=samples,
        )

    def stats(self) -> dict:
        return self.request("stats")

    def health(self) -> dict:
        """The daemon's resilience status (breaker, pool, cache)."""
        return self.request("health")

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit."""
        return self.request("shutdown")

    def batch(
        self, requests, deadline_ms: "int | None" = None
    ) -> "list[dict]":
        """Submit many ``synth``/``size``/``compile`` sub-requests in
        one round trip.

        ``requests`` is a list of request dicts (each needs at least
        ``op`` plus a spec field).  Returns the per-request envelopes in
        order -- each is ``{"id", "ok", "result"|"error"}``; a failed
        sub-request never poisons its siblings.
        """
        result = self.request(
            "batch", requests=list(requests), deadline_ms=deadline_ms
        )
        return result.get("results", [])

    def shards(self) -> dict:
        """Cluster membership rollup (routers only)."""
        return self.request("shards")

    def shard_join(self, shard: "str | None" = None) -> dict:
        """Ask a router to spawn and join a new shard."""
        return self.request("shard_join", shard=shard)

    def shard_leave(self, shard: str) -> dict:
        """Ask a router to drain a shard out of the cluster."""
        return self.request("shard_leave", shard=shard)

    @staticmethod
    def _spec_fields(spec, wires: "int | None") -> dict:
        if isinstance(spec, int):
            return {"word": protocol.word_to_hex(spec), "wires": wires}
        if hasattr(spec, "word") and hasattr(spec, "n_wires"):  # Permutation
            return {
                "word": protocol.word_to_hex(spec.word),
                "wires": spec.n_wires,
            }
        if not isinstance(spec, str):
            spec = list(spec)
        return {"spec": spec, "wires": wires}


__all__ = ["SAFE_RETRY_OPS", "ServiceClient"]
