"""Blocking JSONL client for the synthesis daemon.

One socket, one request per call; thread-unsafe by design (each client
thread opens its own connection, which is also what exercises the
daemon's batch coalescing).  Errors come back as the library exceptions
they encode -- a ``size_limit`` envelope raises
:class:`SizeLimitExceededError` with the proven bound, exactly like the
in-process API.
"""

from __future__ import annotations

import json
import socket

from repro.errors import ProtocolError, ServiceError
from repro.service import protocol


class ServiceClient:
    """Talk to a running daemon over TCP.

    Usage::

        with ServiceClient("127.0.0.1", 7878) as client:
            result = client.synth("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
            print(result["size"], result["circuit"])
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7878, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: "socket.socket | None" = None
        self._file = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                raise ServiceError(
                    f"cannot connect to daemon at {self.host}:{self.port}: {exc}"
                ) from exc
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Raw request plumbing
    # ------------------------------------------------------------------
    def request_raw(self, payload: dict) -> dict:
        """Send one already-shaped request dict, return the envelope."""
        self.connect()
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        try:
            self._file.write(line.encode("utf-8"))
            self._file.flush()
            response = self._file.readline()
        except OSError as exc:
            self.close()
            raise ServiceError(f"connection to daemon lost: {exc}") from exc
        if not response:
            self.close()
            raise ServiceError("daemon closed the connection")
        return protocol.decode_response(response)

    def request(self, op: str, **fields) -> dict:
        """Send a request, raise on error envelope, return the result."""
        self._next_id += 1
        payload = {"id": self._next_id, "op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        envelope = self.request_raw(payload)
        if envelope.get("id") != self._next_id:
            raise ProtocolError(
                f"response id {envelope.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not envelope.get("ok"):
            protocol.raise_for_error(envelope.get("error", {}))
        return envelope.get("result", {})

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def synth(
        self, spec, wires: "int | None" = None, engine: "str | None" = None
    ) -> dict:
        """Circuit for a spec; raises SizeLimitExceededError when the
        function is out of the serving engine's reach.  ``engine`` picks
        which daemon-side engine answers (default: the optimal one)."""
        return self.request(
            "synth", engine=engine, **self._spec_fields(spec, wires)
        )

    def size(
        self, spec, wires: "int | None" = None, engine: "str | None" = None
    ) -> int:
        """Gate count for a spec (optimal unless ``engine`` says else)."""
        return int(
            self.request(
                "size", engine=engine, **self._spec_fields(spec, wires)
            )["size"]
        )

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit."""
        return self.request("shutdown")

    @staticmethod
    def _spec_fields(spec, wires: "int | None") -> dict:
        if isinstance(spec, int):
            return {"word": protocol.word_to_hex(spec), "wires": wires}
        if hasattr(spec, "word") and hasattr(spec, "n_wires"):  # Permutation
            return {
                "word": protocol.word_to_hex(spec.word),
                "wires": spec.n_wires,
            }
        if not isinstance(spec, str):
            spec = list(spec)
        return {"spec": spec, "wires": wires}


__all__ = ["ServiceClient"]
