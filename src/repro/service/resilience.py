"""Resilience primitives for the synthesis service.

The meet-in-the-middle lookup has a wildly bimodal cost profile: a hash
hit answers in microseconds, a hard ``A_i``-scan runs for seconds.  A
daemon serving heavy traffic therefore needs machinery that treats the
two regimes differently and survives the failure modes the hard path
invites.  This module collects that machinery:

* :class:`Deadline` -- a monotonic per-request budget carried from the
  protocol's ``deadline_ms`` field through the batch queue.
* :class:`CircuitBreaker` -- closed/open/half-open state around the
  hard-query pool; trips on consecutive pool failures *or* deadline
  misses, sheds hard queries into the degraded fallback while open,
  and probes its way closed again after a cooldown.
* :class:`RetryPolicy` -- client-side exponential backoff with bounded,
  deterministic (seeded-RNG) jitter.
* :class:`WorkerSupervisor` -- owns the :class:`HardQueryPool`, bounds
  every batch with a wall-clock timeout, detects dead or hung workers
  (a killed worker's task is silently lost by ``multiprocessing.Pool``,
  so the timeout *is* the detector), restarts the pool, and requeues
  the in-flight batch.
* :class:`ResilienceConfig` -- all tuning knobs, read from
  ``ServiceConfig.extra["resilience"]``.

Everything here is deterministic given its injected clock/RNG, which is
what lets the chaos suite (``tests/test_chaos.py``) drive every
recovery path reproducibly.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, fields

from repro.errors import ServiceError, WorkerPoolError


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs for the service's resilience layer.

    Lives in ``ServiceConfig.extra["resilience"]`` (a plain dict of
    these field names) so the stable :class:`ServiceConfig` surface does
    not grow a field per knob.
    """

    #: Consecutive hard-path failures (pool errors or deadline misses)
    #: that trip the breaker open.
    breaker_failure_threshold: int = 5
    #: Seconds the breaker stays open before letting a probe through.
    breaker_cooldown: float = 30.0
    #: Wall-clock bound on one hard-query batch; a batch that exceeds it
    #: is treated as a dead/hung worker and the pool is restarted.
    hard_timeout: float = 120.0
    #: Pool restarts attempted per batch before giving up on the scan
    #: (the batch then degrades instead of erroring).
    max_restarts: int = 2
    #: Server-side cap on how long a connection thread stays parked on
    #: a queued request; the backstop that guarantees no hung connection.
    request_timeout: float = 600.0
    #: Engine answering degraded (upper-bound) responses.  Must be
    #: daemon-servable and cheap; the MMD heuristic is both.
    fallback_engine: str = "heuristic"

    @classmethod
    def from_extra(cls, extra: "dict | None") -> "ResilienceConfig":
        """Build from ``ServiceConfig.extra``; unknown keys are errors
        (a typo silently disabling supervision would be worse)."""
        raw = dict((extra or {}).get("resilience", {}))
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - valid)
        if unknown:
            raise ServiceError(
                f"unknown resilience option(s): {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(valid))})"
            )
        return cls(**raw)


class Deadline:
    """A monotonic expiry instant for one request.

    Created when the daemon *accepts* the request, so queue time counts
    against the budget -- a request that waited out its deadline in the
    batch queue is already late before any work starts.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, seconds: float, clock=time.monotonic) -> None:
        self._clock = clock
        self.expires_at = clock() + seconds

    @classmethod
    def from_ms(
        cls, deadline_ms: "int | None", clock=time.monotonic
    ) -> "Deadline | None":
        """A deadline for a protocol ``deadline_ms`` field (None = no
        deadline)."""
        if deadline_ms is None:
            return None
        return cls(deadline_ms / 1000.0, clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


class CircuitBreaker:
    """Closed/open/half-open breaker around the hard-query pool.

    * **closed** -- normal operation; consecutive failures are counted.
    * **open** -- tripped by ``failure_threshold`` consecutive failures
      or deadline misses; every :meth:`allow` is refused (the dispatcher
      degrades hard queries without touching the pool) until
      ``cooldown`` seconds have passed.
    * **half-open** -- after the cooldown one probe batch is allowed
      through; success closes the breaker, failure re-opens it and
      restarts the cooldown.

    Thread-safe: the dispatcher drives it, connection threads snapshot
    it for ``health``/``stats``.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
        on_trip=None,
    ) -> None:
        if failure_threshold < 1:
            raise ServiceError(
                f"breaker failure threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.on_trip = on_trip
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: "float | None" = None
        self._trips = 0
        self._deadline_misses = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a hard query touch the pool right now?

        While open, flips to half-open (and allows the probe) once the
        cooldown has elapsed.
        """
        with self._lock:
            if self._state == self.OPEN:
                if (
                    self._opened_at is not None
                    and self._clock() - self._opened_at >= self.cooldown
                ):
                    self._state = self.HALF_OPEN
                    return True
                return False
            return True

    def record_success(self) -> None:
        """A hard batch completed: reset the failure run, close."""
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED
            self._opened_at = None

    def record_failure(self) -> None:
        """A hard batch failed (pool error after supervision gave up)."""
        self._note_failure()

    def record_deadline_miss(self) -> None:
        """A hard query missed its deadline; counts toward tripping."""
        self._note_failure(deadline_miss=True)

    def _note_failure(self, deadline_miss: bool = False) -> None:
        tripped = False
        with self._lock:
            if deadline_miss:
                self._deadline_misses += 1
            self._failures += 1
            if (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                if self._state != self.OPEN:
                    self._trips += 1
                    tripped = True
                self._state = self.OPEN
                self._opened_at = self._clock()
        # Invoked outside the lock: the trip hook preempts in-flight
        # hard work (cancels the dispatcher's work items), and that path
        # re-enters breaker snapshots from other threads.
        if tripped and self.on_trip is not None:
            self.on_trip()

    def snapshot(self) -> dict:
        """JSON-ready state for ``health``/``stats``."""
        with self._lock:
            open_for = (
                self._clock() - self._opened_at
                if self._state == self.OPEN and self._opened_at is not None
                else None
            )
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
                "trips": self._trips,
                "deadline_misses": self._deadline_misses,
                "open_for": open_for,
            }


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded jitter for the service client.

    ``delay(attempt, rng)`` is ``base * factor**attempt`` capped at
    ``backoff_max``, spread by up to ``jitter`` (a fraction) in both
    directions.  The RNG is injected so tests (and clients that care)
    get deterministic schedules.
    """

    retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1

    def delay(self, attempt: int, rng: "random.Random | None" = None) -> float:
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt),
        )
        if rng is None or self.jitter <= 0.0:
            return base
        spread = self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, base * (1.0 + spread))


class WorkerSupervisor:
    """Owns the hard-query pool and keeps it answering.

    ``multiprocessing.Pool`` silently loses the task of a worker that
    dies mid-computation (the pool respawns the process, but nobody
    re-submits the work), and a hung worker blocks ``map`` forever.  The
    supervisor therefore bounds every batch with ``hard_timeout``; a
    timeout or pool error is treated as a dead/hung worker, the pool is
    torn down and rebuilt, and the whole in-flight batch is requeued on
    the fresh pool.  After ``max_restarts`` failed attempts the batch
    error escapes to the dispatcher, which degrades those requests to
    upper-bound answers instead of failing them.
    """

    def __init__(
        self,
        pool,
        *,
        hard_timeout: float = 120.0,
        max_restarts: int = 2,
        metrics=None,
        faults=None,
    ) -> None:
        self._lock = threading.Lock()
        self._pool = pool
        self.hard_timeout = hard_timeout
        self.max_restarts = max_restarts
        self.metrics = metrics
        self.faults = faults
        self._restarts = 0
        self._batch_retries = 0
        self._closed = False

    @property
    def pool(self):
        with self._lock:
            return self._pool

    @property
    def restarts(self) -> int:
        return self._restarts

    def solve_many(self, words: "list[int]") -> list:
        """Solve a hard batch, restarting the pool and requeueing on
        worker death or hang; raises :class:`WorkerPoolError` only after
        ``max_restarts`` attempts failed."""
        attempts = 0
        while True:
            pool = self.pool
            try:
                return pool.solve_many(
                    words,
                    timeout=self.hard_timeout,
                    on_dispatch=self._on_dispatch,
                )
            except WorkerPoolError:
                attempts += 1
                if attempts > self.max_restarts:
                    raise
                self.restart()
                with self._lock:
                    self._batch_retries += 1
                if self.metrics is not None:
                    self.metrics.counter("hard_batch_retries").inc()

    def solve_items(self, items: list) -> list:
        """Solve a group of work items with the same restart/requeue
        policy as :meth:`solve_many`, plus preemption:

        * :class:`WorkPreempted` (every in-flight item cancelled while
          running in worker processes) restarts the pool -- the
          process-level kill for non-cooperative work -- and returns
          immediately; the cancelled items are already terminal.
        * A timeout or pool error restarts and resubmits only the items
          that are not yet terminal, so finished work survives retries.
        """
        from repro.service.workers import WorkPreempted

        attempts = 0
        while True:
            open_items = [item for item in items if not item.finished]
            if not open_items:
                return items
            pool = self.pool
            try:
                pool.solve_items(
                    open_items,
                    timeout=self.hard_timeout,
                    on_dispatch=self._on_dispatch,
                )
                return items
            except WorkPreempted:
                self.restart()
                return items
            except WorkerPoolError:
                attempts += 1
                if attempts > self.max_restarts:
                    raise
                self.restart()
                with self._lock:
                    self._batch_retries += 1
                if self.metrics is not None:
                    self.metrics.counter("hard_batch_retries").inc()

    def _on_dispatch(self, pool) -> None:
        """Fault-injection hook: runs after a batch is handed to the
        pool but before the supervisor starts waiting on it."""
        if self.faults is not None:
            self.faults.kill_workers(pool)

    def restart(self) -> None:
        """Tear down the current pool and build a fresh one."""
        with self._lock:
            if self._closed:
                raise ServiceError("supervisor is closed")
            old = self._pool
            self._pool = old.restarted()
            self._restarts += 1
        if self.metrics is not None:
            self.metrics.counter("pool_restarts").inc()

    def liveness(self) -> dict:
        """JSON-ready pool status for ``health``/``stats``."""
        pool = self.pool
        alive = pool.alive_workers()
        dead = max(0, pool.processes - alive) if pool.is_parallel else 0
        return {
            "parallel": pool.is_parallel,
            "processes": pool.processes,
            "alive": alive,
            "dead": dead,
            "restarts": self._restarts,
            "batch_retries": self._batch_retries,
        }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool = self._pool
        pool.close()


__all__ = [
    "CircuitBreaker",
    "Deadline",
    "ResilienceConfig",
    "RetryPolicy",
    "WorkerSupervisor",
]
