"""Synthesis service layer: a long-lived daemon over the optimal database.

The paper's database is "compute once, query forever"; this package is
the *query forever* half.  A daemon loads the :class:`OptimalDatabase`
once, then serves synthesis queries over a newline-delimited-JSON
protocol (TCP or stdio) with batch coalescing through the vectorized
lookup path, a result cache keyed by canonical representative, a
multiprocessing pool for hard queries, and a metrics registry exposed
via the ``stats`` request.  See ``docs/SERVICE.md``.

The hard-query path is wrapped in a resilience layer -- circuit
breaker, worker supervision, per-request deadlines with graceful
degradation, crash-safe cache persistence, and a deterministic
fault-injection harness -- documented in ``docs/RESILIENCE.md``.
"""

from repro.service.batching import BatchQueue, PendingRequest
from repro.service.cache import CacheHit, ResultCache
from repro.service.client import ServiceClient
from repro.service.daemon import (
    ServiceConfig,
    SynthesisService,
    TCPDaemon,
    serve_stdio,
)
from repro.service.faults import FaultInjector, FaultPlan, FaultSpec
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.resilience import (
    CircuitBreaker,
    Deadline,
    ResilienceConfig,
    RetryPolicy,
    WorkerSupervisor,
)
from repro.service.tasks import CancelToken, TaskRegistry, WorkItem
from repro.service.workers import HardQueryPool, HardResult, WorkPreempted

__all__ = [
    "BatchQueue",
    "CacheHit",
    "CancelToken",
    "CircuitBreaker",
    "Counter",
    "Deadline",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "Gauge",
    "HardQueryPool",
    "HardResult",
    "Histogram",
    "MetricsRegistry",
    "PendingRequest",
    "ResilienceConfig",
    "ResultCache",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "SynthesisService",
    "TCPDaemon",
    "TaskRegistry",
    "WorkItem",
    "WorkPreempted",
    "WorkerSupervisor",
    "serve_stdio",
]
