"""Representative test-set generation for heuristic synthesizers.

One of the paper's stated goals (Sections 1 and 5): "construction of a
representative set of functions that could be used to test heuristic
synthesis algorithms against."  Because the optimal size of every
generated function is known, a heuristic's quality can be scored as its
overhead over optimum, per size stratum.

The generator samples canonical representatives stratified by optimal
size (sizes below the database depth), optionally widening each stratum
with random class members so heuristics cannot overfit canonical forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import equivalence
from repro.core.permutation import Permutation
from repro.rng.mt19937 import MersenneTwister


@dataclass(frozen=True)
class TestCase:
    """One scored entry of the generated suite.

    Attributes:
        permutation: The function to synthesize.
        optimal_size: Its provably minimal NCT gate count.
    """

    permutation: Permutation
    optimal_size: int

    def spec_line(self) -> str:
        """Serialized ``<optimal_size> <spec>`` line."""
        return f"{self.optimal_size} {self.permutation.spec()}"


@dataclass
class TestSuite:
    """A size-stratified suite of functions with known optimal sizes."""

    n_wires: int
    cases: list[TestCase]

    def by_size(self) -> dict[int, list[TestCase]]:
        out: dict[int, list[TestCase]] = {}
        for case in self.cases:
            out.setdefault(case.optimal_size, []).append(case)
        return out

    def save(self, path) -> None:
        """Write one ``<size> <spec>`` line per case."""
        from pathlib import Path

        lines = [case.spec_line() for case in self.cases]
        Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")

    @staticmethod
    def load(path, n_wires: int = 4) -> "TestSuite":
        from pathlib import Path

        from repro.core.spec import parse_spec

        cases = []
        for line in Path(path).read_text(encoding="ascii").splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            size_text, spec_text = line.split(" ", 1)
            cases.append(
                TestCase(
                    permutation=Permutation.from_values(parse_spec(spec_text)),
                    optimal_size=int(size_text),
                )
            )
        return TestSuite(n_wires=n_wires, cases=cases)

    def score_heuristic(self, synthesize) -> "HeuristicScore":
        """Run ``synthesize(permutation) -> Circuit`` over the suite.

        Every returned circuit is verified; incorrect circuits raise.
        """
        per_size: dict[int, tuple[int, int]] = {}
        total_optimal = total_heuristic = 0
        for case in self.cases:
            circuit = synthesize(case.permutation)
            if not circuit.implements(case.permutation):
                raise AssertionError(
                    f"heuristic produced a wrong circuit for "
                    f"{case.permutation.spec()}"
                )
            opt, heur = per_size.get(case.optimal_size, (0, 0))
            per_size[case.optimal_size] = (
                opt + case.optimal_size,
                heur + circuit.gate_count,
            )
            total_optimal += case.optimal_size
            total_heuristic += circuit.gate_count
        return HeuristicScore(
            total_optimal=total_optimal,
            total_heuristic=total_heuristic,
            per_size={
                size: (heur / opt if opt else 1.0)
                for size, (opt, heur) in sorted(per_size.items())
            },
        )


@dataclass(frozen=True)
class HeuristicScore:
    """Overhead profile of a heuristic over the optimal baseline."""

    total_optimal: int
    total_heuristic: int
    per_size: dict[int, float]

    @property
    def overhead(self) -> float:
        """Total heuristic gates / total optimal gates (1.0 = optimal)."""
        if self.total_optimal == 0:
            return 1.0
        return self.total_heuristic / self.total_optimal


def generate_suite(
    db,
    per_size: int = 10,
    seed: int = 5489,
    randomize_class_members: bool = True,
) -> TestSuite:
    """Stratified suite from an :class:`OptimalDatabase`.

    Args:
        db: Database whose representatives are sampled.
        per_size: Cases per size stratum (sizes 1..k).
        seed: Sampling seed (deterministic suites).
        randomize_class_members: Replace each canonical representative by
            a random member of its equivalence class, so suites do not
            consist solely of canonical forms.
    """
    rng = MersenneTwister(seed)
    cases: list[TestCase] = []
    for size in range(1, db.k + 1):
        reps = db.reps_by_size[size]
        if reps.shape[0] == 0:
            continue
        for _ in range(min(per_size, reps.shape[0])):
            word = int(reps[rng.next_below(reps.shape[0])])
            if randomize_class_members:
                members = sorted(equivalence.equivalence_class(word, db.n_wires))
                word = members[rng.next_below(len(members))]
            cases.append(
                TestCase(
                    permutation=Permutation(word, db.n_wires),
                    optimal_size=size,
                )
            )
    return TestSuite(n_wires=db.n_wires, cases=cases)
