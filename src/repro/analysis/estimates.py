"""Estimating the full size distribution from samples (paper Table 4).

The paper reports exact counts of 4-bit functions of size 0..9 and then
*estimates* sizes 10..17 "using random function size distribution ... and
optimal synthesis of all 3-bit reversible functions".  The estimator here
is the natural one: a uniformly-sampled frequency, scaled by the group
order ``(2^n)!``.

Because n = 3 is fully enumerable (8! = 40,320 functions), we can run the
whole methodology end-to-end there -- exact distribution, sampled
estimate, and their agreement -- which validates the estimator that the
4-bit experiment must rely on.  ``exact_distribution_3bit`` doubles as
the reproduction of Shende et al.'s classic result that every 3-bit
reversible function is synthesizable (the paper's reference [15]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.distribution import SizeDistribution


def group_order(n_wires: int) -> int:
    """Number of n-bit reversible functions: (2^n)!  (paper: N = 2^n!)."""
    return math.factorial(1 << n_wires)


def estimate_total_counts(
    dist: SizeDistribution, n_wires: int
) -> list[tuple[int, float]]:
    """Scale sampled frequencies to estimated absolute counts.

    Returns ``(size, estimated_count)`` pairs for each observed size, the
    computation behind the "~" rows of the paper's Table 4.
    """
    total = group_order(n_wires)
    sample = dist.total
    if sample == 0:
        raise ValueError("empty sample")
    return [
        (size, count / sample * total)
        for size, count in enumerate(dist.counts)
        if count
    ]


def exact_distribution_3bit() -> list[int]:
    """Exact number of 3-bit functions per optimal size (full enumeration).

    A complete BFS over all 8! = 40,320 functions with the 12-gate NCT
    library on three wires; the list sums to 40,320 and its length - 1 is
    L(3), the 3-bit analogue of the paper's L(4).
    """
    from repro.engines import create_engine

    # Depth bound far above L(3); the BFS stops early on its own.
    result = create_engine("plain-bfs", n_wires=3, k=32).result
    counts = result.counts
    while counts and counts[-1] == 0:
        counts.pop()
    if sum(counts) != group_order(3):
        raise AssertionError("3-bit enumeration incomplete")
    return counts


@dataclass(frozen=True)
class EstimatorValidation:
    """Outcome of validating the sampling estimator on n = 3.

    Attributes:
        exact: Exact counts per size.
        estimated: Estimated counts per size from the sample.
        max_relative_error: Largest relative error over sizes whose exact
            count is at least ``support_threshold``.
    """

    exact: list[int]
    estimated: list[float]
    max_relative_error: float


def validate_estimator_on_3bit(
    n_samples: int = 4000, seed: int = 5489, support_threshold: int = 100
) -> EstimatorValidation:
    """Run the paper's estimation methodology where ground truth exists.

    Samples random 3-bit permutations, sizes them against the exhaustive
    table, scales frequencies by 8!, and compares with the exact counts.
    """
    from repro.engines import create_engine
    from repro.rng.sampling import PermutationSampler

    exact = exact_distribution_3bit()
    table = create_engine("plain-bfs", n_wires=3, k=32).result

    sampler = PermutationSampler(3, seed=seed)
    dist = SizeDistribution(bound=None)
    for _ in range(n_samples):
        size = table.size_of(sampler.sample_word())
        if size is None:
            raise AssertionError("3-bit table is exhaustive; lookup failed")
        dist.add(size)

    estimated_pairs = dict(estimate_total_counts(dist, 3))
    estimated = [estimated_pairs.get(size, 0.0) for size in range(len(exact))]
    errors = [
        abs(estimated[size] - exact[size]) / exact[size]
        for size in range(len(exact))
        if exact[size] >= support_threshold
    ]
    return EstimatorValidation(
        exact=exact,
        estimated=estimated,
        max_relative_error=max(errors) if errors else 0.0,
    )


#: Exact counts from the paper's Table 4 (sizes 0..9), used as reference
#: anchors in tests and benchmark reports.
PAPER_TABLE4_FUNCTIONS: dict[int, int] = {
    0: 1,
    1: 32,
    2: 784,
    3: 16204,
    4: 294507,
    5: 4807552,
    6: 70763560,
    7: 932651938,
    8: 10804681959,
    9: 105984823653,
}

#: Reduced (equivalence-class) counts from Table 4.
PAPER_TABLE4_REDUCED: dict[int, int] = {
    0: 1,
    1: 4,
    2: 33,
    3: 425,
    4: 6538,
    5: 101983,
    6: 1482686,
    7: 19466575,
    8: 225242556,
    9: 2208511226,
}

#: The paper's Table 3: sizes of 10,000,000 random 4-bit permutations.
PAPER_TABLE3_RANDOM: dict[int, int] = {
    5: 3,
    6: 24,
    7: 455,
    8: 5269,
    9: 50861,
    10: 392108,
    11: 2051507,
    12: 5110943,
    13: 2371039,
    14: 17191,
}

#: The paper's Table 5: all 4-bit linear reversible functions by size.
PAPER_TABLE5_LINEAR: list[int] = [
    1,
    16,
    162,
    1206,
    6589,
    26182,
    72062,
    118424,
    84225,
    13555,
    138,
]
