"""Analysis: size distributions, tail estimation, hard-permutation search."""

from repro.analysis.distribution import SizeDistribution, sample_distribution
from repro.analysis.estimates import (
    estimate_total_counts,
    exact_distribution_3bit,
    validate_estimator_on_3bit,
)
from repro.analysis.hard import HardSearchResult, extension_search, full_enumeration
from repro.analysis.reed_muller import ReedMullerSpectrum, degree_profile
from repro.analysis.testgen import TestSuite, generate_suite

__all__ = [
    "SizeDistribution",
    "sample_distribution",
    "estimate_total_counts",
    "exact_distribution_3bit",
    "validate_estimator_on_3bit",
    "HardSearchResult",
    "extension_search",
    "full_enumeration",
    "ReedMullerSpectrum",
    "degree_profile",
    "TestSuite",
    "generate_suite",
]
