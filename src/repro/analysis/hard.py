"""Searching for hard permutations (paper Section 4.5).

The paper ran a 12-hour search extending known 13- and 14-gate optimal
circuits with extra gates at both ends, looking (unsuccessfully) for a
permutation needing more than 14 gates.  This module reproduces the
method at our scale:

* :func:`extension_search` -- take seed functions of the maximal known
  size, prepend/append library gates, and measure the size of the result;
  report the hardest function found.
* :func:`full_enumeration` -- for n = 3 the question closes exactly: a
  complete BFS determines L(3) and the full distribution, the miniature
  of the paper's "computing all numbers in Table 4 exactly" future-work
  item.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import packed
from repro.core.gates import all_gates
from repro.core.permutation import Permutation
from repro.errors import SizeLimitExceededError


@dataclass(frozen=True)
class HardSearchResult:
    """Outcome of a hard-permutation search.

    Attributes:
        hardest_size: The largest optimal size observed (or proven lower
            bound when the search engine's L was exceeded).
        hardest_word: A function attaining it.
        exceeded_bound: True when a function beyond the engine's reach was
            found (its exact size is then unknown, only >= hardest_size).
        candidates_examined: Extension candidates evaluated.
    """

    hardest_size: int
    hardest_word: int
    exceeded_bound: bool
    candidates_examined: int

    def hardest_permutation(self, n_wires: int) -> Permutation:
        return Permutation(self.hardest_word, n_wires)


def extension_search(
    search_engine,
    seeds: "list[int]",
    n_wires: int,
    max_candidates: "int | None" = None,
    cancel=None,
) -> HardSearchResult:
    """Extend seed functions by one gate at each end, keeping the hardest.

    ``search_engine`` must offer ``size_of(word)`` raising
    :class:`SizeLimitExceededError` beyond its bound.  Seeds should be
    functions of the largest size already in hand (the paper used its 13-
    and 14-gate circuits).

    ``cancel`` is an optional zero-argument cooperative checkpoint run
    before each candidate's (expensive) ``size_of`` query; it may abort
    the search by raising, and whatever it raises propagates untouched.
    """
    library = [g.to_word(n_wires) for g in all_gates(n_wires)]
    best_size = -1
    best_word = packed.identity(n_wires)
    exceeded = False
    examined = 0
    for seed in seeds:
        for gate_word in library:
            for candidate in (
                packed.compose(seed, gate_word, n_wires),  # gate appended
                packed.compose(gate_word, seed, n_wires),  # gate prepended
            ):
                if cancel is not None:
                    cancel()
                examined += 1
                try:
                    size = search_engine.size_of(candidate)
                    is_exceeded = False
                except SizeLimitExceededError as exc:
                    size = exc.lower_bound
                    is_exceeded = True
                if size > best_size or (size == best_size and is_exceeded):
                    best_size = size
                    best_word = candidate
                    exceeded = is_exceeded
                if max_candidates is not None and examined >= max_candidates:
                    return HardSearchResult(
                        hardest_size=best_size,
                        hardest_word=best_word,
                        exceeded_bound=exceeded,
                        candidates_examined=examined,
                    )
    return HardSearchResult(
        hardest_size=best_size,
        hardest_word=best_word,
        exceeded_bound=exceeded,
        candidates_examined=examined,
    )


@dataclass(frozen=True)
class FullEnumeration:
    """Exact answer to the hard-permutation question for small n.

    Attributes:
        n_wires: Wire count.
        counts: Exact functions per optimal size.
        max_size: L(n), the size of the hardest function.
        hardest_count: How many functions attain L(n).
    """

    n_wires: int
    counts: list[int]
    max_size: int
    hardest_count: int


def full_enumeration(n_wires: int = 3) -> FullEnumeration:
    """Complete BFS settling L(n) exactly (practical for n <= 3).

    For n = 3 this reproduces the classic full enumeration (the paper's
    reference [15]) in under a second.
    """
    from repro.engines import create_engine

    result = create_engine("plain-bfs", n_wires=n_wires, k=64).result
    counts = [c for c in result.counts]
    while counts and counts[-1] == 0:
        counts.pop()
    import math

    if sum(counts) != math.factorial(1 << n_wires):
        raise AssertionError("enumeration did not cover the full group")
    return FullEnumeration(
        n_wires=n_wires,
        counts=counts,
        max_size=len(counts) - 1,
        hardest_count=counts[-1],
    )
