"""Circuit-size distributions over random permutations (paper Section 4.1).

The paper synthesized 10,000,000 uniformly random 4-bit permutations and
reported the distribution of their optimal sizes (Table 3) together with
the weighted average of 11.94 gates per circuit.  At our scale the sample
is smaller and the search bound ``L`` may censor the upper tail; the
:class:`SizeDistribution` type carries the censored count explicitly so
every downstream computation states what it knows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.permutation import Permutation
from repro.errors import SizeLimitExceededError
from repro.rng.sampling import PermutationSampler


@dataclass
class SizeDistribution:
    """Histogram of optimal circuit sizes, possibly right-censored.

    Attributes:
        counts: ``counts[s]`` = number of observations of size ``s``.
        censored: Observations whose size exceeded the search bound.
        bound: The search bound L (sizes > bound are censored).
    """

    counts: list[int] = field(default_factory=list)
    censored: int = 0
    bound: "int | None" = None

    def add(self, size: int) -> None:
        """Record one observed size."""
        if size >= len(self.counts):
            self.counts.extend([0] * (size + 1 - len(self.counts)))
        self.counts[size] += 1

    def add_censored(self) -> None:
        """Record one observation beyond the bound."""
        self.censored += 1

    @property
    def total(self) -> int:
        """Total observations including censored ones."""
        return sum(self.counts) + self.censored

    @property
    def observed(self) -> int:
        """Observations with an exactly known size."""
        return sum(self.counts)

    def weighted_average(self) -> float:
        """Average size over the *observed* part of the sample.

        When ``censored > 0`` this is a lower bound on the true average;
        :meth:`weighted_average_bounds` gives an interval.
        """
        if self.observed == 0:
            raise ValueError("empty distribution")
        return (
            sum(size * count for size, count in enumerate(self.counts))
            / self.observed
        )

    def weighted_average_bounds(self, max_conceivable: int = 17) -> tuple[float, float]:
        """(low, high) bounds on the average size including censored mass.

        Censored observations are >= bound + 1 and (following the paper's
        conjecture that no 4-bit permutation needs more than 17 gates)
        <= ``max_conceivable``.
        """
        if self.total == 0:
            raise ValueError("empty distribution")
        known = sum(size * count for size, count in enumerate(self.counts))
        lo_bound = (self.bound + 1) if self.bound is not None else 0
        low = (known + self.censored * lo_bound) / self.total
        high = (known + self.censored * max_conceivable) / self.total
        return low, high

    def fractions(self) -> list[float]:
        """Observed fraction per size (relative to the full sample)."""
        return [count / self.total for count in self.counts]

    def format_table(self, title: str = "Size  Functions") -> str:
        """Render in the descending-size style of the paper's Table 3."""
        lines = [title]
        if self.censored:
            lines.append(f">{self.bound}   {self.censored}")
        for size in range(len(self.counts) - 1, -1, -1):
            if self.counts[size]:
                lines.append(f"{size:<5d} {self.counts[size]}")
        return "\n".join(lines)

    def merge(self, other: "SizeDistribution") -> "SizeDistribution":
        """Combine two histograms (bounds must agree)."""
        if self.bound != other.bound:
            raise ValueError("cannot merge distributions with different bounds")
        merged = SizeDistribution(bound=self.bound)
        length = max(len(self.counts), len(other.counts))
        merged.counts = [
            (self.counts[i] if i < len(self.counts) else 0)
            + (other.counts[i] if i < len(other.counts) else 0)
            for i in range(length)
        ]
        merged.censored = self.censored + other.censored
        return merged


def sample_distribution(
    search_engine,
    n_samples: int,
    seed: int = 5489,
    n_wires: int = 4,
    progress=None,
) -> SizeDistribution:
    """Synthesize ``n_samples`` uniformly random permutations and collect
    their optimal-size distribution (the paper's Section 4.1 experiment).

    ``search_engine`` needs a ``size_of(word) -> int`` method raising
    :class:`SizeLimitExceededError` beyond its bound (both
    :class:`repro.synth.search.MeetInTheMiddleSearch` and
    :class:`repro.synth.synthesizer.OptimalSynthesizer`'s engine qualify).
    """
    sampler = PermutationSampler(n_wires, seed=seed)
    bound = getattr(search_engine, "max_size", None)
    dist = SizeDistribution(bound=bound)
    for index in range(n_samples):
        word = sampler.sample_word()
        try:
            dist.add(search_engine.size_of(word))
        except SizeLimitExceededError:
            dist.add_censored()
        if progress is not None and (index + 1) % 25 == 0:
            progress(index + 1, n_samples)
    return dist


def chi_squared_uniformity(observed: list[int], expected: list[float]) -> float:
    """Pearson chi-squared statistic (used by the RNG quality tests)."""
    if len(observed) != len(expected):
        raise ValueError("length mismatch")
    return sum(
        (obs - exp) ** 2 / exp for obs, exp in zip(observed, expected) if exp > 0
    )
