"""Positive-polarity Reed--Muller (ANF) spectra of reversible functions.

The paper defines linear reversible functions spectrally: "those whose
positive polarity Reed-Muller polynomial has only linear terms"
(Section 4.3).  This module computes the algebraic normal form of each
output bit of a reversible function, giving an independent
characterization that cross-validates the GF(2)-matrix view of
:mod:`repro.synth.gf2` and a degree profile useful for classifying
benchmark functions.

The ANF of a Boolean function ``f: {0,1}^n -> {0,1}`` is the unique XOR
of AND-monomials; coefficient ``c_m`` (for a monomial given by variable
mask ``m``) is computed by the Möbius/butterfly transform over GF(2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.permutation import Permutation


def anf_transform(truth_column: list[int]) -> list[int]:
    """Möbius transform: truth table -> ANF coefficient vector.

    ``truth_column[x]`` is the function value at input ``x``; the result
    maps monomial mask ``m`` to its coefficient.  The transform is an
    involution over GF(2).
    """
    size = len(truth_column)
    if size & (size - 1):
        raise ValueError("truth table length must be a power of two")
    coefficients = list(truth_column)
    stride = 1
    while stride < size:
        for block in range(0, size, stride * 2):
            for offset in range(stride):
                low = block + offset
                coefficients[low + stride] ^= coefficients[low]
        stride *= 2
    return coefficients


def anf_to_terms(coefficients: list[int], n_vars: int) -> list[str]:
    """Readable monomial list, e.g. ``['1', 'a', 'b·c']`` (wire letters)."""
    from repro.core.gates import WIRE_NAMES

    terms = []
    for mask, coefficient in enumerate(coefficients):
        if not coefficient:
            continue
        if mask == 0:
            terms.append("1")
        else:
            terms.append(
                "·".join(
                    WIRE_NAMES[v] for v in range(n_vars) if (mask >> v) & 1
                )
            )
    return terms


def anf_degree(coefficients: list[int]) -> int:
    """Algebraic degree: largest monomial size with coefficient 1."""
    degree = 0
    for mask, coefficient in enumerate(coefficients):
        if coefficient:
            degree = max(degree, bin(mask).count("1"))
    return degree


@dataclass(frozen=True)
class ReedMullerSpectrum:
    """Per-output ANF data of a reversible function.

    Attributes:
        n_wires: Wire count.
        output_anfs: ``output_anfs[bit]`` is the ANF coefficient vector
            of output bit ``bit``.
    """

    n_wires: int
    output_anfs: tuple[tuple[int, ...], ...]

    @staticmethod
    def of(perm: Permutation) -> "ReedMullerSpectrum":
        columns = []
        for bit in range(perm.n_wires):
            truth = [(perm(x) >> bit) & 1 for x in range(1 << perm.n_wires)]
            columns.append(tuple(anf_transform(truth)))
        return ReedMullerSpectrum(
            n_wires=perm.n_wires, output_anfs=tuple(columns)
        )

    def degree(self) -> int:
        """Maximal algebraic degree over the outputs.

        Degree <= 1 characterizes the paper's "linear reversible
        functions" (NOT/CNOT circuits); reversible functions of maximal
        degree n - 1 need the widest Toffoli gates.
        """
        return max(anf_degree(list(anf)) for anf in self.output_anfs)

    def is_linear(self) -> bool:
        """Paper §4.3's spectral test: only linear (and constant) terms."""
        return self.degree() <= 1

    def output_terms(self, bit: int) -> list[str]:
        """Readable ANF of one output bit."""
        return anf_to_terms(list(self.output_anfs[bit]), self.n_wires)

    def term_count(self) -> int:
        """Total number of monomials across outputs (spectral weight)."""
        return sum(sum(anf) for anf in self.output_anfs)


def degree_profile(perm: Permutation) -> list[int]:
    """Algebraic degree of each output bit."""
    spectrum = ReedMullerSpectrum.of(perm)
    return [anf_degree(list(anf)) for anf in spectrum.output_anfs]
