"""Optimal synthesis of linear reversible circuits (paper Section 4.3).

Linear reversible functions (computable by NOT and CNOT gates) form a
group of 322,560 elements for n = 4 -- small enough to enumerate
exhaustively.  The paper synthesized optimal circuits for all of them in
under two seconds and reports the size distribution in Table 5; the
hardest 138 functions require 10 gates.

This module runs a complete breadth-first search over that group with
the 16-gate NOT/CNOT library, producing both the exact Table 5
distribution and, via peeling, an optimal circuit for any linear
function.  No symmetry reduction is applied (the group is tiny), which
also gives the tests an independent cross-check of the reduced engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import packed
from repro.core.circuit import Circuit
from repro.core.gates import Gate, linear_gates
from repro.core.permutation import Permutation
from repro.errors import SynthesisError
from repro.hashing.table import LinearProbingTable


@dataclass
class LinearDatabase:
    """Exhaustive optimal-size table for the NOT/CNOT group.

    Attributes:
        n_wires: Wire count.
        table: Map packed word -> optimal NOT/CNOT gate count.
        counts: ``counts[s]`` = number of linear functions of size s
            (Table 5 of the paper for n = 4).
    """

    n_wires: int
    table: LinearProbingTable
    counts: list[int]

    @property
    def max_size(self) -> int:
        """The largest optimal size in the group (10 for n = 4)."""
        return len(self.counts) - 1

    @property
    def total_functions(self) -> int:
        """Group order (322,560 for n = 4)."""
        return sum(self.counts)

    def size_of(self, word: int) -> "int | None":
        """Optimal linear gate count, or None if not a linear function."""
        # repro: allow[unrouted-lookup] the linear database enumerates the whole affine group raw (no §3.2 reduction), so raw keys are exact
        return self.table.get(word)


def build_linear_database(n_wires: int = 4) -> LinearDatabase:
    """Exhaustive BFS over the affine group with NOT and CNOT gates."""
    gates = linear_gates(n_wires)
    gate_words = np.array([g.to_word(n_wires) for g in gates], dtype=np.uint64)

    table = LinearProbingTable(capacity_bits=8)
    identity = packed.identity(n_wires)
    table.insert(identity, 0)
    counts = [1]
    frontier = np.array([identity], dtype=np.uint64)
    size = 0
    from repro.core.packed_np import compose_np

    while frontier.size:
        size += 1
        candidate_blocks = [
            compose_np(frontier, gate_word, n_wires) for gate_word in gate_words
        ]
        candidates = np.unique(np.concatenate(candidate_blocks))
        # repro: allow[unrouted-lookup] exhaustive raw BFS over the affine group; the table holds every member, not canonical reps
        fresh = candidates[~table.contains_batch(candidates)]
        if fresh.size == 0:
            break
        table.insert_batch(fresh, np.uint8(size))
        counts.append(int(fresh.size))
        frontier = fresh
    return LinearDatabase(n_wires=n_wires, table=table, counts=counts)


class LinearSynthesizer:
    """Optimal NOT/CNOT synthesis for linear reversible functions.

    Builds the exhaustive database on first use (about a second for
    n = 4) and synthesizes by gate peeling.
    """

    def __init__(self, n_wires: int = 4):
        self.n_wires = n_wires
        self._db: "LinearDatabase | None" = None
        self._library: "list[tuple[Gate, int]] | None" = None

    @property
    def database(self) -> LinearDatabase:
        if self._db is None:
            self._db = build_linear_database(self.n_wires)
        if self._library is None:
            self._library = [
                (g, g.to_word(self.n_wires)) for g in linear_gates(self.n_wires)
            ]
        return self._db

    def size(self, spec) -> int:
        """Optimal NOT/CNOT gate count for a linear function."""
        perm = Permutation.coerce(spec, self.n_wires)
        size = self.database.size_of(perm.word)
        if size is None:
            raise SynthesisError(
                f"{perm.spec()} is not a linear reversible function"
            )
        return size

    def synthesize(self, spec) -> Circuit:
        """A provably minimal NOT/CNOT circuit for a linear function."""
        perm = Permutation.coerce(spec, self.n_wires)
        db = self.database
        size = db.size_of(perm.word)
        if size is None:
            raise SynthesisError(
                f"{perm.spec()} is not a linear reversible function"
            )
        gates: list[Gate] = []
        current = perm.word
        remaining = size
        while remaining > 0:
            for gate, gate_word in self._library:
                rest = packed.compose(current, gate_word, self.n_wires)
                if db.size_of(rest) == remaining - 1:
                    gates.append(gate)
                    current = rest
                    remaining -= 1
                    break
            else:
                raise SynthesisError("linear database inconsistent")
        gates.reverse()
        return Circuit(gates=tuple(gates), n_wires=self.n_wires)

    def hardest_functions(self) -> list[Permutation]:
        """All linear functions attaining the maximal optimal size.

        For n = 4 these are the 138 ten-gate functions of Table 5; the
        paper exhibits one of them, a,b,c,d -> b⊕1, a⊕c⊕1, d⊕1, a.
        """
        db = self.database
        keys, values = db.table.items()
        hardest = keys[values == db.max_size]
        return [Permutation(int(w), self.n_wires) for w in np.sort(hardest)]
