"""Breadth-first search over equivalence classes (paper Algorithm 2).

Starting from the identity, each level composes every known function of
size ``i - 1`` (and its inverse) with every library gate, canonicalizes
the result, and keeps the classes not seen before: those have size
exactly ``i``.  Two engines are provided:

* :func:`build_database` -- the production engine: chunked, numpy-
  vectorized, size-only storage (circuits are reconstructed by peeling).
* :func:`bfs_reference` -- a direct scalar transcription of the paper's
  Algorithm 2, including the per-representative witness gate and its
  first/last flag.  It is used as the ground truth in tests.

Correctness of expanding representatives and their inverses only: every
function g of size i factors as g = f·λ with size(f) = i - 1.  Writing
f = σ⁻¹ r σ (or σ⁻¹ r⁻¹ σ) for the canonical representative r of f's
class, conjugating the factorization by σ shows that some member of g's
class equals r·λ' (or r⁻¹·λ') for a library gate λ' -- precisely the
candidates the BFS generates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import equivalence, packed
from repro.core.gates import Gate, all_gates
from repro.core.packed_np import canonical_np, compose_np, inverse_np
from repro.perf.trace import trace
from repro.synth.database import OptimalDatabase


def build_database(
    n_wires: int,
    k: int,
    gates: "list[Gate] | None" = None,
    chunk: int = 1 << 18,
    progress=None,
) -> OptimalDatabase:
    """Run the vectorized BFS up to size ``k`` and return the database.

    Args:
        n_wires: Wire count (2..4).
        k: Maximum circuit size to enumerate.
        gates: Gate library; defaults to the full NCT library.
        chunk: Frontier chunk size for memory-bounded expansion.
        progress: Optional callback ``progress(level, n_new_classes)``.
    """
    if gates is None:
        gates = all_gates(n_wires)
    gate_words = np.array(
        [g.to_word(n_wires) for g in gates], dtype=np.uint64
    )

    identity = packed.identity(n_wires)
    reps_by_size: list[np.ndarray] = [np.array([identity], dtype=np.uint64)]
    db = OptimalDatabase.from_reps(n_wires, 0, reps_by_size)
    table = db.table

    frontier = reps_by_size[0]
    with trace("bfs.build", n_wires=n_wires, k=k):
        for size in range(1, k + 1):
            with trace("bfs.level", level=size) as span:
                sources = np.unique(
                    np.concatenate([frontier, inverse_np(frontier, n_wires)])
                )
                fresh_pieces: list[np.ndarray] = []
                for start in range(0, sources.shape[0], chunk):
                    block = sources[start : start + chunk]
                    for gate_word in gate_words:
                        candidates = compose_np(block, gate_word, n_wires)
                        canon = np.unique(canonical_np(candidates, n_wires))
                        fresh = canon[~table.contains_batch(canon)]
                        if fresh.size:
                            table.insert_batch(fresh, np.uint8(size))
                            fresh_pieces.append(fresh)
                if fresh_pieces:
                    frontier = np.sort(np.concatenate(fresh_pieces))
                else:
                    frontier = np.empty(0, dtype=np.uint64)
                reps_by_size.append(frontier)
                if span is not None:
                    span.attrs["classes"] = int(frontier.shape[0])
            if progress is not None:
                progress(size, int(frontier.shape[0]))
            if frontier.shape[0] == 0:
                # The whole group is exhausted below k: pad the remaining
                # levels with empty arrays and stop searching.
                for _ in range(size + 1, k + 1):
                    reps_by_size.append(np.empty(0, dtype=np.uint64))
                break

    db.k = k
    db.reps_by_size = reps_by_size
    return db


# ----------------------------------------------------------------------
# Scalar reference engine (faithful Algorithm 2, with witnesses)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Witness:
    """Per-representative reconstruction hint, as stored by the paper.

    ``gate`` is the first or last gate of a minimal circuit for the
    canonical representative; ``is_last`` tells which end it belongs to.
    """

    size: int
    gate: "Gate | None"
    is_last: bool


def bfs_reference(
    n_wires: int, k: int, gates: "list[Gate] | None" = None
) -> dict[int, Witness]:
    """Scalar BFS storing witness gates, transcribing Algorithm 2.

    Returns a dict mapping each canonical representative of size <= k to
    its :class:`Witness`.  Exponentially slower than
    :func:`build_database`; intended for tests and small parameters.
    """
    if gates is None:
        gates = all_gates(n_wires)
    gate_words = [(g, g.to_word(n_wires)) for g in gates]

    identity = packed.identity(n_wires)
    known: dict[int, Witness] = {
        identity: Witness(size=0, gate=None, is_last=True)
    }
    frontier = [identity]
    for size in range(1, k + 1):
        sources = set(frontier)
        sources.update(packed.inverse(f, n_wires) for f in frontier)
        new_reps: list[int] = []
        for f in sorted(sources):
            for gate, gate_word in gate_words:
                h = packed.compose(f, gate_word, n_wires)
                canon = equivalence.canonical(h, n_wires)
                if canon in known:
                    continue
                witness = _make_witness(h, canon, gate, size, n_wires)
                known[canon] = witness
                new_reps.append(canon)
        frontier = new_reps
        if not frontier:
            break
    return known


def _make_witness(
    h: int, canon: int, gate: Gate, size: int, n_wires: int
) -> Witness:
    """Translate the last gate of ``h`` into a witness for ``canon``.

    If ``canon`` is a conjugate of ``h`` by σ, the relabeled gate is the
    *last* gate of a minimal circuit for ``canon``; if ``canon`` is a
    conjugate of ``h⁻¹``, it is the *first* gate (paper Algorithm 2).
    """
    sigma = equivalence.find_conjugating_perm(h, canon, n_wires)
    if sigma is not None:
        return Witness(size=size, gate=gate.relabeled(sigma), is_last=True)
    h_inv = packed.inverse(h, n_wires)
    sigma = equivalence.find_conjugating_perm(h_inv, canon, n_wires)
    if sigma is None:
        raise AssertionError(
            "canonical representative is neither a conjugate of the "
            "function nor of its inverse"
        )
    return Witness(size=size, gate=gate.relabeled(sigma), is_last=False)


def reconstruct_from_witnesses(
    canon: int, witnesses: dict[int, Witness], n_wires: int
) -> list[Gate]:
    """Minimal circuit for a canonical representative, following witness
    gates exactly as the paper's Algorithm 1 fast path does.

    Returns the gate list in application order.
    """
    gates_front: list[Gate] = []
    gates_back: list[Gate] = []
    current = canon
    while True:
        witness = witnesses[current]
        if witness.size == 0:
            break
        gate = witness.gate
        gate_word = gate.to_word(n_wires)
        if witness.is_last:
            # current = rest·gate  =>  rest = current·gate (involution)
            rest = packed.compose(current, gate_word, n_wires)
            gates_back.insert(0, gate)
        else:
            # current = gate·rest  =>  rest = gate·current
            rest = packed.compose(gate_word, current, n_wires)
            gates_front.append(gate)
        expected = witness.size - 1
        rest_canon = equivalence.canonical(rest, n_wires)
        if witnesses[rest_canon].size != expected:
            raise AssertionError("witness chain inconsistent")
        # The remainder may only be *equivalent* to a stored representative;
        # continue the walk on the representative of the remainder's class,
        # keeping track is unnecessary because we only need sizes -- but to
        # emit actual gates we must stay on `rest` itself.  Peel `rest`
        # directly using sizes from the witness table.
        current = rest
        if rest != rest_canon:
            # Fall back to size-directed peeling for non-canonical remainders.
            sizes = {c: w.size for c, w in witnesses.items()}
            middle = _peel_with_sizes(rest, expected, sizes, n_wires)
            return gates_front + middle + gates_back
    return gates_front + gates_back


def _peel_with_sizes(
    word: int, size: int, sizes: dict[int, int], n_wires: int
) -> list[Gate]:
    """Peel a minimal circuit using a canon->size map only."""
    out: list[Gate] = []
    current = word
    remaining = size
    library = [(g, g.to_word(n_wires)) for g in all_gates(n_wires)]
    while remaining > 0:
        for gate, gate_word in library:
            rest = packed.compose(current, gate_word, n_wires)
            if sizes.get(equivalence.canonical(rest, n_wires)) == remaining - 1:
                out.insert(0, gate)
                current = rest
                remaining -= 1
                break
        else:
            raise AssertionError("size map inconsistent during peeling")
    return out
