"""Depth-optimal synthesis (paper Section 5, second extension).

"To optimize depth, one needs to consider a different family of gates,
where, for instance, sequence NOT(a) CNOT(b,c) is counted as a single
gate."  Concretely: a *layer* is a non-empty set of NCT gates with
pairwise disjoint wire support, all of which fire simultaneously; the
depth of a circuit is the minimal number of layers.

This module enumerates all layers (103 on four wires), runs the same
symmetry-reduced BFS over layers, and synthesizes depth-optimal circuits
by layer peeling.  Layers are products of commuting involutions and the
layer set is closed under wire relabeling, so the canonical-representative
reduction remains sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import equivalence, packed
from repro.core.circuit import Circuit
from repro.core.gates import Gate, all_gates
from repro.core.permutation import Permutation
from repro.errors import SynthesisError


def all_layers(n_wires: int) -> list[tuple[Gate, ...]]:
    """All non-empty sets of gates with pairwise disjoint support.

    Gates within a layer are sorted (deterministic order).  For n = 4 the
    NCT library yields 103 layers; single-gate layers come first.
    """
    library = all_gates(n_wires)
    layers: list[tuple[Gate, ...]] = []

    def extend(start: int, chosen: list[Gate], used: frozenset[int]) -> None:
        for idx in range(start, len(library)):
            gate = library[idx]
            if used & gate.support:
                continue
            layers.append(tuple(chosen + [gate]))
            extend(idx + 1, chosen + [gate], used | gate.support)

    extend(0, [], frozenset())
    layers.sort(key=lambda layer: (len(layer), layer))
    return layers


def layer_word(layer: tuple[Gate, ...], n_wires: int) -> int:
    """Packed permutation of a layer (order irrelevant: disjoint support)."""
    word = packed.identity(n_wires)
    for gate in layer:
        word = packed.compose(word, gate.to_word(n_wires), n_wires)
    return word


@dataclass
class DepthDatabase:
    """Optimal depth per equivalence class, up to ``max_depth``."""

    n_wires: int
    max_depth: int
    depths: dict[int, int]

    def depth_of(self, word: int) -> "int | None":
        """Minimal depth, or None when above the explored bound."""
        return self.depths.get(equivalence.canonical(word, self.n_wires))

    def counts_by_depth(self) -> list[int]:
        """Number of equivalence classes at each optimal depth."""
        out = [0] * (max(self.depths.values()) + 1)
        for depth in self.depths.values():
            out[depth] += 1
        return out


def build_depth_database(n_wires: int, max_depth: int) -> DepthDatabase:
    """Symmetry-reduced BFS where one step appends a whole layer."""
    import numpy as np

    from repro.core.packed_np import canonical_np, compose_np, inverse_np
    from repro.hashing.table import LinearProbingTable

    layer_words = np.array(
        sorted({layer_word(layer, n_wires) for layer in all_layers(n_wires)}),
        dtype=np.uint64,
    )
    identity = packed.identity(n_wires)
    table = LinearProbingTable(capacity_bits=12)
    table.insert(identity, 0)
    depths: dict[int, int] = {identity: 0}
    frontier = np.array([identity], dtype=np.uint64)
    for depth in range(1, max_depth + 1):
        sources = np.unique(
            np.concatenate([frontier, inverse_np(frontier, n_wires)])
        )
        fresh_pieces = []
        for lw in layer_words:
            candidates = np.unique(
                canonical_np(compose_np(sources, lw, n_wires), n_wires)
            )
            # repro: allow[unrouted-lookup] candidates are canonical_np output (np.unique preserves canonicity), already routed
            fresh = candidates[~table.contains_batch(candidates)]
            if fresh.size:
                table.insert_batch(fresh, np.uint8(depth))
                fresh_pieces.append(fresh)
        if not fresh_pieces:
            break
        frontier = np.concatenate(fresh_pieces)
        for word in frontier.tolist():
            depths[word] = depth
    return DepthDatabase(n_wires=n_wires, max_depth=max_depth, depths=depths)


class DepthOptimalSynthesizer:
    """Exact minimum-depth synthesis for functions within the depth bound."""

    def __init__(self, n_wires: int = 4, max_depth: int = 4):
        self.n_wires = n_wires
        self.max_depth = max_depth
        self._db: "DepthDatabase | None" = None
        self._layers: "list[tuple[tuple[Gate, ...], int]] | None" = None

    @property
    def database(self) -> DepthDatabase:
        if self._db is None:
            self._db = build_depth_database(self.n_wires, self.max_depth)
            self._layers = [
                (layer, layer_word(layer, self.n_wires))
                for layer in all_layers(self.n_wires)
            ]
        return self._db

    def depth(self, spec) -> int:
        """Minimal circuit depth of ``spec``."""
        perm = Permutation.coerce(spec, self.n_wires)
        depth = self.database.depth_of(perm.word)
        if depth is None:
            raise SynthesisError(
                f"function depth exceeds the search bound {self.max_depth}"
            )
        return depth

    def synthesize(self, spec) -> Circuit:
        """A provably depth-minimal circuit (layers flattened left-to-right).

        The returned circuit's :meth:`Circuit.depth` equals
        :meth:`depth` of the specification.
        """
        perm = Permutation.coerce(spec, self.n_wires)
        db = self.database
        total = self.depth(perm)
        gates: list[Gate] = []
        current = perm.word
        remaining = total
        while remaining > 0:
            for layer, lw in self._layers:
                rest = packed.compose(current, lw, self.n_wires)
                if db.depth_of(rest) == remaining - 1:
                    gates[:0] = layer
                    current = rest
                    remaining -= 1
                    break
            else:
                raise SynthesisError("depth database inconsistent during peel")
        circuit = Circuit(gates=tuple(gates), n_wires=self.n_wires)
        if not circuit.implements(perm):
            raise AssertionError("depth-optimal peel produced a wrong circuit")
        return circuit
