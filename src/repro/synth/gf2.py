"""GF(2) linear algebra for linear reversible functions (paper Section 4.3).

The paper calls a reversible function *linear* when it is computable by
NOT and CNOT gates alone; equivalently, f(x) = A·x ⊕ c for an invertible
matrix A over GF(2) and a constant vector c (an *affine* map in linear-
algebra terms; we follow the paper's terminology and keep "linear" for
the class, with `is_strictly_linear` for the c = 0 case).

Matrices are stored as tuples of row bitmasks: row ``i`` is an integer
whose bit ``j`` is ``A[i][j]``; the map sends x to the vector whose bit
``i`` is ``parity(row_i & x)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import packed
from repro.core.bitops import popcount
from repro.errors import InvalidPermutationError


@dataclass(frozen=True)
class AffineMap:
    """An affine map x -> A·x ⊕ c over GF(2)^n.

    Attributes:
        rows: Row bitmasks of A (length n).
        constant: The additive constant c as a bitmask.
    """

    rows: tuple[int, ...]
    constant: int

    @property
    def n(self) -> int:
        return len(self.rows)

    def apply(self, x: int) -> int:
        """Evaluate the map at a bit vector."""
        y = self.constant
        for i, row in enumerate(self.rows):
            y ^= (popcount(row & x) & 1) << i
        return y

    def to_word(self) -> int:
        """Packed-permutation encoding (requires A invertible)."""
        if not self.is_invertible():
            raise InvalidPermutationError("affine map is not invertible")
        word = 0
        for x in range(1 << self.n):
            word |= self.apply(x) << (4 * x)
        return word

    def is_invertible(self) -> bool:
        """True iff A has full rank over GF(2)."""
        return rank(list(self.rows)) == self.n

    def is_strictly_linear(self) -> bool:
        """True iff c = 0 (computable by CNOT gates alone)."""
        return self.constant == 0


def rank(rows: list[int]) -> int:
    """Rank of a GF(2) matrix given as row bitmasks (Gaussian elimination)."""
    rows = [r for r in rows]
    rank_count = 0
    for bit_pos in range(max((r.bit_length() for r in rows), default=0)):
        pivot = None
        for idx in range(rank_count, len(rows)):
            if (rows[idx] >> bit_pos) & 1:
                pivot = idx
                break
        if pivot is None:
            continue
        rows[rank_count], rows[pivot] = rows[pivot], rows[rank_count]
        for idx in range(len(rows)):
            if idx != rank_count and (rows[idx] >> bit_pos) & 1:
                rows[idx] ^= rows[rank_count]
        rank_count += 1
    return rank_count


def matrix_inverse(rows: tuple[int, ...]) -> tuple[int, ...]:
    """Inverse of an invertible GF(2) matrix (Gauss-Jordan).

    Raises :class:`InvalidPermutationError` when singular.
    """
    n = len(rows)
    work = list(rows)
    inverse = [1 << i for i in range(n)]
    for col in range(n):
        pivot = None
        for idx in range(col, n):
            if (work[idx] >> col) & 1:
                pivot = idx
                break
        if pivot is None:
            raise InvalidPermutationError("matrix is singular over GF(2)")
        work[col], work[pivot] = work[pivot], work[col]
        inverse[col], inverse[pivot] = inverse[pivot], inverse[col]
        for idx in range(n):
            if idx != col and (work[idx] >> col) & 1:
                work[idx] ^= work[col]
                inverse[idx] ^= inverse[col]
    return tuple(inverse)


def matrix_multiply(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Product A·B of GF(2) matrices in row-bitmask form."""
    n = len(a)
    # Column j of the product has bit i = parity(row_i(A) & col_j(B));
    # compute via B transposed.
    bt = transpose(b)
    return tuple(
        sum(((popcount(a[i] & bt[j]) & 1) << j) for j in range(n))
        for i in range(n)
    )


def transpose(rows: tuple[int, ...]) -> tuple[int, ...]:
    """Transpose of a GF(2) matrix in row-bitmask form."""
    n = len(rows)
    return tuple(
        sum((((rows[i] >> j) & 1) << i) for i in range(n)) for j in range(n)
    )


def affine_from_permutation(perm) -> "AffineMap | None":
    """Recover the affine map realizing ``perm``, or None when not affine.

    ``perm`` is a :class:`repro.core.permutation.Permutation`.  The
    candidate is read off from f(0) and f(e_i); a full truth-table check
    confirms it.
    """
    n = perm.n_wires
    constant = perm(0)
    columns = [perm(1 << j) ^ constant for j in range(n)]
    rows = tuple(
        sum((((columns[j] >> i) & 1) << j) for j in range(n)) for i in range(n)
    )
    candidate = AffineMap(rows=rows, constant=constant)
    for x in range(1 << n):
        if candidate.apply(x) != perm(x):
            return None
    return candidate


def is_affine_permutation(perm) -> bool:
    """True iff ``perm`` is computable with NOT and CNOT gates only."""
    return affine_from_permutation(perm) is not None


def is_linear_permutation(perm) -> bool:
    """True iff ``perm`` is computable with CNOT gates only (f(0) = 0)."""
    affine = affine_from_permutation(perm)
    return affine is not None and affine.is_strictly_linear()


def count_invertible_matrices(n: int) -> int:
    """|GL(n, 2)| = prod_{i=0}^{n-1} (2^n - 2^i).

    For n = 4 this is 20160; with the 16 translations it gives the paper's
    322,560 linear reversible functions.
    """
    total = 1
    for i in range(n):
        total *= (1 << n) - (1 << i)
    return total


def all_affine_words(n_wires: int) -> "list[int]":
    """Packed words of *all* affine reversible functions on ``n_wires``.

    Enumerates GL(n, 2) by extending partial bases (column by column) and
    crosses with all 2^n constants.  For n = 4: 322,560 words.
    """
    n = n_wires
    size = 1 << n
    matrices: list[tuple[int, ...]] = []

    def extend(columns: list[int], span: set[int]) -> None:
        if len(columns) == n:
            rows = tuple(
                sum((((columns[j] >> i) & 1) << j) for j in range(n))
                for i in range(n)
            )
            matrices.append(rows)
            return
        for candidate in range(1, size):
            if candidate in span:
                continue
            new_span = set(span)
            new_span.update(v ^ candidate for v in span)
            new_span.add(candidate)
            extend(columns + [candidate], new_span)

    extend([], {0})
    words = []
    for rows in matrices:
        base = AffineMap(rows=rows, constant=0)
        values = [base.apply(x) for x in range(size)]
        for constant in range(size):
            word = 0
            for x, v in enumerate(values):
                word |= (v ^ constant) << (4 * x)
            words.append(word)
    return words
