"""The optimal-circuit database: canonical representatives with sizes.

This is the central data structure of the paper: a hash table mapping the
canonical representative of every equivalence class of size <= k to its
optimal circuit size.  The paper additionally stores one witness gate per
representative; we instead reconstruct circuits by *peeling* (testing all
32 gates for one that reduces the size by one), which needs no witness
storage and has the same asymptotic cost -- see DESIGN.md.  The scalar
reference engine in :mod:`repro.synth.bfs` stores witnesses exactly as the
paper does, and the tests cross-check the two.
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core import equivalence, packed
from repro.core.gates import Gate, all_gates
from repro.core.packed_np import canonical_np, class_sizes_np
from repro.errors import DatabaseError
from repro.hashing.table import LinearProbingTable


@dataclass
class OptimalDatabase:
    """Canonical representatives of all classes of size <= k, with sizes.

    Attributes:
        n_wires: Wire count the database was built for.
        k: Maximum circuit size stored.
        table: Linear-probing map: canonical packed word -> size.
        reps_by_size: ``reps_by_size[s]`` is the sorted array of canonical
            representatives whose optimal size is exactly ``s``.
    """

    n_wires: int
    k: int
    table: LinearProbingTable
    reps_by_size: list[np.ndarray] = field(default_factory=list)

    MISSING = 255

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def size_of(self, word: int) -> "int | None":
        """Optimal size of the function ``word`` if it is <= k, else None."""
        canon = equivalence.canonical(word, self.n_wires)
        return self.table.get(canon)

    def size_of_canonical(self, canon: int) -> "int | None":
        """Size lookup for an already-canonical word (no canonicalization)."""
        return self.table.get(canon)

    def sizes_batch(
        self, words: np.ndarray, assume_canonical: bool = False
    ) -> np.ndarray:
        """Vectorized size lookup; ``MISSING`` (255) marks absent classes."""
        words = np.asarray(words, dtype=np.uint64)
        if not assume_canonical:
            words = canonical_np(words, self.n_wires)
        return self.table.lookup_batch(words)

    # ------------------------------------------------------------------
    # Canonical cache keys (service layer hooks)
    # ------------------------------------------------------------------
    def canonical_key(self, word: int) -> int:
        """Canonical representative of ``word``, used as a cache key.

        All (up to ``2 * n!``) members of an equivalence class map to the
        same key, so a result cache keyed by it is shared across the
        whole class.
        """
        return equivalence.canonical(word, self.n_wires)

    def canonical_keys_batch(self, words: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`canonical_key` for a uint64 word array."""
        words = np.asarray(words, dtype=np.uint64)
        return canonical_np(words, self.n_wires)

    def lookup_with_keys(
        self, words: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Canonicalize once and look up sizes: ``(keys, sizes)``.

        Callers that need both the cache key and the size (the batching
        dispatcher in :mod:`repro.service`) avoid paying the 48-variant
        canonicalization twice.
        """
        keys = self.canonical_keys_batch(words)
        return keys, self.table.lookup_batch(keys)

    def __contains__(self, word: int) -> bool:
        return self.size_of(word) is not None

    # ------------------------------------------------------------------
    # Distribution accounting (Table 4)
    # ------------------------------------------------------------------
    def reduced_counts(self) -> list[int]:
        """Number of equivalence classes per size (Table 4, right column)."""
        return [int(reps.shape[0]) for reps in self.reps_by_size]

    def function_counts(self) -> list[int]:
        """Number of *functions* per size (Table 4, middle column).

        Computed by summing equivalence-class sizes over the stored
        canonical representatives.
        """
        return [
            int(class_sizes_np(reps, self.n_wires).sum())
            for reps in self.reps_by_size
        ]

    def total_functions(self) -> int:
        """Total functions of size <= k."""
        return sum(self.function_counts())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Serialize to an ``.npz`` file (representatives per size)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {
            f"reps_{size}": reps for size, reps in enumerate(self.reps_by_size)
        }
        arrays["meta"] = np.array([self.n_wires, self.k], dtype=np.int64)
        np.savez_compressed(path, **arrays)

    @staticmethod
    def load(path: "str | Path") -> "OptimalDatabase":
        """Load a database previously written by :meth:`save`.

        Raises :class:`DatabaseError` (never a raw ``KeyError``) when the
        file is truncated or corrupt: a missing ``meta`` record, a
        malformed ``meta``, or a missing ``reps_{size}`` array.
        """
        path = Path(path)
        if not path.exists():
            raise DatabaseError(f"database file not found: {path}")
        try:
            data = np.load(path)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            raise DatabaseError(
                f"database file {path} is not a readable .npz archive: {exc}"
            ) from exc
        with data:
            if "meta" not in data.files:
                raise DatabaseError(
                    f"database file {path} is corrupt: missing 'meta' record"
                )
            meta = np.asarray(data["meta"]).ravel()
            if meta.shape[0] != 2:
                raise DatabaseError(
                    f"database file {path} is corrupt: 'meta' must hold "
                    f"[n_wires, k], got {meta.tolist()}"
                )
            n_wires, k = (int(v) for v in meta)
            if not (1 <= n_wires <= 4) or k < 0:
                raise DatabaseError(
                    f"database file {path} is corrupt: invalid meta "
                    f"n_wires={n_wires}, k={k}"
                )
            missing = [
                f"reps_{size}"
                for size in range(k + 1)
                if f"reps_{size}" not in data.files
            ]
            if missing:
                raise DatabaseError(
                    f"database file {path} is truncated: k={k} but missing "
                    f"{', '.join(missing)}"
                )
            reps_by_size = [
                data[f"reps_{size}"].astype(np.uint64) for size in range(k + 1)
            ]
        return OptimalDatabase.from_reps(n_wires, k, reps_by_size)

    @staticmethod
    def map(path: "str | Path") -> "OptimalDatabase":
        """Memory-map a flat ``.rdb`` store written by
        :func:`repro.store.write_rdb`.

        Unlike :meth:`load`, nothing is deserialized: the hash table and
        per-size representative arrays are read-only ``np.memmap`` views
        over the file, shared page-cache-wide with every other process
        mapping the same store.  See :mod:`repro.store`.
        """
        from repro.store import map_database

        return map_database(path)

    @staticmethod
    def from_reps(
        n_wires: int, k: int, reps_by_size: list[np.ndarray]
    ) -> "OptimalDatabase":
        """Rebuild the hash table from per-size representative arrays.

        Raises :class:`DatabaseError` for an empty ``reps_by_size`` (a
        valid database always contains at least the identity class of
        size 0), which would otherwise silently build a degenerate table.
        """
        total = sum(int(r.shape[0]) for r in reps_by_size)
        if total == 0:
            raise DatabaseError(
                "cannot build a database from empty reps_by_size: a valid "
                "database contains at least the size-0 identity class"
            )
        bits = max(8, int(total * 1.7 - 1).bit_length())
        table = LinearProbingTable(capacity_bits=bits)
        for size, reps in enumerate(reps_by_size):
            table.insert_batch(reps, np.uint8(size))
        return OptimalDatabase(
            n_wires=n_wires, k=k, table=table, reps_by_size=list(reps_by_size)
        )

    # ------------------------------------------------------------------
    # Circuit reconstruction by peeling
    # ------------------------------------------------------------------
    def peel_last_gate(self, word: int, size: int) -> "tuple[Gate, int]":
        """Find a gate λ that is the last gate of some minimal circuit for
        ``word``; return ``(λ, rest)`` with ``rest`` = the word with λ
        removed (so ``size(rest) == size - 1``).
        """
        for gate in all_gates(self.n_wires):
            gate_word = gate.to_word(self.n_wires)
            rest = packed.compose(word, gate_word, self.n_wires)
            if self.size_of(rest) == size - 1:
                return gate, rest
        raise DatabaseError(
            f"no peelable gate found for word {word:#x} at size {size}; "
            "the database is inconsistent"
        )
