"""High-level facade: build/load the database and synthesize circuits.

Typical use::

    from repro import Permutation
    from repro.synth import OptimalSynthesizer

    synth = OptimalSynthesizer(n_wires=4, k=6, max_list_size=4)
    synth.prepare()                       # builds or loads the BFS database
    circuit = synth.synthesize("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
    print(circuit)                        # TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)

The synthesizer is exact: every returned circuit is provably minimal in
gate count, and a :class:`repro.errors.SizeLimitExceededError` carries a
proven lower bound when a function is out of reach of the configured
``L = k + max_list_size``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.errors import DatabaseError
from repro.synth.bfs import build_database
from repro.synth.database import OptimalDatabase
from repro.synth.search import MeetInTheMiddleSearch, SearchOutcome


def default_cache_dir() -> Path:
    """Database cache directory (override with ``REPRO_CACHE_DIR``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-optimal4"


@dataclass(frozen=True)
class SynthesisHandle:
    """A warm, shareable view of a prepared synthesizer.

    The handle bundles the loaded database and the materialized search
    engine with their parameters, so long-lived consumers (the service
    daemon, worker processes, benchmarks) can pass the expensive state
    around without re-triggering :meth:`OptimalSynthesizer.prepare` or
    carrying the whole facade.  All referenced state is read-only after
    preparation and safe to share across threads; across *processes* it
    is shared for free under ``fork`` (copy-on-write) or reopened from
    ``store_path`` under ``spawn`` -- a memory-mapped ``.rdb`` store
    shares its pages across *all* processes either way, so N workers
    hold one physical copy of the table.
    """

    n_wires: int
    k: int
    max_list_size: int
    database: OptimalDatabase
    engine: MeetInTheMiddleSearch
    cache_path: "Path | None"
    store_path: "Path | None" = None

    @property
    def max_size(self) -> int:
        """Largest optimal size reachable: L = k + max_list_size."""
        return self.k + self.max_list_size


class OptimalSynthesizer:
    """Exact synthesizer for n-bit reversible functions (n <= 4).

    Args:
        n_wires: Wire count.
        k: BFS database depth (paper used 9; 5-6 is practical here).
        max_list_size: Depth m of the lists A_i; reachable size is
            ``L = k + m``.  Defaults to ``min(k, 3)`` -- raise it for
            deeper searches at the cost of per-query scan time.
        cache_dir: Where to persist the database (None = default cache,
            False = never persist).
        verbose: Print progress while building.
    """

    def __init__(
        self,
        n_wires: int = 4,
        k: int = 6,
        max_list_size: "int | None" = None,
        cache_dir=None,
        verbose: bool = False,
    ):
        if max_list_size is None:
            max_list_size = min(k, 3)
        if max_list_size > k:
            raise DatabaseError(
                f"max_list_size ({max_list_size}) cannot exceed k ({k})"
            )
        self.n_wires = n_wires
        self.k = k
        self.max_list_size = max_list_size
        self.verbose = verbose
        if cache_dir is False:
            self.cache_path = None
            self.store_path = None
        else:
            base = Path(cache_dir) if cache_dir else default_cache_dir()
            self.cache_path = base / f"db-n{n_wires}-k{k}.npz"
            self.store_path = self.cache_path.with_suffix(".rdb")
        self._db: "OptimalDatabase | None" = None
        self._search: "MeetInTheMiddleSearch | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def prepare(self, force_rebuild: bool = False) -> "OptimalSynthesizer":
        """Build or load the database and materialize the search lists.

        Load order: the memory-mapped ``.rdb`` store sidecar when one
        exists (zero-copy, O(page-fault) cold start), then the legacy
        ``.npz`` cache, then a fresh BFS build.  Whenever the database
        came from anywhere but the ``.rdb``, a fresh sidecar is written
        (crash-safely, best-effort) so the *next* start maps instead of
        rebuilding.
        """
        if self._search is not None and not force_rebuild:
            return self
        db = None
        if not force_rebuild and self.store_path and self.store_path.exists():
            self._log(f"mapping database store {self.store_path}")
            try:
                db = OptimalDatabase.map(self.store_path)
            except DatabaseError as exc:
                self._log(f"store unusable ({exc}); falling back")
                db = None
            if db is not None and (
                db.n_wires != self.n_wires or db.k < self.k
            ):
                db = None
        mapped = db is not None
        if db is None and (
            not force_rebuild and self.cache_path and self.cache_path.exists()
        ):
            self._log(f"loading database from {self.cache_path}")
            db = OptimalDatabase.load(self.cache_path)
            if db.n_wires != self.n_wires or db.k < self.k:
                db = None
        if db is None:
            self._log(f"building database: n={self.n_wires}, k={self.k}")
            start = time.perf_counter()
            db = build_database(
                self.n_wires,
                self.k,
                progress=self._progress if self.verbose else None,
            )
            self._log(f"built in {time.perf_counter() - start:.1f}s")
            if self.cache_path:
                db.save(self.cache_path)
                self._log(f"saved to {self.cache_path}")
        if not mapped:
            self._write_store_sidecar(db)
        self._db = db
        self._log(f"building lists A_1..A_{self.max_list_size}")
        lists = MeetInTheMiddleSearch.build_lists(db, self.max_list_size)
        self._search = MeetInTheMiddleSearch(db, lists)
        return self

    def prepare_from_store(self, path: "str | Path") -> "OptimalSynthesizer":
        """Prepare directly from a database store at ``path``.

        ``.rdb`` maps zero-copy (the route the daemon's spawned workers
        take so they all share one page-cache copy); ``.npz`` loads into
        RAM.  Raises :class:`DatabaseError` when the store is missing,
        corrupt, or does not cover this synthesizer's parameters.
        """
        from repro.store import open_database

        path = Path(path)
        db = open_database(path)
        if db.n_wires != self.n_wires or db.k < self.k:
            raise DatabaseError(
                f"database store {path} holds n_wires={db.n_wires}, "
                f"k={db.k}; synthesizer needs n_wires={self.n_wires}, "
                f"k>={self.k}"
            )
        self._db = db
        self._log(f"building lists A_1..A_{self.max_list_size}")
        lists = MeetInTheMiddleSearch.build_lists(db, self.max_list_size)
        self._search = MeetInTheMiddleSearch(db, lists)
        return self

    def _write_store_sidecar(self, db: OptimalDatabase) -> None:
        """Best-effort ``.rdb`` sidecar write next to the ``.npz`` cache."""
        if not self.store_path:
            return
        from repro.store import write_rdb

        try:
            write_rdb(db, self.store_path)
            self._log(f"wrote store sidecar {self.store_path}")
        except DatabaseError as exc:
            self._log(f"could not write store sidecar: {exc}")

    @property
    def database(self) -> OptimalDatabase:
        """The underlying BFS database (prepares on first use)."""
        self.prepare()
        return self._db

    @property
    def search_engine(self) -> MeetInTheMiddleSearch:
        """The underlying meet-in-the-middle engine (prepares on first use)."""
        self.prepare()
        return self._search

    @property
    def max_size(self) -> int:
        """Largest optimal size reachable: L = k + max_list_size."""
        return self.k + self.max_list_size

    # ------------------------------------------------------------------
    # Warm-start handles
    # ------------------------------------------------------------------
    def handle(self) -> SynthesisHandle:
        """Prepare (if needed) and return a warm :class:`SynthesisHandle`."""
        self.prepare()
        store_path = self.store_path
        if store_path is not None and not store_path.exists():
            store_path = None
        return SynthesisHandle(
            n_wires=self.n_wires,
            k=self.k,
            max_list_size=self.max_list_size,
            database=self._db,
            engine=self._search,
            cache_path=self.cache_path,
            store_path=store_path,
        )

    @staticmethod
    def from_handle(handle: SynthesisHandle) -> "OptimalSynthesizer":
        """Rehydrate a synthesizer from a warm handle without rebuilding."""
        synth = OptimalSynthesizer(
            n_wires=handle.n_wires,
            k=handle.k,
            max_list_size=handle.max_list_size,
            cache_dir=False,
        )
        synth.cache_path = handle.cache_path
        synth.store_path = handle.store_path
        synth._db = handle.database
        synth._search = handle.engine
        return synth

    # ------------------------------------------------------------------
    # Synthesis API
    # ------------------------------------------------------------------
    def synthesize(self, spec) -> Circuit:
        """A provably gate-count-minimal circuit for ``spec``.

        ``spec`` may be a :class:`Permutation`, a spec string like
        ``"[0,2,1,3,...]"``, a value sequence, or a packed word.
        """
        perm = Permutation.coerce(spec, self.n_wires)
        return self.search_engine.minimal_circuit(perm.word)

    def search(self, spec, cancel=None) -> SearchOutcome:
        """Synthesize and also report search statistics.

        ``cancel`` is an optional zero-argument cooperative checkpoint
        threaded into the list scan (see
        :meth:`repro.synth.search.MeetInTheMiddleSearch.search`).
        """
        perm = Permutation.coerce(spec, self.n_wires)
        return self.search_engine.search(perm.word, cancel=cancel)

    def size(self, spec) -> int:
        """The optimal gate count of ``spec`` (no circuit reconstruction)."""
        perm = Permutation.coerce(spec, self.n_wires)
        return self.search_engine.size_of(perm.word)

    def size_or_bound(self, spec) -> tuple[int, bool]:
        """``(value, exact)``: the optimal size when reachable
        (exact=True), else a proven lower bound (exact=False)."""
        from repro.errors import SizeLimitExceededError

        perm = Permutation.coerce(spec, self.n_wires)
        try:
            return self.search_engine.size_of(perm.word), True
        except SizeLimitExceededError as exc:
            return exc.lower_bound, False

    def verify(self, circuit: Circuit, spec) -> bool:
        """Check that a circuit implements a specification."""
        perm = Permutation.coerce(spec, self.n_wires)
        return circuit.implements(perm)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _progress(self, level: int, count: int) -> None:
        self._log(f"  size {level}: {count} new classes")

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[repro] {message}", flush=True)
