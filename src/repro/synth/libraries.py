"""Alternative gate libraries and size tables over them.

The paper's search is defined for the NCT library, but Section 5 points
out that only the first phase (circuit generation) depends on the gate
family.  Related work uses richer families: Yang et al. (the paper's
reference [17]) synthesize with NOT, CNOT and *Peres* gates; the RevLib
community also uses SWAP and Fredkin (controlled-SWAP).  This module
generalizes Algorithm 2 to any finite gate set that is

* closed under simultaneous input/output relabeling (so the conjugation
  symmetry stays sound), and
* closed under inversion (so the circuit-reversal symmetry stays sound;
  Peres is not an involution, hence its inverse joins the library).

Because gates here need not be single multiple-control Toffolis, results
are returned as label sequences rather than :class:`Circuit` objects.

Provided libraries (n = 3 or 4 wires):

* ``nct``    -- the paper's NOT/CNOT/TOF/TOF4 family (reference point).
* ``ncts``   -- NCT plus SWAP.
* ``nctsf``  -- NCT plus SWAP and Fredkin.
* ``ncp``    -- NOT, CNOT, Peres, inverse Peres (Yang et al.'s family).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations

import numpy as np

from repro.core import equivalence, packed
from repro.core.gates import all_gates
from repro.core.packed_np import canonical_np, compose_np, inverse_np
from repro.errors import InvalidGateError, SynthesisError
from repro.hashing.table import LinearProbingTable


@dataclass(frozen=True)
class LibraryGate:
    """One gate of a generalized library.

    Attributes:
        label: Printable name, e.g. ``PERES(a,b,c)``.
        word: Packed permutation of the gate.
        inverse_word: Packed permutation of the gate's inverse.
    """

    label: str
    word: int
    inverse_word: int

    @property
    def is_involution(self) -> bool:
        return self.word == self.inverse_word


def _word_from_map(mapping, n_wires: int) -> int:
    word = 0
    for x in range(packed.num_states(n_wires)):
        word |= mapping(x) << (4 * x)
    return word


def _swap_gate(i: int, j: int, n_wires: int) -> LibraryGate:
    from repro.core.bitops import swap_bits
    from repro.core.gates import WIRE_NAMES

    word = _word_from_map(lambda x: swap_bits(x, i, j), n_wires)
    label = f"SWAP({WIRE_NAMES[i]},{WIRE_NAMES[j]})"
    return LibraryGate(label=label, word=word, inverse_word=word)


def _fredkin_gate(control: int, i: int, j: int, n_wires: int) -> LibraryGate:
    from repro.core.bitops import swap_bits
    from repro.core.gates import WIRE_NAMES

    def apply(x: int) -> int:
        if (x >> control) & 1:
            return swap_bits(x, i, j)
        return x

    word = _word_from_map(apply, n_wires)
    label = (
        f"FRED({WIRE_NAMES[control]},{WIRE_NAMES[i]},{WIRE_NAMES[j]})"
    )
    return LibraryGate(label=label, word=word, inverse_word=word)


def _peres_gates(a: int, b: int, c: int, n_wires: int) -> tuple[LibraryGate, LibraryGate]:
    """The Peres gate P(a,b,c): b ^= a; c ^= ab  -- and its inverse."""
    from repro.core.gates import WIRE_NAMES

    def forward(x: int) -> int:
        a_bit = (x >> a) & 1
        b_bit = (x >> b) & 1
        # c flips on the *original* a AND b, then b flips on a.
        if a_bit & b_bit:
            x ^= 1 << c
        if a_bit:
            x ^= 1 << b
        return x

    word = _word_from_map(forward, n_wires)
    inverse_word = packed.inverse(word, n_wires)
    names = f"{WIRE_NAMES[a]},{WIRE_NAMES[b]},{WIRE_NAMES[c]}"
    return (
        LibraryGate(label=f"PERES({names})", word=word, inverse_word=inverse_word),
        LibraryGate(
            label=f"IPERES({names})", word=inverse_word, inverse_word=word
        ),
    )


class GateLibrary:
    """A finite, symmetry-closed gate set for the generalized search.

    Closure under inversion and wire relabeling is validated at
    construction; violations raise :class:`InvalidGateError`.
    """

    def __init__(self, name: str, n_wires: int, gates: list[LibraryGate]):
        self.name = name
        self.n_wires = n_wires
        self.gates = list(gates)
        words = {g.word for g in self.gates}
        if len(words) != len(self.gates):
            raise InvalidGateError(f"library {name} has duplicate gates")
        for gate in self.gates:
            if gate.inverse_word not in words:
                raise InvalidGateError(
                    f"library {name} is not closed under inversion: "
                    f"{gate.label}"
                )
            for pair in range(n_wires - 1):
                conjugated = packed.conjugate_adjacent(gate.word, pair, n_wires)
                if conjugated not in words:
                    raise InvalidGateError(
                        f"library {name} is not closed under relabeling: "
                        f"{gate.label}"
                    )
        self._by_word = {g.word: g for g in self.gates}
        self.gate_words = np.array(
            sorted(words), dtype=np.uint64
        )

    def __len__(self) -> int:
        return len(self.gates)

    def gate_for_word(self, word: int) -> LibraryGate:
        return self._by_word[word]


def nct(n_wires: int) -> GateLibrary:
    """The paper's NCT library as a :class:`GateLibrary`."""
    gates = [
        LibraryGate(
            label=str(g), word=g.to_word(n_wires), inverse_word=g.to_word(n_wires)
        )
        for g in all_gates(n_wires)
    ]
    return GateLibrary("NCT", n_wires, gates)


def ncts(n_wires: int) -> GateLibrary:
    """NCT plus all SWAP gates."""
    library = nct(n_wires)
    gates = list(library.gates)
    for i, j in combinations(range(n_wires), 2):
        gates.append(_swap_gate(i, j, n_wires))
    return GateLibrary("NCTS", n_wires, gates)


def nctsf(n_wires: int) -> GateLibrary:
    """NCT plus SWAP and Fredkin (controlled-SWAP) gates."""
    library = ncts(n_wires)
    gates = list(library.gates)
    for control in range(n_wires):
        others = [w for w in range(n_wires) if w != control]
        for i, j in combinations(others, 2):
            gates.append(_fredkin_gate(control, i, j, n_wires))
    return GateLibrary("NCTSF", n_wires, gates)


def ncp(n_wires: int) -> GateLibrary:
    """NOT, CNOT, Peres and inverse-Peres (Yang et al.'s family)."""
    gates = [
        LibraryGate(
            label=str(g), word=g.to_word(n_wires), inverse_word=g.to_word(n_wires)
        )
        for g in all_gates(n_wires, max_controls=1)
    ]
    for a, b in permutations(range(n_wires), 2):
        for c in range(n_wires):
            if c in (a, b):
                continue
            forward, backward = _peres_gates(a, b, c, n_wires)
            gates.append(forward)
            gates.append(backward)
    return GateLibrary("NCP", n_wires, gates)


STANDARD_LIBRARIES = {
    "nct": nct,
    "ncts": ncts,
    "nctsf": nctsf,
    "ncp": ncp,
}


@dataclass
class LibrarySizeTable:
    """Per-library analogue of :class:`repro.synth.database.OptimalDatabase`.

    Attributes:
        library: The gate set searched over.
        k: Depth reached.
        table: Canonical word -> optimal size over this library.
        reduced_counts: Equivalence classes per size.
        complete: True when the BFS exhausted the whole group below k.
    """

    library: GateLibrary
    k: int
    table: LinearProbingTable
    reduced_counts: list[int]
    complete: bool

    def size_of(self, word: int) -> "int | None":
        canon = equivalence.canonical(word, self.library.n_wires)
        return self.table.get(canon)

    def peel_labels(self, word: int) -> list[str]:
        """A minimal label sequence for a function within the table.

        Peeling removes the *last* gate: if f = rest·g then
        rest = f·g⁻¹ must sit one level lower.
        """
        n = self.library.n_wires
        size = self.size_of(word)
        if size is None:
            raise SynthesisError(
                f"function exceeds the {self.library.name} table depth {self.k}"
            )
        labels: list[str] = []
        current = word
        remaining = size
        while remaining > 0:
            for gate in self.library.gates:
                rest = packed.compose(current, gate.inverse_word, n)
                if self.size_of(rest) == remaining - 1:
                    labels.append(gate.label)
                    current = rest
                    remaining -= 1
                    break
            else:
                raise SynthesisError("library size table inconsistent")
        labels.reverse()
        return labels


def build_size_table(
    library: GateLibrary, k: int, chunk: int = 1 << 18
) -> LibrarySizeTable:
    """Generalized Algorithm 2 over an arbitrary symmetry-closed library."""
    n = library.n_wires
    identity = packed.identity(n)
    table = LinearProbingTable(capacity_bits=10)
    table.insert(identity, 0)
    counts = [1]
    frontier = np.array([identity], dtype=np.uint64)
    complete = False
    for size in range(1, k + 1):
        sources = np.unique(np.concatenate([frontier, inverse_np(frontier, n)]))
        fresh_pieces: list[np.ndarray] = []
        for start in range(0, sources.shape[0], chunk):
            block = sources[start : start + chunk]
            for gate_word in library.gate_words:
                candidates = compose_np(block, gate_word, n)
                canon = np.unique(canonical_np(candidates, n))
                fresh = canon[~table.contains_batch(canon)]
                if fresh.size:
                    table.insert_batch(fresh, np.uint8(size))
                    fresh_pieces.append(fresh)
        if not fresh_pieces:
            complete = True
            break
        frontier = np.concatenate(fresh_pieces)
        counts.append(int(frontier.shape[0]))
    return LibrarySizeTable(
        library=library,
        k=k,
        table=table,
        reduced_counts=counts,
        complete=complete,
    )


def full_distribution(library: GateLibrary) -> list[int]:
    """Exact per-size *function* counts over the whole group (small n).

    Runs the generalized BFS to exhaustion and expands class sizes; for
    n = 3 this is the library analogue of the paper's Table 4.
    """
    import math

    from repro.core.packed_np import class_sizes_np

    table = build_size_table(library, 64)
    if not table.complete:
        raise SynthesisError("group not exhausted; raise k")
    keys, values = table.table.items()
    counts = [0] * len(table.reduced_counts)
    for size in range(len(counts)):
        members = keys[values == size]
        if members.size:
            counts[size] = int(class_sizes_np(members, library.n_wires).sum())
    if sum(counts) != math.factorial(1 << library.n_wires):
        raise SynthesisError("distribution does not cover the group")
    return counts
