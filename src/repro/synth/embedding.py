"""Synthesis of partially-specified (don't-care) reversible functions.

Benchmark functions like ``rd32`` arise by *embedding* an irreversible
Boolean function into a permutation: constant input lines are fixed,
garbage outputs are unconstrained, and every unconstrained row is a
don't-care.  The choice of completion strongly affects the optimal gate
count, so a synthesis tool must search over completions -- exactly what
this module does on top of the optimal synthesizer.

Two regimes:

* **Exhaustive** -- with ``t`` unspecified rows there are ``t!``
  completions; for ``t! <= exhaustive_limit`` all of them are sized and
  a provably minimal-over-completions circuit is returned.
* **Sampled** -- beyond that, *distinct* random completions are drawn
  (seeded, reproducible, without replacement) and the best found is
  returned, flagged as a bound.  When the draw nevertheless covers all
  ``t!`` completions the answer is exact and reported as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.errors import SizeLimitExceededError, SynthesisError
from repro.rng.mt19937 import MersenneTwister


@dataclass(frozen=True)
class PartialSpec:
    """A partially specified reversible function.

    Attributes:
        outputs: Length-``2^n`` sequence; entry ``x`` is the required
            output for input ``x``, or ``None`` for a don't-care row.
        n_wires: Wire count.
    """

    outputs: tuple
    n_wires: int

    def __post_init__(self):
        size = 1 << self.n_wires
        if len(self.outputs) != size:
            raise SynthesisError(
                f"partial spec needs {size} rows, got {len(self.outputs)}"
            )
        fixed = [v for v in self.outputs if v is not None]
        if len(set(fixed)) != len(fixed):
            raise SynthesisError("specified outputs repeat a value")
        if any(not 0 <= v < size for v in fixed):
            raise SynthesisError("specified output out of range")

    @property
    def free_inputs(self) -> list[int]:
        """Input rows whose output is unconstrained."""
        return [x for x, v in enumerate(self.outputs) if v is None]

    @property
    def free_outputs(self) -> list[int]:
        """Output values not used by any specified row."""
        used = {v for v in self.outputs if v is not None}
        return [v for v in range(1 << self.n_wires) if v not in used]

    def n_completions(self) -> int:
        """Number of permutations consistent with the spec (t!)."""
        import math

        return math.factorial(len(self.free_inputs))

    def complete(self, assignment: "list[int]") -> Permutation:
        """The permutation with free rows filled by ``assignment``."""
        values = list(self.outputs)
        for row, value in zip(self.free_inputs, assignment):
            values[row] = value
        return Permutation.from_values(values)

    def completions(self):
        """Iterate over all consistent permutations (t! of them)."""
        for assignment in permutations(self.free_outputs):
            yield self.complete(list(assignment))

    def matches(self, perm: Permutation) -> bool:
        """True iff ``perm`` agrees with every specified row."""
        return all(
            v is None or perm(x) == v for x, v in enumerate(self.outputs)
        )


@dataclass(frozen=True)
class EmbeddingResult:
    """Outcome of a don't-care synthesis run.

    Attributes:
        circuit: The best circuit found.
        permutation: The completion it implements.
        size: Its gate count.
        exhaustive: True when every completion was sized (so ``size`` is
            the true optimum over don't-cares), False for sampled runs.
        completions_tried: How many completions were evaluated.
    """

    circuit: Circuit
    permutation: Permutation
    size: int
    exhaustive: bool
    completions_tried: int


def synthesize_partial(
    spec: PartialSpec,
    synthesizer,
    exhaustive_limit: int = 5040,
    samples: int = 200,
    seed: int = 5489,
    extra_candidates: "list[Permutation] | None" = None,
    cancel=None,
) -> EmbeddingResult:
    """Minimal circuit over all completions of a partial specification.

    ``synthesizer`` is an :class:`repro.synth.OptimalSynthesizer` (or
    anything with ``size_or_bound``, ``synthesize`` and ``database``).
    Completions beyond the synthesizer's reach L are skipped (they
    cannot beat an in-reach optimum unless everything is out of reach,
    in which case ``SynthesisError`` is raised).

    ``extra_candidates`` lets callers seed structurally informed
    completions (e.g. the natural reversible extension of a Boolean
    function) that uniform sampling of a huge ``t!`` space would miss;
    candidates inconsistent with the spec are rejected.

    ``cancel`` is an optional cooperative checkpoint (e.g. a
    :meth:`repro.service.tasks.CancelToken.checkpoint` bound method)
    called between candidate evaluations; it may raise to abort.
    """
    best_perm = None
    best_size = None
    tried = 0
    exhaustive = spec.n_completions() <= exhaustive_limit
    if exhaustive:
        candidates = list(spec.completions())
    else:
        candidates, exhaustive = _sampled_completions(spec, samples, seed)
    for candidate in extra_candidates or []:
        if not spec.matches(candidate):
            raise SynthesisError(
                "extra candidate contradicts the partial specification"
            )
        candidates.insert(0, candidate)

    # Pass 1: the O(µs) database fast path.  If any completion has size
    # <= k this finds the true minimum over the candidate set (skipped
    # completions all have size > k >= best).
    database = getattr(synthesizer, "database", None)
    deferred = []
    for perm in candidates:
        if cancel is not None:
            cancel()
        tried += 1
        size = database.size_of(perm.word) if database is not None else None
        if size is None:
            deferred.append(perm)
            continue
        if best_size is None or size < best_size:
            best_perm, best_size = perm, size
            if size == 0:
                break
    # Pass 2 (only when nothing was within the fast path): full
    # meet-in-the-middle queries on a bounded number of completions.
    if best_perm is None:
        for perm in deferred[: max(1, samples // 10)]:
            if cancel is not None:
                cancel()
            size, exact = synthesizer.size_or_bound(perm)
            if not exact:
                continue
            if best_size is None or size < best_size:
                best_perm, best_size = perm, size
    if best_perm is None:
        raise SynthesisError(
            "every evaluated completion exceeds the synthesizer's reach; "
            "raise k or max_list_size"
        )
    circuit = synthesizer.synthesize(best_perm)
    if not spec.matches(best_perm) or not circuit.implements(best_perm):
        raise AssertionError("embedding produced an inconsistent result")
    return EmbeddingResult(
        circuit=circuit,
        permutation=best_perm,
        size=best_size,
        exhaustive=exhaustive,
        completions_tried=tried,
    )


def _sampled_completions(
    spec: PartialSpec, samples: int, seed: int
) -> "tuple[list[Permutation], bool]":
    """Up to ``samples`` *distinct* random completions of ``spec``.

    Returns ``(completions, exhausted)``.  Shuffles draw permutations
    of the free outputs with replacement, so duplicates are discarded
    rather than spent against the budget; when the whole ``t!`` space
    fits inside ``samples`` the completions are enumerated directly and
    ``exhausted`` is True -- the caller's answer is then exact, not a
    bound.  Redraws are bounded, so a pathological duplicate streak
    degrades to fewer samples instead of an unbounded loop.
    """
    total = spec.n_completions()
    if total <= samples:
        return list(spec.completions()), True
    rng = MersenneTwister(seed)
    free_outputs = spec.free_outputs
    seen: set = set()
    out: "list[Permutation]" = []
    attempts = 0
    max_attempts = 8 * samples
    while len(out) < samples and attempts < max_attempts:
        attempts += 1
        assignment = list(free_outputs)
        rng.shuffle(assignment)
        key = tuple(assignment)
        if key in seen:
            continue
        seen.add(key)
        out.append(spec.complete(assignment))
    return out, False


def natural_reversible_extension(
    truth_table: "list[int]", n_inputs: int, n_wires: int = 4
) -> Permutation:
    """The canonical completion: y = x ⊕ (f(inputs) << out_wire).

    Applying the output-XOR update on *every* row (regardless of the
    constant wires' values) is always a bijection, and for structured
    functions it is often the optimal completion -- e.g. AND's natural
    extension is exactly the Toffoli gate.
    """
    if len(truth_table) != 1 << n_inputs:
        raise SynthesisError("truth table length does not match n_inputs")
    if n_inputs >= n_wires:
        raise SynthesisError("need at least one output wire")
    out_wire = n_wires - 1
    input_mask = (1 << n_inputs) - 1
    values = [
        x ^ ((truth_table[x & input_mask] & 1) << out_wire)
        for x in range(1 << n_wires)
    ]
    return Permutation.from_values(values)


def synthesize_boolean_embedding(
    truth_table: "list[int]",
    n_inputs: int,
    synthesizer,
    n_wires: int = 4,
    samples: int = 60,
    seed: int = 5489,
) -> EmbeddingResult:
    """End-to-end irreversible synthesis: embed, seed the natural
    extension, and search completions for the best circuit."""
    spec = embed_boolean_function(truth_table, n_inputs, n_wires)
    natural = natural_reversible_extension(truth_table, n_inputs, n_wires)
    extras = [natural] if spec.matches(natural) else []
    return synthesize_partial(
        spec,
        synthesizer,
        samples=samples,
        seed=seed,
        extra_candidates=extras,
    )


def embed_boolean_function(
    truth_table: "list[int]",
    n_inputs: int,
    n_wires: int = 4,
    constant_value: int = 0,
) -> PartialSpec:
    """Embed an irreversible single-output Boolean function.

    The function's ``n_inputs`` variables ride on wires ``0..n_inputs-1``;
    the output replaces the top wire (``n_wires - 1``), which enters as
    the constant ``constant_value``; any middle wires are constant-0
    inputs with garbage outputs.  Rows whose constant inputs are not at
    their required values are don't-cares, as are all garbage bits --
    the classic embedding that turns e.g. AND into a Toffoli.
    """
    if len(truth_table) != 1 << n_inputs:
        raise SynthesisError("truth table length does not match n_inputs")
    if n_inputs >= n_wires:
        raise SynthesisError("need at least one output/ancilla wire")
    size = 1 << n_wires
    out_wire = n_wires - 1
    outputs: list = [None] * size
    used = set()
    for assignment in range(1 << n_inputs):
        x = assignment | (constant_value << out_wire)
        f_value = truth_table[assignment] & 1
        # Inputs pass through; the out wire carries f; middle wires are
        # garbage -- choose the lexicographically first unused completion
        # consistent with (inputs, f) to keep the row specified-but-
        # deterministic on the non-garbage bits.
        for garbage in range(1 << (n_wires - n_inputs - 1)):
            y = assignment | (garbage << n_inputs) | (f_value << out_wire)
            if y not in used:
                outputs[x] = y
                used.add(y)
                break
        else:
            raise SynthesisError("embedding ran out of output codes")
    return PartialSpec(outputs=tuple(outputs), n_wires=n_wires)
