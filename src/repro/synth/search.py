"""Meet-in-the-middle optimal search (paper Algorithm 1).

Given a database of all classes of size <= k and the lists ``A_i`` of
*all* functions of size exactly ``i`` (i <= m), any function of size
s <= L = k + m is synthesized minimally:

* if size(f) <= k, the minimal circuit is peeled directly from the
  database;
* otherwise f = u·h with size(u) = i and size(h) <= k, so scanning the
  inverse-closed list ``A_i`` for the smallest ``i`` such that some
  v ∈ A_i makes size(v·f) <= k yields a provably minimal split
  (u = v⁻¹; see the correctness argument in the module tests and in
  Section 3.1 of the paper).

The list scan is fully vectorized: one numpy pass composes f with the
whole list, canonicalizes the results (48 variants folded with
element-wise minima), and batch-probes the hash table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import packed
from repro.core.circuit import Circuit
from repro.core.gates import Gate, all_gates
from repro.core.packed_np import canonical_np, compose_np, expand_classes_np
from repro.errors import SizeLimitExceededError
from repro.perf.trace import trace
from repro.synth.database import OptimalDatabase


def peel_minimal_circuit(word: int, db: OptimalDatabase) -> Circuit:
    """Minimal circuit for a function of size <= k, by gate peeling.

    Repeatedly finds a gate that is the last gate of some minimal circuit
    (one must exist) and strips it.  Raises ``SizeLimitExceededError``
    when the function is not in the database.
    """
    size = db.size_of(word)
    if size is None:
        raise SizeLimitExceededError(
            f"function of size > {db.k} cannot be peeled directly",
            lower_bound=db.k + 1,
        )
    with trace("search.peel", size=size):
        gates: list[Gate] = []
        current = word
        for remaining in range(size, 0, -1):
            gate, current = db.peel_last_gate(current, remaining)
            gates.append(gate)
        gates.reverse()
        return Circuit(gates=tuple(gates), n_wires=db.n_wires)


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one synthesis query.

    Attributes:
        circuit: A minimal circuit for the query function.
        size: Its gate count (the optimal size).
        lists_scanned: How many lists ``A_i`` were composed against the
            query before the split was found (0 for the fast path).
        candidates_tested: Total list entries composed and looked up.
    """

    circuit: Circuit
    size: int
    lists_scanned: int
    candidates_tested: int


class MeetInTheMiddleSearch:
    """Algorithm 1: optimal synthesis for functions of size <= k + m.

    Args:
        db: The BFS database (size <= k).
        lists: ``lists[i - 1]`` holds all functions of size exactly ``i``;
            build them with :meth:`build_lists`.
    """

    def __init__(self, db: OptimalDatabase, lists: "list[np.ndarray] | None" = None):
        self.db = db
        self.lists = lists if lists is not None else []
        for i, lst in enumerate(self.lists, start=1):
            if lst.dtype != np.uint64:
                raise TypeError(f"list A_{i} must be uint64")

    @staticmethod
    def build_lists(db: OptimalDatabase, max_list_size: int) -> list[np.ndarray]:
        """Materialize ``A_1 .. A_max_list_size`` from the database.

        Each ``A_i`` is produced by expanding the equivalence classes of
        the stored canonical representatives of size ``i``; the result is
        sorted, duplicate-free, and closed under inversion.
        """
        if max_list_size > db.k:
            raise ValueError(
                f"lists of size {max_list_size} exceed database depth k={db.k}"
            )
        return [
            expand_classes_np(db.reps_by_size[i], db.n_wires)
            for i in range(1, max_list_size + 1)
        ]

    @property
    def max_size(self) -> int:
        """The largest size L this search can synthesize (k + m)."""
        return self.db.k + len(self.lists)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def minimal_circuit(self, word: int, cancel=None) -> Circuit:
        """A provably minimal circuit for ``word``; raises
        :class:`SizeLimitExceededError` when size > L."""
        return self.search(word, cancel=cancel).circuit

    def size_of(self, word: int, cancel=None) -> int:
        """Optimal size of ``word`` (without reconstructing the circuit)."""
        fast = self.db.size_of(word)
        if fast is not None:
            return fast
        i, _v, h_size, tested = self._scan_lists(word, cancel=cancel)
        if i is None:
            raise SizeLimitExceededError(
                f"function requires more than {self.max_size} gates",
                lower_bound=self.max_size + 1,
            )
        return i + h_size

    def search(self, word: int, cancel=None) -> SearchOutcome:
        """Full query returning the circuit plus search statistics.

        ``cancel`` is an optional zero-argument cooperative checkpoint
        (typically a bound ``CancelToken.checkpoint``): it is invoked
        between list scans and may abort the query by raising.  The
        scan itself never catches what it raises.
        """
        with trace("search.query"):
            return self._search(word, cancel=cancel)

    def _search(self, word: int, cancel=None) -> SearchOutcome:
        n = self.db.n_wires
        fast = self.db.size_of(word)
        if fast is not None:
            circuit = peel_minimal_circuit(word, self.db)
            return SearchOutcome(
                circuit=circuit, size=fast, lists_scanned=0, candidates_tested=0
            )
        i, v, h_size, tested = self._scan_lists(word, cancel=cancel)
        if i is None:
            raise SizeLimitExceededError(
                f"function requires more than {self.max_size} gates "
                f"(proven by exhausted search)",
                lower_bound=self.max_size + 1,
            )
        # word = u·h with u = v⁻¹ of size i and h = v·word of size h_size.
        u = packed.inverse(v, n)
        h = packed.compose(v, word, n)
        head = peel_minimal_circuit(u, self.db)
        tail = peel_minimal_circuit(h, self.db)
        circuit = head.then(tail)
        if circuit.gate_count != i + h_size:
            raise AssertionError("reconstructed circuit has unexpected size")
        return SearchOutcome(
            circuit=circuit,
            size=i + h_size,
            lists_scanned=i,
            candidates_tested=tested,
        )

    def prove_lower_bound(self, word: int, cancel=None) -> int:
        """Exhaust the search and return the proven lower bound.

        Returns size(word) when it is within reach, else ``L + 1`` (the
        failure of the exhaustive scan proves size > L, paper Section 4.4's
        argument for oc7).
        """
        try:
            return self.size_of(word, cancel=cancel)
        except SizeLimitExceededError as exc:
            return exc.lower_bound

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scan_lists(self, word: int, cancel=None):
        """Scan A_1, A_2, ... for the smallest split; returns
        ``(i, v, h_size, candidates_tested)`` or ``(None, None, None, t)``.

        ``cancel`` (when given) runs before each list is composed -- the
        cooperative preemption point for cancellable hard work: each
        ``A_i`` pass is one numpy call, so this is the finest boundary
        at which the scan can stop without losing vectorization.
        """
        n = self.db.n_wires
        word_u = np.uint64(word)
        tested = 0
        with trace("search.scan"):
            for i, candidates_v in enumerate(self.lists, start=1):
                if cancel is not None:
                    cancel()
                if candidates_v.shape[0] == 0:
                    continue
                with trace("search.list", list=i):
                    h = compose_np(candidates_v, word_u, n)
                    sizes = self.db.sizes_batch(h)
                    tested += int(candidates_v.shape[0])
                    hits = np.flatnonzero(sizes != self.db.MISSING)
                if hits.size:
                    idx = int(hits[0])
                    return i, int(candidates_v[idx]), int(sizes[idx]), tested
        return None, None, None, tested
