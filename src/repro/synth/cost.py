"""Cost-aware optimal synthesis (paper Section 5, first extension).

The paper notes that "to account for different gate costs, one needs to
search for small circuits via increasing cost by one ... as opposed to
adding a gate to all maximal size optimal circuits."  This module
implements exactly that: a bucketed Dijkstra (uniform-cost search) over
equivalence classes, with integer per-gate costs.

The default cost model is the standard NCV quantum-cost table
(NOT = CNOT = 1, TOF = 5, TOF4 = 13), reflecting the paper's remark that
"generally, NOT is much simpler than CNOT, which in turn, is simpler
than Toffoli".

The symmetry reduction remains sound because every cost model keyed on
the number of controls is invariant under wire relabeling and circuit
reversal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import equivalence, packed
from repro.core.circuit import Circuit
from repro.core.gates import Gate, all_gates
from repro.core.permutation import Permutation
from repro.errors import SynthesisError

#: Standard NCV quantum-cost per control count (Barenco et al. decompositions).
NCV_COST_BY_CONTROLS: dict[int, int] = {0: 1, 1: 1, 2: 5, 3: 13}

#: Uniform cost model -- makes cost-optimal equal gate-count-optimal.
UNIT_COST_BY_CONTROLS: dict[int, int] = {0: 1, 1: 1, 2: 1, 3: 1}


def gate_cost(gate: Gate, model: "dict[int, int] | None" = None) -> int:
    """Cost of one gate under a per-control-count model."""
    if model is None:
        model = NCV_COST_BY_CONTROLS
    return model[len(gate.controls)]


@dataclass
class CostDatabase:
    """Optimal *cost* (not gate count) per equivalence class, up to a bound.

    Attributes:
        n_wires: Wire count.
        max_cost: Exploration bound; classes costlier than this are absent.
        costs: Map canonical word -> minimal circuit cost.
        model: The per-control-count cost table used.
    """

    n_wires: int
    max_cost: int
    costs: dict[int, int]
    model: dict[int, int]

    def cost_of(self, word: int) -> "int | None":
        """Minimal cost of the function, or None when above the bound."""
        return self.costs.get(equivalence.canonical(word, self.n_wires))

    def counts_by_cost(self) -> dict[int, int]:
        """Number of equivalence classes per optimal cost (ablation data)."""
        histogram: dict[int, int] = {}
        for cost in self.costs.values():
            histogram[cost] = histogram.get(cost, 0) + 1
        return dict(sorted(histogram.items()))


def build_cost_database(
    n_wires: int,
    max_cost: int,
    model: "dict[int, int] | None" = None,
) -> CostDatabase:
    """Bucketed Dijkstra over equivalence classes by circuit cost.

    Buckets are processed in increasing cost; because every gate has
    positive cost, entries popped from bucket ``c`` are final (stale
    duplicates are skipped by comparing with the cost table).
    """
    import numpy as np

    from repro.core.packed_np import canonical_np, compose_np, inverse_np

    if model is None:
        model = NCV_COST_BY_CONTROLS
    if any(cost <= 0 for cost in model.values()):
        raise SynthesisError("gate costs must be positive integers")
    # Group gates by weight so each weight class is expanded in one
    # vectorized pass.
    by_weight: dict[int, list[int]] = {}
    for gate in all_gates(n_wires):
        by_weight.setdefault(gate_cost(gate, model), []).append(
            gate.to_word(n_wires)
        )
    weight_arrays = {
        weight: np.array(sorted(set(words)), dtype=np.uint64)
        for weight, words in by_weight.items()
    }

    identity = packed.identity(n_wires)
    costs: dict[int, int] = {identity: 0}
    buckets: dict[int, list[int]] = {0: [identity]}
    for cost in range(max_cost + 1):
        bucket = buckets.pop(cost, None)
        if not bucket:
            continue
        live = [canon for canon in set(bucket) if costs.get(canon) == cost]
        if not live:
            continue
        reps = np.array(sorted(live), dtype=np.uint64)
        sources = np.unique(np.concatenate([reps, inverse_np(reps, n_wires)]))
        for weight, gate_words in weight_arrays.items():
            new_cost = cost + weight
            if new_cost > max_cost:
                continue
            for gate_word in gate_words:
                candidates = np.unique(
                    canonical_np(compose_np(sources, gate_word, n_wires), n_wires)
                )
                for canon_candidate in candidates.tolist():
                    known = costs.get(canon_candidate)
                    if known is not None and known <= new_cost:
                        continue
                    costs[canon_candidate] = new_cost
                    buckets.setdefault(new_cost, []).append(canon_candidate)
    return CostDatabase(
        n_wires=n_wires, max_cost=max_cost, costs=costs, model=dict(model)
    )


class CostOptimalSynthesizer:
    """Exact minimum-cost synthesis for functions within the cost bound.

    Note the scaling difference from gate-count search: the number of
    classes grows with *cost*, so NCV bound C roughly corresponds to
    gate-count C when circuits are CNOT-dominated but only C/5 when
    Toffoli-dominated.
    """

    def __init__(
        self,
        n_wires: int = 4,
        max_cost: int = 12,
        model: "dict[int, int] | None" = None,
    ):
        self.n_wires = n_wires
        self.max_cost = max_cost
        self.model = dict(model) if model else dict(NCV_COST_BY_CONTROLS)
        self._db: "CostDatabase | None" = None

    @property
    def database(self) -> CostDatabase:
        if self._db is None:
            self._db = build_cost_database(
                self.n_wires, self.max_cost, self.model
            )
        return self._db

    def cost(self, spec) -> int:
        """Minimal circuit cost of ``spec`` under the model."""
        perm = Permutation.coerce(spec, self.n_wires)
        cost = self.database.cost_of(perm.word)
        if cost is None:
            raise SynthesisError(
                f"function cost exceeds the search bound {self.max_cost}"
            )
        return cost

    def synthesize(self, spec) -> Circuit:
        """A provably minimum-cost circuit (peeled from the cost table)."""
        perm = Permutation.coerce(spec, self.n_wires)
        db = self.database
        total = self.cost(perm)
        library = [
            (g, g.to_word(self.n_wires), gate_cost(g, self.model))
            for g in all_gates(self.n_wires)
        ]
        gates: list[Gate] = []
        current = perm.word
        remaining = total
        while remaining > 0:
            for gate, gate_word, weight in library:
                if weight > remaining:
                    continue
                rest = packed.compose(current, gate_word, self.n_wires)
                if db.cost_of(rest) == remaining - weight:
                    gates.append(gate)
                    current = rest
                    remaining -= weight
                    break
            else:
                raise SynthesisError("cost database inconsistent during peel")
        gates.reverse()
        circuit = Circuit(gates=tuple(gates), n_wires=self.n_wires)
        if not circuit.implements(perm):
            raise AssertionError("cost-optimal peel produced a wrong circuit")
        return circuit
