"""Transformation-based heuristic synthesis (MMD baseline).

The paper motivates optimal synthesis partly as a yardstick for heuristic
synthesizers (Section 1): "it would help to replace this test with a more
difficult one that allows more room for improvement."  To reproduce that
comparison we implement the classic transformation-based algorithm of
Miller, Maslov & Dueck (DAC 2003) -- the standard fast heuristic for NCT
synthesis -- in its unidirectional and bidirectional variants.

The algorithm walks the truth table in input order.  At row ``x`` with
current output ``y = f(x) != x`` it appends output-side gates that map
``y`` to ``x`` without disturbing rows below ``x``:

* bits set in ``x`` but not ``y`` are switched on by a Toffoli targeting
  that bit, controlled on all set bits of the current ``y`` (such gates
  only fire on patterns that are supersets of ``y``'s bits, all of which
  are >= y > x);
* bits set in ``y`` but not ``x`` are then switched off by a Toffoli
  controlled on all set bits of ``x`` (firing only on supersets of
  ``x``'s bits, all >= x).

The bidirectional variant may instead apply the mirrored step to the
*input* side (equivalently, the output-side step for f⁻¹), choosing
whichever side needs fewer gates at each row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.permutation import Permutation


def _bits_of(x: int, n_wires: int) -> tuple[int, ...]:
    return tuple(w for w in range(n_wires) if (x >> w) & 1)


def _row_gates(x: int, y: int, n_wires: int) -> list[Gate]:
    """Output-side gates mapping current value ``y`` to target ``x``
    without disturbing values < x (requires y > x or x == 0)."""
    gates: list[Gate] = []
    if x == 0:
        # First row: plain NOTs (nothing below to preserve).
        for w in _bits_of(y, n_wires):
            gates.append(Gate(controls=(), target=w))
        return gates
    current = y
    # Switch on the bits x has and current lacks.
    for w in _bits_of(x & ~current, n_wires):
        controls = _bits_of(current, n_wires)
        gates.append(Gate(controls=controls, target=w))
        current |= 1 << w
    # Switch off the bits current has and x lacks.
    for w in _bits_of(current & ~x, n_wires):
        controls = _bits_of(x, n_wires)
        gates.append(Gate(controls=controls, target=w))
        current ^= 1 << w
    if current != x:
        raise AssertionError("row transformation failed")
    return gates


def _row_cost(x: int, y: int) -> int:
    """Number of gates the output-side step would use at row ``x``."""
    if x == 0:
        return bin(y).count("1")
    return bin(x ^ y).count("1")


def _apply_output_gates(values: list[int], gates: list[Gate]) -> None:
    """values[i] <- g(values[i]) for each gate, in order."""
    for gate in gates:
        for i, v in enumerate(values):
            values[i] = gate.apply(v)


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of a heuristic synthesis run.

    Attributes:
        circuit: The synthesized (not necessarily optimal) circuit.
        bidirectional: Which variant produced it.
    """

    circuit: Circuit
    bidirectional: bool


def mmd_synthesize(spec, bidirectional: bool = True) -> Circuit:
    """Synthesize ``spec`` with the transformation-based heuristic.

    Always succeeds and runs in O(2^n) gate steps; the result is verified
    against the specification before being returned.
    """
    perm = Permutation.coerce(spec)
    n_wires = perm.n_wires
    size = 1 << n_wires

    forward = list(perm.values)  # forward[x] = current f(x)
    backward = [0] * size  # backward = forward^{-1}
    for x, y in enumerate(forward):
        backward[y] = x

    head_gates: list[Gate] = []  # input-side, in application order
    tail_gates: list[Gate] = []  # output-side, collected then reversed

    for x in range(size):
        y = forward[x]
        if y == x:
            continue
        x0 = backward[x]  # where the value x currently sits
        use_input = bidirectional and _row_cost(x, x0) < _row_cost(x, y)
        if use_input:
            # Output-side step for the inverse function: map x0 -> x on
            # the input side.  In circuit terms these gates are appended
            # to the *head* (they act before the remaining function).
            gates = _row_gates(x, x0, n_wires)
            _apply_output_gates(backward, gates)
            for i, v in enumerate(backward):
                forward[v] = i
            head_gates.extend(gates)
        else:
            gates = _row_gates(x, y, n_wires)
            _apply_output_gates(forward, gates)
            for i, v in enumerate(forward):
                backward[v] = i
            tail_gates.extend(gates)

    circuit = Circuit(
        gates=tuple(head_gates) + tuple(reversed(tail_gates)), n_wires=n_wires
    )
    if not circuit.implements(perm):
        raise AssertionError("heuristic produced an incorrect circuit")
    return circuit


def mmd_best_of_both(spec) -> HeuristicResult:
    """Run both variants and keep the smaller circuit."""
    uni = mmd_synthesize(spec, bidirectional=False)
    bi = mmd_synthesize(spec, bidirectional=True)
    if bi.gate_count <= uni.gate_count:
        return HeuristicResult(circuit=bi, bidirectional=True)
    return HeuristicResult(circuit=uni, bidirectional=False)
