"""Synthesis engines: optimal search, database construction, baselines."""

from repro.synth.database import OptimalDatabase
from repro.synth.search import MeetInTheMiddleSearch, peel_minimal_circuit
from repro.synth.synthesizer import OptimalSynthesizer, SynthesisHandle

__all__ = [
    "OptimalDatabase",
    "MeetInTheMiddleSearch",
    "OptimalSynthesizer",
    "SynthesisHandle",
    "peel_minimal_circuit",
]
