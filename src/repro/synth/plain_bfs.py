"""Plain breadth-first search baseline (no symmetry reduction).

Prasad et al. (paper reference [13]) enumerated optimal 4-bit circuits by
straight BFS over *functions* -- no equivalence-class reduction -- reaching
26,000,000 circuits of up to 6 gates.  This module implements that
baseline so the value of the paper's ×48 reduction can be measured
head-to-head (states stored, time per level): compare
:func:`plain_bfs_counts` with the "Reduced Functions" column produced by
:func:`repro.synth.bfs.build_database`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import packed
from repro.core.gates import all_gates
from repro.core.packed_np import compose_np
from repro.hashing.table import LinearProbingTable


@dataclass
class PlainBfsResult:
    """Outcome of the non-reduced BFS.

    Attributes:
        n_wires: Wire count.
        k: Depth reached.
        counts: ``counts[s]`` = number of *functions* of optimal size s
            (Table 4, middle column -- computed here without symmetry).
        table: Map function word -> optimal size (every function, not
            just class representatives).
    """

    n_wires: int
    k: int
    counts: list[int]
    table: LinearProbingTable

    def size_of(self, word: int) -> "int | None":
        """Optimal size of ``word`` when <= k, else None."""
        # repro: allow[unrouted-lookup] the plain-BFS table deliberately stores every raw function (no §3.2 reduction), so uncanonicalized keys are exact
        return self.table.get(word)

    @property
    def states_stored(self) -> int:
        """Total functions stored -- the baseline's memory footprint."""
        return len(self.table)


def plain_bfs(n_wires: int, k: int, chunk: int = 1 << 20) -> PlainBfsResult:
    """BFS over raw functions with the full NCT library.

    Memory grows with the *function* counts of Table 4 (×48 versus the
    reduced engine), so useful depths are k <= 5 for n = 4 on commodity
    memory -- which is precisely the limitation the paper's symmetry
    reduction removes.
    """
    gate_words = np.array(
        [g.to_word(n_wires) for g in all_gates(n_wires)], dtype=np.uint64
    )
    identity = packed.identity(n_wires)
    table = LinearProbingTable(capacity_bits=10)
    table.insert(identity, 0)
    counts = [1]
    frontier = np.array([identity], dtype=np.uint64)
    for size in range(1, k + 1):
        fresh_pieces: list[np.ndarray] = []
        for start in range(0, frontier.shape[0], chunk):
            block = frontier[start : start + chunk]
            for gate_word in gate_words:
                candidates = np.unique(compose_np(block, gate_word, n_wires))
                # repro: allow[unrouted-lookup] baseline BFS stores all raw functions; membership is checked on raw words by design
                fresh = candidates[~table.contains_batch(candidates)]
                if fresh.size:
                    table.insert_batch(fresh, np.uint8(size))
                    fresh_pieces.append(fresh)
        if not fresh_pieces:
            counts.append(0)
            break
        frontier = np.concatenate(fresh_pieces)
        counts.append(int(frontier.shape[0]))
    return PlainBfsResult(n_wires=n_wires, k=k, counts=counts, table=table)


def plain_bfs_counts(n_wires: int, k: int) -> list[int]:
    """Just the per-size function counts (convenience for benchmarks)."""
    return plain_bfs(n_wires, k).counts
