"""Wide (n >= 5) optimal search (paper Section 5, last extension).

"A simple calculation shows that using CS1 it is possible to compute
all optimal 5-bit circuits with up to six gates."  The packed 64-bit
representation caps at four wires, so this module provides an
array-based engine for wider functions: a permutation on ``n`` wires is
a row of ``2^n`` uint8 values, a gate application is one numpy gather
(``gate_table[f]``), and breadth-first search proceeds exactly as in
Algorithm 2 minus the symmetry reduction (the plain-BFS regime of
Prasad et al., which is what fits a single-core budget at n = 5).

The engine is width-generic; on n = 3/4 it reproduces the packed
engine's function counts, which the tests use as cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.circuit import Circuit
from repro.core.gates import Gate, all_gates
from repro.errors import SynthesisError


def _gate_tables(n_wires: int) -> tuple[list[Gate], np.ndarray]:
    """The NCT library on ``n_wires`` wires as value-table rows."""
    gates = all_gates(n_wires)
    size = 1 << n_wires
    tables = np.empty((len(gates), size), dtype=np.uint8)
    for row, gate in enumerate(gates):
        for x in range(size):
            tables[row, x] = gate.apply(x)
    return gates, tables


@dataclass
class WideBfsResult:
    """Plain BFS over wide reversible functions.

    Attributes:
        n_wires: Wire count (any; intended for >= 5).
        k: Depth reached.
        counts: Functions of each optimal size 0..k.
        known: Map ``bytes(truth table) -> optimal size``.
    """

    n_wires: int
    k: int
    counts: list[int]
    known: dict[bytes, int]

    def size_of(self, values) -> "int | None":
        """Optimal size of a function given as its value sequence."""
        row = np.asarray(list(values), dtype=np.uint8)
        return self.known.get(row.tobytes())

    @property
    def states_stored(self) -> int:
        return len(self.known)


def wide_bfs(
    n_wires: int, k: int, max_frontier: "int | None" = 4_000_000
) -> WideBfsResult:
    """Breadth-first enumeration of all functions of size <= k.

    ``max_frontier`` guards memory: the search stops early (raising
    ``SynthesisError``) if a level would exceed it.  At n = 5 the level
    sizes are 80 / ~3.1e3 / ~2.4e5 / ~1.9e7..., so k = 3 is comfortable
    and k = 4 is the practical single-machine limit.
    """
    size = 1 << n_wires
    _, tables = _gate_tables(n_wires)

    identity = np.arange(size, dtype=np.uint8)
    known: dict[bytes, int] = {identity.tobytes(): 0}
    counts = [1]
    frontier = identity.reshape(1, size)
    for depth in range(1, k + 1):
        expected = frontier.shape[0] * tables.shape[0]
        if max_frontier is not None and expected > max_frontier:
            raise SynthesisError(
                f"level {depth} would expand {expected:,} candidates "
                f"(> max_frontier={max_frontier:,}); lower k"
            )
        # Apply every gate after every frontier function: one gather per
        # gate over the whole frontier.
        candidate_blocks = [tables[g][frontier] for g in range(len(tables))]
        candidates = np.concatenate(candidate_blocks, axis=0)
        candidates = np.unique(candidates, axis=0)
        fresh_rows = []
        for row in candidates:
            key = row.tobytes()
            if key not in known:
                known[key] = depth
                fresh_rows.append(row)
        if not fresh_rows:
            counts.append(0)
            break
        frontier = np.stack(fresh_rows)
        counts.append(len(fresh_rows))
    return WideBfsResult(n_wires=n_wires, k=k, counts=counts, known=known)


def wide_synthesize(result: WideBfsResult, values) -> Circuit:
    """A provably minimal circuit for a wide function of size <= k.

    Peels the last gate: if ``f = rest·λ`` then ``rest = λ(f(·))``,
    which must sit exactly one level lower.
    """
    gates, tables = _gate_tables(result.n_wires)
    row = np.asarray(list(values), dtype=np.uint8)
    size = result.known.get(row.tobytes())
    if size is None:
        raise SynthesisError(
            f"function is beyond the BFS depth k={result.k}"
        )
    chosen: list[Gate] = []
    remaining = size
    while remaining > 0:
        for index, gate in enumerate(gates):
            rest = tables[index][row]
            if result.known.get(rest.tobytes()) == remaining - 1:
                chosen.append(gate)
                row = rest
                remaining -= 1
                break
        else:
            raise SynthesisError("wide BFS table inconsistent")
    chosen.reverse()
    circuit = Circuit(gates=tuple(chosen), n_wires=result.n_wires)
    if circuit.truth_table() != list(values):
        raise AssertionError("wide synthesis produced a wrong circuit")
    return circuit
