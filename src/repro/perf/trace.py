"""Lightweight span tracing for the synthesis hot paths.

The tracer answers "where did the time go?" for one query or one build:
every instrumented region (``with trace("bfs.level", level=3): ...``)
becomes a *span* with a wall-clock duration, and spans opened while
another span is running on the same thread nest under it, forming a
tree.  ``repro trace`` renders these trees for a one-shot synthesis;
the service daemon exports per-span-name histograms through its
:class:`~repro.service.metrics.MetricsRegistry` (``span_<name>``) when
started with ``--trace``.

Design constraints, in priority order:

1. **Near-zero overhead when disabled.**  Tracing is off by default and
   the instrumented code includes scalar hot paths (canonicalization is
   ~50 us/call).  A disabled ``trace(...)`` call is one module-global
   read, one ``None`` test, and the context-manager protocol on a
   shared no-op singleton -- a few hundred nanoseconds, well under the
   5% budget asserted by ``tests/test_perf_trace.py``.
2. **Bounded memory when enabled.**  A BFS build canonicalizes millions
   of words; storing every child span would OOM.  Each span keeps at
   most ``max_children`` children (the rest are counted in
   ``dropped_children``), and the tracer keeps at most ``max_roots``
   completed root spans (oldest evicted first).  Per-name aggregates
   (count/total/min/max) are always exact, regardless of the caps.
3. **No upward imports.**  This module is imported by ``repro.core``
   and ``repro.synth``; it depends on the standard library only.
   Metrics export is wired by the *caller* passing a sink callable.

Thread model: the span stack is thread-local (each thread builds its
own trees); completed roots and aggregates are shared behind one lock
taken only at span completion.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "Tracer",
    "disable",
    "enable",
    "get_tracer",
    "is_enabled",
    "render_tree",
    "trace",
]

#: A sink receives ``(span_name, duration_seconds)`` for every completed
#: span.  The service daemon installs one that feeds its metrics
#: registry; tests install recording sinks.
Sink = Callable[[str, float], None]


@dataclass
class Span:
    """One timed region: name, attributes, duration, children."""

    name: str
    attrs: dict[str, Any]
    started: float
    duration: "float | None" = None
    error: "str | None" = None
    children: list["Span"] = field(default_factory=list)
    dropped_children: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the span tree rooted here."""
        body: dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attrs:
            body["attrs"] = dict(self.attrs)
        if self.error is not None:
            body["error"] = self.error
        if self.children:
            body["children"] = [child.to_dict() for child in self.children]
        if self.dropped_children:
            body["dropped_children"] = self.dropped_children
        return body


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a :class:`Span` on the tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> bool:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects span trees and per-name aggregates; see module docs."""

    def __init__(self, max_roots: int = 64, max_children: int = 64) -> None:
        self.max_roots = max_roots
        self.max_children = max_children
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_roots)
        # name -> [count, total, min, max]
        self._agg: dict[str, list[float]] = {}
        self._sinks: list[Sink] = []

    # ------------------------------------------------------------------
    # Span lifecycle (called via trace())
    # ------------------------------------------------------------------
    def span(self, name: str, attrs: dict[str, Any]) -> _SpanContext:
        return _SpanContext(
            self, Span(name=name, attrs=attrs, started=time.perf_counter())
        )

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        span.started = time.perf_counter()
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span.started
        stack = self._stack()
        # Tolerate mispaired exits (a span leaked across a generator,
        # say) by unwinding to the span being closed.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            parent = stack[-1]
            if len(parent.children) < self.max_children:
                parent.children.append(span)
            else:
                parent.dropped_children += 1
        with self._lock:
            if not stack:
                self._roots.append(span)
            entry = self._agg.get(span.name)
            if entry is None:
                self._agg[span.name] = [
                    1.0, span.duration, span.duration, span.duration,
                ]
            else:
                entry[0] += 1.0
                entry[1] += span.duration
                if span.duration < entry[2]:
                    entry[2] = span.duration
                if span.duration > entry[3]:
                    entry[3] = span.duration
            sinks = tuple(self._sinks)
        for sink in sinks:
            sink(span.name, span.duration)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def add_sink(self, sink: Sink) -> None:
        """Register a callback fired with (name, seconds) per span."""
        with self._lock:
            self._sinks.append(sink)

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first (bounded by max_roots)."""
        with self._lock:
            return list(self._roots)

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Exact per-name totals: count / total_s / min_s / max_s / mean_s."""
        with self._lock:
            items = sorted(self._agg.items())
        return {
            name: {
                "count": entry[0],
                "total_s": entry[1],
                "min_s": entry[2],
                "max_s": entry[3],
                "mean_s": entry[1] / entry[0],
            }
            for name, entry in items
        }

    def reset(self) -> None:
        """Drop all recorded roots and aggregates (sinks stay)."""
        with self._lock:
            self._roots.clear()
            self._agg.clear()


# ----------------------------------------------------------------------
# Module-level switch.  The fast path reads one global; everything else
# happens only when tracing was explicitly enabled.
# ----------------------------------------------------------------------
_active: "Tracer | None" = None
_switch_lock = threading.Lock()


def trace(name: str, **attrs: Any) -> "_SpanContext | _NullSpan":
    """Open a span (``with trace("search.scan", list=2): ...``).

    Returns a shared no-op context manager when tracing is disabled --
    the call costs a global read and a ``None`` check.
    """
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, attrs)


def enable(
    *,
    sink: "Sink | None" = None,
    max_roots: int = 64,
    max_children: int = 64,
) -> Tracer:
    """Turn tracing on (idempotent) and return the active tracer.

    When already enabled the existing tracer is kept (its caps are not
    changed) and ``sink``, if given, is added to it.
    """
    global _active
    with _switch_lock:
        tracer = _active
        if tracer is None:
            tracer = Tracer(max_roots=max_roots, max_children=max_children)
            _active = tracer
    if sink is not None:
        tracer.add_sink(sink)
    return tracer


def disable() -> None:
    """Turn tracing off; in-flight spans complete unrecorded."""
    global _active
    with _switch_lock:
        _active = None


def is_enabled() -> bool:
    return _active is not None


def get_tracer() -> "Tracer | None":
    """The active tracer, or None while disabled."""
    return _active


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: "float | None") -> str:
    if seconds is None:
        return "?"
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_tree(span: Span, indent: int = 0) -> str:
    """Indented text rendering of one span tree."""
    lines: list[str] = []
    _render_into(span, indent, lines)
    return "\n".join(lines)


def _render_into(span: Span, indent: int, lines: list[str]) -> None:
    attrs = ""
    if span.attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        attrs = f"  [{inner}]"
    error = f"  !{span.error}" if span.error else ""
    lines.append(
        f"{'  ' * indent}- {span.name}  "
        f"{_format_seconds(span.duration)}{attrs}{error}"
    )
    for child in span.children:
        _render_into(child, indent + 1, lines)
    if span.dropped_children:
        lines.append(
            f"{'  ' * (indent + 1)}... {span.dropped_children} more "
            "child span(s) dropped (max_children cap)"
        )


def render_aggregate(aggregate: dict[str, dict[str, float]]) -> str:
    """Fixed-width table of per-name aggregates."""
    if not aggregate:
        return "(no spans recorded)"
    width = max(len(name) for name in aggregate)
    lines = [
        f"{'span':<{width}} {'count':>8} {'total':>10} {'mean':>10} {'max':>10}"
    ]
    for name, entry in aggregate.items():
        lines.append(
            f"{name:<{width}} {int(entry['count']):>8} "
            f"{_format_seconds(entry['total_s']):>10} "
            f"{_format_seconds(entry['mean_s']):>10} "
            f"{_format_seconds(entry['max_s']):>10}"
        )
    return "\n".join(lines)


def spans_to_dicts(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """JSON-ready list of span trees (for stats payloads / --json)."""
    return [span.to_dict() for span in spans]
