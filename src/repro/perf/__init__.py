"""Performance telemetry: span tracing and the benchmark harness.

Two halves, deliberately decoupled:

* :mod:`repro.perf.trace` -- a lightweight span tracer wired into the
  synthesis hot paths.  Off by default (a disabled ``trace()`` call is
  a global read and a ``None`` test); ``repro trace`` and the service
  daemon's ``--trace`` flag turn it on.
* :mod:`repro.perf.bench` / :mod:`repro.perf.compare` -- the ``repro
  bench`` harness: pinned suites over the paper's hot operations,
  schema-versioned ``BENCH_*.json`` records, and the baseline diff
  that gates CI (``--compare --tolerance``).

This package is imported by ``repro.core`` and ``repro.synth`` (for
``trace``), so the tracer half must stay standard-library-only; the
bench half may import the rest of the library freely.  Only the trace
API is re-exported here -- hot paths import ``repro.perf.trace``
directly, and bench consumers import the submodules they need.
"""

from repro.perf.trace import (
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    is_enabled,
    render_aggregate,
    render_tree,
    spans_to_dicts,
    trace,
)

__all__ = [
    "Span",
    "Tracer",
    "disable",
    "enable",
    "get_tracer",
    "is_enabled",
    "render_aggregate",
    "render_tree",
    "spans_to_dicts",
    "trace",
]
