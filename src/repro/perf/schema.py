"""Schema-versioned benchmark records (the ``BENCH_*.json`` format).

One :class:`BenchRecord` is one run of a bench suite: per-op wall-time
statistics, the scale knobs the suite ran at, and a host fingerprint.
Records are written as ``BENCH_<utc-timestamp>.json`` files -- the
repository's append-only perf trajectory -- and one of them is
committed as ``benchmarks/BENCH_baseline.json``, the baseline the CI
regression gate compares against (see :mod:`repro.perf.compare` and
``docs/BENCHMARKS.md``).

The format is deliberately strict: ``BenchRecord.from_dict`` validates
the schema tag, every required field, and every statistic's type and
sign, raising :class:`repro.errors.BenchDataError` on anything off.  A
perf gate that silently accepts a half-written record gates nothing.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import BenchDataError

__all__ = [
    "SCHEMA",
    "BenchRecord",
    "OpStats",
    "bench_filename",
    "host_fingerprint",
]

#: Schema tag; bump the suffix on breaking format changes.
SCHEMA = "repro-bench/1"

#: The op whose median is used to normalize cross-host comparisons.
CALIBRATION_OP = "calibration.spin"

_STAT_FIELDS = ("median_s", "p90_s", "min_s", "mean_s")


@dataclass(frozen=True)
class OpStats:
    """Wall-time statistics for one benchmark op.

    ``samples`` per-op timing samples were collected; each sample timed
    ``inner_iterations`` back-to-back calls (sub-millisecond ops are
    batched so a sample is long enough to measure).  All ``*_s`` values
    are per-call seconds.
    """

    median_s: float
    p90_s: float
    min_s: float
    mean_s: float
    samples: int
    inner_iterations: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "median_s": self.median_s,
            "p90_s": self.p90_s,
            "min_s": self.min_s,
            "mean_s": self.mean_s,
            "samples": self.samples,
            "inner_iterations": self.inner_iterations,
        }

    @classmethod
    def from_dict(cls, name: str, data: Any) -> "OpStats":
        if not isinstance(data, Mapping):
            raise BenchDataError(f"op {name!r}: stats must be an object")
        for key in _STAT_FIELDS:
            value = data.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise BenchDataError(
                    f"op {name!r}: {key} must be a number, got {value!r}"
                )
            if value < 0:
                raise BenchDataError(
                    f"op {name!r}: {key} must be non-negative, got {value!r}"
                )
        for key in ("samples", "inner_iterations"):
            value = data.get(key)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise BenchDataError(
                    f"op {name!r}: {key} must be a positive integer, "
                    f"got {value!r}"
                )
        return cls(
            median_s=float(data["median_s"]),
            p90_s=float(data["p90_s"]),
            min_s=float(data["min_s"]),
            mean_s=float(data["mean_s"]),
            samples=int(data["samples"]),
            inner_iterations=int(data["inner_iterations"]),
        )


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark run: suite, scale, host, per-op statistics."""

    suite: str
    scale: dict[str, int]
    host: dict[str, Any]
    ops: dict[str, OpStats]
    created_unix: float
    calibration_op: "str | None" = CALIBRATION_OP
    schema: str = SCHEMA
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        body: dict[str, Any] = {
            "schema": self.schema,
            "suite": self.suite,
            "created_unix": self.created_unix,
            "created_iso": _iso(self.created_unix),
            "scale": dict(self.scale),
            "host": dict(self.host),
            "calibration_op": self.calibration_op,
            "ops": {
                name: stats.to_dict()
                for name, stats in sorted(self.ops.items())
            },
        }
        if self.extra:
            body["extra"] = dict(self.extra)
        return body

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def dump(self, path: "Path | str") -> Path:
        target = Path(path)
        target.write_text(self.to_json(), encoding="utf-8")
        return target

    # ------------------------------------------------------------------
    # Deserialization + validation
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Any) -> "BenchRecord":
        if not isinstance(data, Mapping):
            raise BenchDataError("bench record must be a JSON object")
        schema = data.get("schema")
        if schema != SCHEMA:
            raise BenchDataError(
                f"unsupported bench schema {schema!r} (expected {SCHEMA!r})"
            )
        suite = data.get("suite")
        if not isinstance(suite, str) or not suite:
            raise BenchDataError(f"suite must be a non-empty string, got {suite!r}")
        created = data.get("created_unix")
        if not isinstance(created, (int, float)) or isinstance(created, bool) \
                or created < 0:
            raise BenchDataError(
                f"created_unix must be a non-negative number, got {created!r}"
            )
        scale_raw = data.get("scale")
        if not isinstance(scale_raw, Mapping):
            raise BenchDataError("scale must be an object of integer knobs")
        scale: dict[str, int] = {}
        for key, value in scale_raw.items():
            if not isinstance(value, int) or isinstance(value, bool):
                raise BenchDataError(
                    f"scale knob {key!r} must be an integer, got {value!r}"
                )
            scale[str(key)] = value
        host = data.get("host")
        if not isinstance(host, Mapping):
            raise BenchDataError("host must be an object")
        ops_raw = data.get("ops")
        if not isinstance(ops_raw, Mapping) or not ops_raw:
            raise BenchDataError("ops must be a non-empty object")
        ops = {
            str(name): OpStats.from_dict(str(name), stats)
            for name, stats in ops_raw.items()
        }
        calibration = data.get("calibration_op")
        if calibration is not None and not isinstance(calibration, str):
            raise BenchDataError(
                f"calibration_op must be a string or null, got {calibration!r}"
            )
        if isinstance(calibration, str) and calibration not in ops:
            calibration = None
        extra = data.get("extra")
        return cls(
            suite=suite,
            scale=scale,
            host={str(k): v for k, v in host.items()},
            ops=ops,
            created_unix=float(created),
            calibration_op=calibration,
            schema=str(schema),
            extra=dict(extra) if isinstance(extra, Mapping) else {},
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchRecord":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise BenchDataError(f"bench record is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: "Path | str") -> "BenchRecord":
        source = Path(path)
        try:
            text = source.read_text(encoding="utf-8")
        except OSError as exc:
            raise BenchDataError(f"cannot read bench record {source}: {exc}") from exc
        return cls.from_json(text)


def _iso(created_unix: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(created_unix))


def bench_filename(created_unix: float) -> str:
    """``BENCH_<compact-utc-timestamp>.json`` for a run timestamp."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(created_unix))
    return f"BENCH_{stamp}.json"


def host_fingerprint() -> dict[str, Any]:
    """Enough host identity to interpret absolute timings later."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": str(numpy.__version__),
        "cpu_count": os.cpu_count() or 1,
    }
