"""Shared environment knobs for the benchmark harness.

Both the pytest benchmark suite (``benchmarks/conftest.py``) and the
``repro bench`` harness read the same scale knobs and share the same
on-disk database cache, so a CI job that restores ``.bench-cache`` (or
points ``REPRO_BENCH_CACHE`` somewhere persistent) warms every consumer
at once:

* ``REPRO_BENCH_K``      -- BFS database depth (default 6).
* ``REPRO_BENCH_MAX_L``  -- search reach L = k + m (default 11).
* ``REPRO_SAMPLES``      -- random permutations for the Table 3 style
  experiments (default 60).
* ``REPRO_BENCH_CACHE``  -- database cache directory (default: a
  ``.bench-cache`` directory supplied by the caller, falling back to
  the current working directory).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

__all__ = ["BenchScale", "bench_cache_dir"]


def _int_env(env: Mapping[str, str], name: str, default: int) -> int:
    raw = env.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from exc


@dataclass(frozen=True)
class BenchScale:
    """The benchmark scale knobs, resolved from the environment.

    ``max_list_size`` derives m from L = k + m, clamped to the database
    depth (lists deeper than k cannot be materialized).
    """

    k: int = 6
    max_l: int = 11
    samples: int = 60

    @property
    def max_list_size(self) -> int:
        return max(0, min(self.max_l - self.k, self.k))

    @classmethod
    def from_env(cls, env: "Mapping[str, str] | None" = None) -> "BenchScale":
        source: Mapping[str, str] = os.environ if env is None else env
        return cls(
            k=_int_env(source, "REPRO_BENCH_K", 6),
            max_l=_int_env(source, "REPRO_BENCH_MAX_L", 11),
            samples=_int_env(source, "REPRO_SAMPLES", 60),
        )


def bench_cache_dir(
    default: "Path | str | None" = None,
    env: "Mapping[str, str] | None" = None,
) -> Path:
    """The benchmark database cache directory.

    ``REPRO_BENCH_CACHE`` wins when set (CI points it at a restored
    cache volume); otherwise ``default`` (callers anchored to a repo
    checkout pass their own); otherwise ``.bench-cache`` under the
    current working directory.
    """
    source: Mapping[str, str] = os.environ if env is None else env
    raw = source.get("REPRO_BENCH_CACHE")
    if raw is not None and raw.strip():
        return Path(raw).expanduser()
    if default is not None:
        return Path(default)
    return Path.cwd() / ".bench-cache"
