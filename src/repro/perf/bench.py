"""The ``repro bench`` runner: time a suite, emit a BenchRecord.

Sampling strategy per op:

* one untimed warmup call (JIT-free Python, but it faults caches in);
* estimate the per-call cost from the warmup, then pick an inner
  repetition count so each timing sample lasts >= ~5 ms (sub-clock
  resolution ops are batched; anything slower runs once per sample);
* collect samples until both ``min_samples`` and the op's time budget
  are met, capped at ``max_samples``.

Ops marked ``once`` (whole database builds) skip inner batching and
collect exactly ``min_samples`` samples.  Statistics are computed over
per-call seconds (sample / inner iterations): median, p90 (nearest-rank
on the sorted samples), min, mean.
"""

from __future__ import annotations

import math
import time
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import BenchDataError
from repro.perf.env import BenchScale
from repro.perf.schema import BenchRecord, OpStats, host_fingerprint
from repro.perf.suites import BenchContext, BenchOp, suite_ops, suite_scale

__all__ = ["run_op", "run_suite"]

#: Minimum duration of one timing sample; ops cheaper than this are
#: batched into inner iterations so the clock resolution is negligible.
_MIN_SAMPLE_S = 0.005


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted per-call timings."""
    index = round(q * (len(sorted_samples) - 1))
    return sorted_samples[index]


def run_op(op: BenchOp, ctx: BenchContext) -> OpStats:
    """Time one op and return its per-call statistics."""
    thunk = op.setup(ctx)

    # Warmup + cost estimate.
    started = time.perf_counter()
    thunk()
    estimate = time.perf_counter() - started

    if op.once:
        inner = 1
        max_samples = op.min_samples
        budget = 0.0
    else:
        inner = max(1, math.ceil(_MIN_SAMPLE_S / max(estimate, 1e-9)))
        max_samples = op.max_samples
        budget = op.target_time

    samples: list[float] = []
    elapsed = 0.0
    while len(samples) < max_samples and (
        len(samples) < op.min_samples or elapsed < budget
    ):
        started = time.perf_counter()
        if inner == 1:
            thunk()
        else:
            for _ in range(inner):
                thunk()
        sample = time.perf_counter() - started
        elapsed += sample
        samples.append(sample / inner)

    samples.sort()
    return OpStats(
        median_s=_percentile(samples, 0.5),
        p90_s=_percentile(samples, 0.9),
        min_s=samples[0],
        mean_s=sum(samples) / len(samples),
        samples=len(samples),
        inner_iterations=inner,
    )


def run_suite(
    name: str,
    *,
    scale_env: "BenchScale | None" = None,
    cache_dir: "Path | None" = None,
    select: "Sequence[str] | None" = None,
    progress: "Callable[[str], None] | None" = None,
) -> BenchRecord:
    """Run a named suite and return the (unwritten) BenchRecord.

    ``select`` restricts the run to the named ops (the calibration op
    is always included so the record stays comparable); unknown names
    in ``select`` raise :class:`BenchDataError` rather than silently
    benchmarking nothing.
    """
    ops = suite_ops(name)
    scale = suite_scale(name, scale_env)
    if select is not None:
        known = {op.name for op in ops}
        unknown = sorted(set(select) - known)
        if unknown:
            raise BenchDataError(
                f"unknown op(s) for suite {name!r}: {', '.join(unknown)}"
            )
        wanted = set(select)
        ops = tuple(
            op for op in ops
            if op.name in wanted or op.name == "calibration.spin"
        )

    ctx = BenchContext(scale, cache_dir)
    stats: dict[str, OpStats] = {}
    try:
        for op in ops:
            if progress is not None:
                progress(f"bench: {op.name} ...")
            result = run_op(op, ctx)
            stats[op.name] = result
            if progress is not None:
                progress(
                    f"bench: {op.name}  median "
                    f"{result.median_s * 1e3:.3f} ms  "
                    f"({result.samples} x {result.inner_iterations})"
                )
    finally:
        ctx.close()

    calibration = "calibration.spin" if "calibration.spin" in stats else None
    return BenchRecord(
        suite=name,
        scale=scale,
        host=host_fingerprint(),
        ops=stats,
        created_unix=time.time(),
        calibration_op=calibration,
    )
