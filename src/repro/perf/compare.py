"""Baseline comparison for ``repro bench --compare`` (the CI perf gate).

The gate diffs a current :class:`~repro.perf.schema.BenchRecord`
against a committed baseline and fails on any op whose median slowed
by more than the tolerance.

Cross-host normalization: CI runners are not the machine the baseline
was recorded on, so absolute medians are incomparable.  When both
records carry the calibration op (a fixed pure-Python loop), the
comparison is *normalized*: every ratio is divided by the hosts'
calibration ratio, cancelling raw single-core speed differences.  What
remains -- and what the gate judges -- is each op's cost *relative to
plain Python on the same host*.

Status per op:

* ``ok`` / ``regression`` / ``improved`` -- judged against tolerance;
* ``new``     -- op only in the current record (never fails: suites
  grow without invalidating old baselines);
* ``missing`` -- op only in the baseline (warned, not failed: an op
  retired from the suite should come with a baseline refresh, but must
  not permanently wedge CI).

A scale mismatch (different k / L / sample knobs) fails outright: the
numbers measure different workloads and a green diff would be noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perf.schema import BenchRecord, OpStats

__all__ = ["CompareReport", "OpComparison", "compare_records"]

STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVED = "improved"
STATUS_NEW = "new"
STATUS_MISSING = "missing"


@dataclass(frozen=True)
class OpComparison:
    """One op's verdict: medians, raw ratio, and the gated ratio."""

    op: str
    status: str
    baseline_median: "float | None" = None
    current_median: "float | None" = None
    ratio: "float | None" = None
    gated_ratio: "float | None" = None


@dataclass(frozen=True)
class CompareReport:
    """The full diff; ``ok`` is the gate's verdict."""

    tolerance_pct: float
    normalized: bool
    comparisons: list[OpComparison] = field(default_factory=list)
    scale_mismatch: "str | None" = None

    @property
    def regressions(self) -> list[OpComparison]:
        return [c for c in self.comparisons if c.status == STATUS_REGRESSION]

    @property
    def ok(self) -> bool:
        return self.scale_mismatch is None and not self.regressions

    def render(self) -> str:
        lines: list[str] = []
        if self.scale_mismatch is not None:
            lines.append(f"FAIL scale mismatch: {self.scale_mismatch}")
            return "\n".join(lines)
        mode = "normalized" if self.normalized else "raw"
        lines.append(
            f"perf gate: tolerance {self.tolerance_pct:g}% ({mode} ratios)"
        )
        width = max((len(c.op) for c in self.comparisons), default=4)
        for comp in self.comparisons:
            if comp.status == STATUS_NEW:
                lines.append(f"  NEW   {comp.op:<{width}}  (no baseline)")
                continue
            if comp.status == STATUS_MISSING:
                lines.append(
                    f"  GONE  {comp.op:<{width}}  (baseline only; refresh "
                    "benchmarks/BENCH_baseline.json)"
                )
                continue
            tag = {
                STATUS_OK: "ok  ",
                STATUS_IMPROVED: "FAST",
                STATUS_REGRESSION: "SLOW",
            }[comp.status]
            assert comp.gated_ratio is not None
            assert comp.baseline_median is not None
            assert comp.current_median is not None
            lines.append(
                f"  {tag}  {comp.op:<{width}}  "
                f"{_ms(comp.baseline_median)} -> {_ms(comp.current_median)}"
                f"  x{comp.gated_ratio:.3f}"
            )
        verdict = "PASS" if self.ok else (
            f"FAIL: {len(self.regressions)} op(s) regressed beyond "
            f"{self.tolerance_pct:g}%"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _ms(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    return f"{seconds * 1e6:.1f}us"


def _calibration_median(record: BenchRecord) -> "float | None":
    if record.calibration_op is None:
        return None
    stats: "OpStats | None" = record.ops.get(record.calibration_op)
    if stats is None or stats.median_s <= 0:
        return None
    return stats.median_s


def compare_records(
    current: BenchRecord,
    baseline: BenchRecord,
    *,
    tolerance_pct: float = 25.0,
    normalize: "bool | None" = None,
) -> CompareReport:
    """Diff ``current`` against ``baseline``.

    ``normalize=None`` (the default) normalizes by the calibration op
    whenever both records carry it; ``True`` requires it (mismatch
    reported as a scale mismatch); ``False`` compares raw medians.
    """
    mismatched = sorted(
        key
        for key in set(current.scale) | set(baseline.scale)
        if current.scale.get(key) != baseline.scale.get(key)
    )
    if mismatched:
        detail = ", ".join(
            f"{key}: baseline={baseline.scale.get(key)!r} "
            f"current={current.scale.get(key)!r}"
            for key in mismatched
        )
        return CompareReport(
            tolerance_pct=tolerance_pct,
            normalized=False,
            scale_mismatch=detail,
        )

    cur_calib = _calibration_median(current)
    base_calib = _calibration_median(baseline)
    can_normalize = cur_calib is not None and base_calib is not None
    if normalize is True and not can_normalize:
        return CompareReport(
            tolerance_pct=tolerance_pct,
            normalized=False,
            scale_mismatch=(
                "normalization requested but a record lacks calibration "
                "statistics"
            ),
        )
    normalized = can_normalize if normalize is None else normalize
    # Dividing a current median by `factor` converts it to baseline-host
    # units: factor = cur_calib / base_calib.
    factor = (
        cur_calib / base_calib
        if normalized and cur_calib is not None and base_calib is not None
        else 1.0
    )

    threshold = 1.0 + tolerance_pct / 100.0
    skip_gate = {
        name
        for name in (current.calibration_op, baseline.calibration_op)
        if name is not None
    }

    comparisons: list[OpComparison] = []
    for name in sorted(set(current.ops) | set(baseline.ops)):
        cur = current.ops.get(name)
        base = baseline.ops.get(name)
        if base is None:
            assert cur is not None
            comparisons.append(
                OpComparison(
                    op=name, status=STATUS_NEW, current_median=cur.median_s
                )
            )
            continue
        if cur is None:
            comparisons.append(
                OpComparison(
                    op=name,
                    status=STATUS_MISSING,
                    baseline_median=base.median_s,
                )
            )
            continue
        ratio = (
            cur.median_s / base.median_s if base.median_s > 0 else float("inf")
        )
        gated_ratio = ratio / factor
        if name in skip_gate:
            status = STATUS_OK
        elif gated_ratio > threshold:
            status = STATUS_REGRESSION
        elif gated_ratio < 1.0 / threshold:
            status = STATUS_IMPROVED
        else:
            status = STATUS_OK
        comparisons.append(
            OpComparison(
                op=name,
                status=status,
                baseline_median=base.median_s,
                current_median=cur.median_s,
                ratio=ratio,
                gated_ratio=gated_ratio,
            )
        )

    return CompareReport(
        tolerance_pct=tolerance_pct,
        normalized=normalized,
        comparisons=comparisons,
    )
