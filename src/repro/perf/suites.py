"""Pinned benchmark suites for ``repro bench``.

Two tiers:

* ``quick`` -- the CI gate: the paper's Section 3.3 micro-ops (scalar
  and vectorized), hash-table probing, a small BFS build, database
  store cold starts (``.npz`` load-and-rebuild vs ``.rdb`` zero-copy
  mmap) with mapped probing, one query per search path (database
  hit / list scan / exhausted scan), the same hard query under the
  racing engine, the cancel round-trip latency of a preempted scan,
  the shard router's pure routing decision, an in-process sharded
  scatter/gather batch, and the function-form compile front-end (spec
  normalization, and an end-to-end don't-care compile).  A few seconds
  end to end at ``REPRO_BENCH_K=5``.
* ``full``  -- everything in quick plus the n=4 database build at the
  configured depth, a Table-3-style random batch, a service-layer
  cached batch, and paired fast-path batch throughput ops over a real
  4-process shard cluster vs a single daemon (the sharding speedup,
  measured honestly over TCP).  Minutes, for local before/after
  measurements.

Every suite starts with ``calibration.spin``, a fixed pure-Python loop
whose median calibrates the host's single-core speed; the comparer
normalizes op timings by it so a committed baseline from one machine
can gate CI runs on another (see :mod:`repro.perf.compare`).

Ops are *pinned*: same name, same workload, same seeds across runs --
renaming or reworking an op invalidates baselines and must come with a
baseline refresh (``docs/BENCHMARKS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import BenchDataError
from repro.perf.env import BenchScale

__all__ = ["BenchContext", "BenchOp", "suite_names", "suite_ops", "suite_scale"]

#: Vector length for the vectorized micro-ops (matches bench_micro_ops).
N_VECTOR = 1 << 16


@dataclass(frozen=True)
class BenchOp:
    """One benchmark op: a setup returning the timed thunk.

    ``once`` marks heavy ops (whole builds): they are never batched
    into inner iterations and collect only ``min_samples`` samples.
    """

    name: str
    setup: Callable[["BenchContext"], Callable[[], Any]]
    target_time: float = 0.3
    min_samples: int = 5
    max_samples: int = 50
    once: bool = False


class BenchContext:
    """Shared lazy resources for a suite run (engine, service, rng)."""

    def __init__(self, scale: dict[str, int], cache_dir: "Path | None") -> None:
        self.scale = scale
        self.cache_dir = cache_dir
        self._engine: Any = None
        self._race_engine: Any = None
        self._service: Any = None
        self._shard_router: Any = None
        self._shard_clusters: "dict[int, Any]" = {}
        self._cluster_tmp: "str | None" = None
        self._store_paths: "tuple[Path, Path] | None" = None
        self._store_tmp: "str | None" = None

    # ------------------------------------------------------------------
    # Lazy resources
    # ------------------------------------------------------------------
    def optimal_engine(self) -> Any:
        """A prepared optimal engine at the suite's (k, m) scale."""
        if self._engine is None:
            from repro.engines import create_engine

            self._engine = create_engine(
                "optimal",
                n_wires=4,
                k=self.scale["k"],
                max_list_size=self.scale["max_list_size"],
                cache_dir=self.cache_dir if self.cache_dir else False,
            ).prepare()
        return self._engine

    def race_engine(self) -> Any:
        """The racing engine sharing the warm optimal engine's tables."""
        if self._race_engine is None:
            from repro.engines import create_engine

            self._race_engine = create_engine(
                "race", handle=self.optimal_engine().handle()
            )
        return self._race_engine

    def service(self) -> Any:
        """A started in-process synthesis service over the warm engine."""
        if self._service is None:
            from repro.service import ServiceConfig, SynthesisService

            handle = self.optimal_engine().handle()
            self._service = SynthesisService(
                handle,
                config=ServiceConfig(
                    n_wires=handle.n_wires,
                    k=handle.k,
                    max_list_size=handle.max_list_size,
                    batch_window=0.0,
                ),
            )
            self._service.start()
        return self._service

    def shard_router(self) -> Any:
        """An in-process 4-shard router over the warm handle.

        Every shard wraps its own :class:`SynthesisService`; calls run
        inline (no sockets, no processes), so ops over this router time
        the *routing and scatter/gather machinery itself*, not
        parallelism -- see the full suite's cluster ops for that.
        """
        if self._shard_router is None:
            from repro.service import ServiceConfig, SynthesisService
            from repro.service.sharding import (
                InProcessShard,
                ShardingConfig,
                ShardRouter,
                ShardSupervisor,
            )

            handle = self.optimal_engine().handle()
            supervisor = ShardSupervisor(
                config=ShardingConfig(probe_interval=3600.0)
            )
            for index in range(4):
                service = SynthesisService(
                    handle,
                    config=ServiceConfig(
                        n_wires=handle.n_wires,
                        k=handle.k,
                        max_list_size=handle.max_list_size,
                        batch_window=0.0,
                    ),
                ).start()
                supervisor.add(
                    InProcessShard(f"shard-{index}", service).start()
                )
            self._shard_router = ShardRouter(
                supervisor, n_wires=handle.n_wires
            )
        return self._shard_router

    def process_cluster(self, count: int) -> Any:
        """A real ``count``-process shard cluster at the suite's k (full
        suite only).  Shards share one pre-built ``.rdb`` store in the
        bench cache directory (or a temp directory removed by
        :meth:`close`); the 1-shard cluster is the single-daemon
        baseline its 4-shard sibling is compared against.
        """
        if count not in self._shard_clusters:
            import tempfile

            from repro.service.sharding import ShardCluster

            if self.cache_dir:
                cache = Path(self.cache_dir)
                cache.mkdir(parents=True, exist_ok=True)
            elif self._cluster_tmp is not None:
                cache = Path(self._cluster_tmp)
            else:
                self._cluster_tmp = tempfile.mkdtemp(
                    prefix="repro-bench-shards-"
                )
                cache = Path(self._cluster_tmp)
            cluster = ShardCluster.launch(
                count,
                k=self.scale["k"],
                max_list_size=self.scale["max_list_size"],
                cache_dir=cache,
            )
            cluster.router.start()
            self._shard_clusters[count] = cluster
        return self._shard_clusters[count]

    def db_store_paths(self) -> "tuple[Path, Path]":
        """``(npz_path, rdb_path)`` persisted stores of the suite database.

        Written into the bench cache directory when one is configured
        (so reruns reuse them, keyed by k in the filename), otherwise
        into a temp directory removed by :meth:`close`.
        """
        if self._store_paths is None:
            import tempfile

            db = self.optimal_engine().impl.database
            if self.cache_dir:
                base = Path(self.cache_dir)
                base.mkdir(parents=True, exist_ok=True)
            else:
                self._store_tmp = tempfile.mkdtemp(prefix="repro-bench-db-")
                base = Path(self._store_tmp)
            npz = base / f"bench-db-n4-k{self.scale['k']}.npz"
            rdb = npz.with_suffix(".rdb")
            if not npz.exists():
                db.save(npz)
            if not rdb.exists():
                from repro.store import write_rdb

                write_rdb(db, rdb)
            self._store_paths = (npz, rdb)
        return self._store_paths

    def close(self) -> None:
        if self._service is not None:
            self._service.shutdown(save_cache=False)
            self._service = None
        if self._shard_router is not None:
            self._shard_router.shutdown()
            self._shard_router = None
        for cluster in self._shard_clusters.values():
            cluster.close()
        self._shard_clusters = {}
        if self._cluster_tmp is not None:
            import shutil

            shutil.rmtree(self._cluster_tmp, ignore_errors=True)
            self._cluster_tmp = None
        if self._store_tmp is not None:
            import shutil

            shutil.rmtree(self._store_tmp, ignore_errors=True)
            self._store_tmp = None
        self._store_paths = None
        self._race_engine = None
        self._engine = None

    # ------------------------------------------------------------------
    # Deterministic workload words
    # ------------------------------------------------------------------
    def easy_word(self) -> int:
        """A word of size exactly k: the deepest database fast path."""
        db = self.optimal_engine().impl.database
        reps = db.reps_by_size[self.scale["k"]]
        if reps.shape[0] == 0:
            raise BenchDataError(
                f"no representatives of size {self.scale['k']} "
                "(database shallower than the suite scale)"
            )
        return int(reps[0])

    def hard_word(self) -> int:
        """A word of size in (k, k+m]: forces an A_i list scan.

        Built deterministically by composing a size-k representative
        with a size-m representative until the product leaves the
        database; its optimal size is then > k but <= k + m, so the
        scan must succeed.
        """
        from repro.core import packed

        synth = self.optimal_engine().impl
        db = synth.database
        k = self.scale["k"]
        m = self.scale["max_list_size"]
        if m < 1:
            raise BenchDataError("hard-word op needs max_list_size >= 1")
        for a in db.reps_by_size[k][:64]:
            for b in db.reps_by_size[m][:64]:
                word = packed.compose(int(a), int(b), 4)
                if db.size_of(word) is None:
                    return word
        raise BenchDataError(
            "could not construct a beyond-database word at this scale"
        )

    def out_of_reach_word(self) -> int:
        """A word provably beyond L = k + m: the exhausted-scan path."""
        from repro.rng.sampling import PermutationSampler

        synth = self.optimal_engine().impl
        sampler = PermutationSampler(4, seed=5489)
        limit = synth.max_size
        for _ in range(512):
            word = sampler.sample_word()
            if synth.search_engine.prove_lower_bound(word) > limit:
                return word
        raise BenchDataError(
            f"no out-of-reach word found in 512 draws at L={limit} "
            "(scale too deep for the exhausted-scan op)"
        )


# ----------------------------------------------------------------------
# Op setups
# ----------------------------------------------------------------------
def _setup_spin(_ctx: BenchContext) -> Callable[[], Any]:
    def spin() -> int:
        x = 1
        for _ in range(50_000):
            x = (x * 1103515245 + 12345) & 0xFFFFFFFF
        return x

    return spin


def _setup_compose_scalar(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.core import packed
    from repro.rng.sampling import PermutationSampler

    sampler = PermutationSampler(4, seed=2)
    p, q = sampler.sample_word(), sampler.sample_word()
    return lambda: packed.compose(p, q, 4)


def _setup_inverse_scalar(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.core import packed
    from repro.rng.sampling import PermutationSampler

    p = PermutationSampler(4, seed=2).sample_word()
    return lambda: packed.inverse(p, 4)


def _setup_canonical_scalar(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.core import equivalence
    from repro.rng.sampling import PermutationSampler

    p = PermutationSampler(4, seed=2).sample_word()
    return lambda: equivalence.canonical(p, 4)


def _setup_hash_scalar(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.hashing.wang import hash64shift
    from repro.rng.sampling import PermutationSampler

    p = PermutationSampler(4, seed=2).sample_word()
    return lambda: hash64shift(p)


def _vector_words() -> Any:
    from repro.rng.sampling import PermutationSampler

    return PermutationSampler(4, seed=1).sample_words(N_VECTOR)


def _setup_compose_vectorized(_ctx: BenchContext) -> Callable[[], Any]:
    import numpy as np

    from repro.core.packed_np import compose_np
    from repro.rng.sampling import PermutationSampler

    words = _vector_words()
    q = np.uint64(PermutationSampler(4, seed=2).sample_word())
    return lambda: compose_np(words, q, 4)


def _setup_canonical_vectorized(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.core.packed_np import canonical_np

    words = _vector_words()
    return lambda: canonical_np(words, 4)


def _setup_hash_vectorized(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.hashing.wang import hash64shift_np

    words = _vector_words()
    return lambda: hash64shift_np(words)


def _setup_table_lookup_batch(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.hashing.table import LinearProbingTable

    words = _vector_words()
    table = LinearProbingTable(capacity_bits=18)
    table.insert_batch(words[: N_VECTOR // 2], 1)
    # repro: allow[unrouted-lookup] the op times raw probing over a 50/50 hit/miss mix; canonicalizing the keys would fold the misses away and change what is measured
    return lambda: table.lookup_batch(words)


def _setup_bfs_build_n3(_ctx: BenchContext) -> Callable[[], Any]:
    from repro.synth.bfs import build_database

    return lambda: build_database(3, 8)


def _setup_bfs_build_n4(ctx: BenchContext) -> Callable[[], Any]:
    from repro.synth.bfs import build_database

    k = ctx.scale["k"]
    return lambda: build_database(4, k)


def _setup_db_cold_start_npz(ctx: BenchContext) -> Callable[[], Any]:
    from repro.store import open_database

    npz, _rdb = ctx.db_store_paths()
    return lambda: open_database(npz)


def _setup_db_cold_start_mmap(ctx: BenchContext) -> Callable[[], Any]:
    from repro.store import map_database

    _npz, rdb = ctx.db_store_paths()
    return lambda: map_database(rdb)


def _setup_db_mapped_probe_batch(ctx: BenchContext) -> Callable[[], Any]:
    from repro.store import map_database

    _npz, rdb = ctx.db_store_paths()
    table = map_database(rdb).table
    words = _vector_words()
    # repro: allow[unrouted-lookup] the op times raw mapped probing over uniform random keys (nearly all misses); canonicalizing would change what is measured
    return lambda: table.lookup_batch(words)


def _synth_thunk(ctx: BenchContext, word: int) -> Callable[[], Any]:
    from repro.core.permutation import Permutation
    from repro.engines import SynthesisRequest

    engine = ctx.optimal_engine()
    request = SynthesisRequest(spec=Permutation(word, 4), n_wires=4)
    return lambda: engine.synthesize(request)


def _setup_search_db_hit(ctx: BenchContext) -> Callable[[], Any]:
    return _synth_thunk(ctx, ctx.easy_word())


def _setup_search_scan(ctx: BenchContext) -> Callable[[], Any]:
    return _synth_thunk(ctx, ctx.hard_word())


def _setup_search_exhausted(ctx: BenchContext) -> Callable[[], Any]:
    engine = ctx.optimal_engine().impl.search_engine
    word = ctx.out_of_reach_word()
    return lambda: engine.prove_lower_bound(word)


def _setup_race_hard_query(ctx: BenchContext) -> Callable[[], Any]:
    """The scan-forcing hard word solved by the racing engine.

    Measures the full race cycle -- lane dispatch, the winning proof,
    and loser preemption -- so it is directly comparable against
    ``search.scan`` (the same word on the bare optimal engine).
    """
    from repro.core.permutation import Permutation
    from repro.engines import SynthesisRequest

    engine = ctx.race_engine()
    word = ctx.hard_word()
    request = SynthesisRequest(spec=Permutation(word, 4), n_wires=4)

    def run() -> str:
        result = engine.synthesize(request)
        if result.guarantee != "optimal":
            raise BenchDataError(
                f"race returned {result.guarantee!r} for the hard word"
            )
        return result.extra["winner"]

    return run


def _setup_cancel_latency(ctx: BenchContext) -> Callable[[], Any]:
    """Round trip of preempting an in-flight hard scan.

    Starts the scan-forcing hard word on a worker thread as a
    cancellable work item, requests cooperative cancellation, and
    times until the item settles terminally -- the latency a deadline
    or breaker trip pays to reclaim a hard-path worker.
    """
    import threading

    from repro.core.permutation import Permutation
    from repro.engines import SynthesisRequest
    from repro.service.tasks import CANCELLED, DONE, WorkItem

    engine = ctx.optimal_engine()
    word = ctx.hard_word()
    spec = Permutation(word, 4)

    def run() -> str:
        item = WorkItem(
            "bench.scan",
            lambda token: engine.synthesize(
                SynthesisRequest(
                    spec=spec,
                    n_wires=4,
                    options={"cancel": token.checkpoint},
                )
            ),
        )
        thread = threading.Thread(target=item.run, daemon=True)
        thread.start()
        item.cancel("bench")
        thread.join(timeout=30.0)
        if item.state not in (CANCELLED, DONE):
            raise BenchDataError(
                f"cancelled scan settled in {item.state!r}, not terminally"
            )
        return item.state

    return run


def _setup_search_random_batch(ctx: BenchContext) -> Callable[[], Any]:
    from repro.rng.sampling import PermutationSampler

    synth = ctx.optimal_engine().impl
    words = [
        PermutationSampler(4, seed=5489 + i).sample_word()
        for i in range(ctx.scale["samples"])
    ]

    def run() -> int:
        total = 0
        for word in words:
            size, _exact = synth.size_or_bound(word)
            total += size
        return total

    return run


def _setup_service_cached_batch(ctx: BenchContext) -> Callable[[], Any]:
    import json

    from repro.core.permutation import Permutation

    service = ctx.service()
    db = ctx.optimal_engine().impl.database
    reps = db.reps_by_size[min(3, ctx.scale["k"])]
    lines = [
        json.dumps({
            "id": i,
            "op": "size",
            "spec": Permutation(int(reps[i % reps.shape[0]]), 4).spec(),
        })
        for i in range(32)
    ]

    def run() -> int:
        served = 0
        for line in lines:
            response = json.loads(service.handle_line(line))
            if not response.get("ok"):
                raise BenchDataError(
                    f"service op failed mid-benchmark: {response}"
                )
            served += 1
        return served

    return run


def _batch_line(ctx: BenchContext, requests: int) -> str:
    """One JSONL ``batch`` request of fast-path ``size`` sub-requests
    spread over distinct equivalence classes (so a router scatters it)."""
    import json

    from repro.core.permutation import Permutation

    db = ctx.optimal_engine().impl.database
    reps = db.reps_by_size[min(3, ctx.scale["k"])]
    entries = [
        {
            "id": i,
            "op": "size",
            "spec": Permutation(int(reps[i % reps.shape[0]]), 4).spec(),
        }
        for i in range(requests)
    ]
    return json.dumps({"id": 0, "op": "batch", "requests": entries})


def _batch_thunk(router: Any, line: str, expected: int) -> Callable[[], Any]:
    import json

    def run() -> int:
        body = json.loads(router.handle_line(line))
        if not body.get("ok") or body["result"]["count"] != expected:
            raise BenchDataError(f"sharded batch failed mid-benchmark: {body}")
        return body["result"]["count"]

    return run


def _setup_shard_route_decision(_ctx: BenchContext) -> Callable[[], Any]:
    """Pure routing overhead: owner lookup for 256 keys on a 4-ring."""
    from repro.rng.sampling import PermutationSampler
    from repro.service.sharding import HashRing

    ring = HashRing([f"shard-{i}" for i in range(4)])
    keys = [int(w) for w in PermutationSampler(4, seed=7).sample_words(256)]

    def run() -> int:
        routed = 0
        for key in keys:
            if ring.owner(key) is not None:
                routed += 1
        return routed

    return run


def _setup_shard_inproc_batch(ctx: BenchContext) -> Callable[[], Any]:
    """Scatter/gather machinery over in-process shards (no parallelism:
    this times the router, directly comparable to service.cached_batch)."""
    return _batch_thunk(ctx.shard_router(), _batch_line(ctx, 32), 32)


def _dontcare_table_spec() -> Any:
    """The pinned compile workload: f(x) = x3 on 4 inputs with two
    don't-care rows -- exhaustive completion search (t! = 2), within
    reach at every suite scale with k + m >= 3."""
    from repro.specs import TruthTableSpec

    rows: list = [(x >> 3) & 1 for x in range(16)]
    rows[10] = None
    rows[13] = None
    return TruthTableSpec(rows=tuple(rows), n_inputs=4)


def _setup_compile_spec_normalize(_ctx: BenchContext) -> Callable[[], Any]:
    """Pure front-end overhead: wire round-trip + embedding plan +
    routing word for the pinned don't-care table (no engine, no db)."""
    from repro.specs import plan_embedding, routing_word, spec_from_wire

    spec = _dontcare_table_spec()

    def run() -> int:
        decoded = spec_from_wire(spec.to_wire())
        plan = plan_embedding(decoded)
        word = routing_word(decoded)
        return len(plan.garbage_wires) + (word & 1)

    return run


def _setup_compile_dontcare_embed(ctx: BenchContext) -> Callable[[], Any]:
    """End-to-end ``compile_spec`` of the pinned don't-care table
    against the warm optimal engine (exhaustive completion search)."""
    from repro.specs import compile_spec

    engine = ctx.optimal_engine()
    spec = _dontcare_table_spec()

    def run() -> int:
        result = compile_spec(spec, engine)
        if result.guarantee != "optimal":
            raise BenchDataError(
                f"compile degraded mid-benchmark: {result.guarantee}"
            )
        return result.size

    return run


def _setup_shard_cluster_batch_x4(ctx: BenchContext) -> Callable[[], Any]:
    """Fast-path batch over a real 4-process cluster: slices execute in
    four shard processes concurrently while the router waits on sockets."""
    return _batch_thunk(
        ctx.process_cluster(4).router, _batch_line(ctx, 512), 512
    )


def _setup_shard_cluster_batch_x1(ctx: BenchContext) -> Callable[[], Any]:
    """The same 512-request batch against a single daemon process -- the
    baseline the 4-shard op's speedup is judged against."""
    return _batch_thunk(
        ctx.process_cluster(1).router, _batch_line(ctx, 512), 512
    )


# ----------------------------------------------------------------------
# Suite definitions
# ----------------------------------------------------------------------
_QUICK_OPS: tuple[BenchOp, ...] = (
    BenchOp("calibration.spin", _setup_spin),
    BenchOp("micro.compose_scalar", _setup_compose_scalar),
    BenchOp("micro.inverse_scalar", _setup_inverse_scalar),
    BenchOp("micro.canonical_scalar", _setup_canonical_scalar),
    BenchOp("micro.hash_scalar", _setup_hash_scalar),
    BenchOp("micro.compose_vectorized", _setup_compose_vectorized),
    BenchOp("micro.canonical_vectorized", _setup_canonical_vectorized),
    BenchOp("micro.hash_vectorized", _setup_hash_vectorized),
    BenchOp("table.lookup_batch", _setup_table_lookup_batch),
    BenchOp("bfs.build_n3", _setup_bfs_build_n3, min_samples=3, once=True),
    BenchOp(
        "db.cold_start_npz", _setup_db_cold_start_npz,
        min_samples=3, once=True,
    ),
    BenchOp("db.cold_start_mmap", _setup_db_cold_start_mmap),
    BenchOp("db.mapped_probe_batch", _setup_db_mapped_probe_batch),
    BenchOp("search.db_hit", _setup_search_db_hit),
    BenchOp("search.scan", _setup_search_scan),
    BenchOp("search.exhausted", _setup_search_exhausted, target_time=0.5),
    BenchOp("race.hard_query", _setup_race_hard_query, target_time=0.5),
    BenchOp("task.cancel_latency", _setup_cancel_latency),
    BenchOp("shard.route_decision", _setup_shard_route_decision),
    BenchOp("shard.inproc_batch", _setup_shard_inproc_batch),
    BenchOp("compile.spec_normalize", _setup_compile_spec_normalize),
    BenchOp("compile.dontcare_embed", _setup_compile_dontcare_embed),
)

_FULL_OPS: tuple[BenchOp, ...] = _QUICK_OPS + (
    BenchOp("bfs.build_n4", _setup_bfs_build_n4, min_samples=3, once=True),
    BenchOp(
        "search.random_batch",
        _setup_search_random_batch,
        min_samples=3,
        once=True,
    ),
    BenchOp("service.cached_batch", _setup_service_cached_batch),
    BenchOp(
        "shard.cluster_batch_x1",
        _setup_shard_cluster_batch_x1,
        min_samples=5,
        once=True,
    ),
    BenchOp(
        "shard.cluster_batch_x4",
        _setup_shard_cluster_batch_x4,
        min_samples=5,
        once=True,
    ),
)

_SUITES: dict[str, tuple[BenchOp, ...]] = {
    "quick": _QUICK_OPS,
    "full": _FULL_OPS,
}


def suite_names() -> list[str]:
    return sorted(_SUITES)


def suite_ops(name: str) -> tuple[BenchOp, ...]:
    ops = _SUITES.get(name)
    if ops is None:
        raise BenchDataError(
            f"unknown bench suite {name!r}; known: {', '.join(suite_names())}"
        )
    return ops


def suite_scale(name: str, env: "BenchScale | None" = None) -> dict[str, int]:
    """The pinned scale knobs a suite runs at.

    The quick suite caps the list depth at 3 so its scan ops stay
    CI-sized regardless of ``REPRO_BENCH_MAX_L``; the full suite uses
    the full configured reach.
    """
    scale = env if env is not None else BenchScale.from_env()
    if name == "quick":
        return {
            "k": scale.k,
            "max_list_size": max(1, min(3, scale.k)),
            "samples": min(scale.samples, 30),
        }
    suite_ops(name)  # validate the name
    return {
        "k": scale.k,
        "max_list_size": max(1, scale.max_list_size),
        "samples": scale.samples,
    }
