"""Store registry: resolve, open, convert, describe, verify.

One boundary for "a database lives at this path": callers hand any
``.rdb`` or legacy ``.npz`` path to :func:`open_database` and get an
:class:`OptimalDatabase` back -- memory-mapped for ``.rdb`` (zero copy,
O(page-fault) cold start), fully loaded for ``.npz``.  The ``.rdb``
sidecar convention (``db-n4-k6.npz`` -> ``db-n4-k6.rdb``) lets the
synthesizer upgrade legacy caches in place, and :func:`resolve_store`
prefers the sidecar whenever it exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DatabaseError
from repro.hashing.table import TableStats
from repro.perf.trace import trace
from repro.store.format import StoreHeader, read_header
from repro.store.mapped import map_database
from repro.store.writer import payload_checksum, write_rdb

#: Recognized store formats, by file extension.
FORMAT_RDB = "rdb"
FORMAT_NPZ = "npz"


def store_format(path: "str | Path") -> str:
    """``"rdb"`` or ``"npz"`` from the file extension."""
    suffix = Path(path).suffix.lower()
    if suffix == ".rdb":
        return FORMAT_RDB
    if suffix == ".npz":
        return FORMAT_NPZ
    raise DatabaseError(
        f"unrecognized database store extension {suffix!r} for {path} "
        "(expected .rdb or .npz)"
    )


def rdb_sidecar(path: "str | Path") -> Path:
    """The ``.rdb`` sidecar path for a legacy ``.npz`` cache path."""
    return Path(path).with_suffix(".rdb")


def resolve_store(path: "str | Path") -> Path:
    """The preferred store path for ``path``: its ``.rdb`` sidecar when
    one exists, otherwise the path itself."""
    path = Path(path)
    if store_format(path) == FORMAT_NPZ:
        sidecar = rdb_sidecar(path)
        if sidecar.exists():
            return sidecar
    return path


def open_database(path: "str | Path"):
    """Open a database store of either format.

    ``.rdb`` maps zero-copy; ``.npz`` loads and rebuilds in RAM (the
    legacy path).  Both raise :class:`DatabaseError` naming the path on
    corruption.
    """
    from repro.synth.database import OptimalDatabase

    path = Path(path)
    if store_format(path) == FORMAT_RDB:
        return map_database(path)
    return OptimalDatabase.load(path)


def convert(src: "str | Path", dst: "str | Path"):
    """Convert between store formats; returns the opened source database.

    ``.npz -> .rdb`` is the upgrade path; ``.rdb -> .npz`` exports a
    legacy archive (for tooling that predates the flat format).
    Same-format conversion is a rewrite (useful to re-pack after a
    version bump).
    """
    src, dst = Path(src), Path(dst)
    db = open_database(src)
    if store_format(dst) == FORMAT_RDB:
        write_rdb(db, dst)
    else:
        _save_npz(db, dst)
    return db


def _save_npz(db, path: Path) -> None:
    """Export to the legacy ``.npz`` format (materializes mapped views)."""
    from repro.synth.database import OptimalDatabase

    if isinstance(db, OptimalDatabase) and not any(
        isinstance(r, np.memmap) for r in db.reps_by_size
    ):
        db.save(path)
        return
    materialized = OptimalDatabase.from_reps(
        db.n_wires,
        db.k,
        [np.asarray(r, dtype=np.uint64).copy() for r in db.reps_by_size],
    )
    materialized.save(path)


@dataclass(frozen=True)
class StoreInfo:
    """What ``repro db info`` / the cache listing report per store file."""

    path: Path
    format: str
    size_bytes: int
    n_wires: int
    k: int
    entries: int
    stats: TableStats

    def format_rows(self) -> list[str]:
        rows = [
            f"path       {self.path}",
            f"format     {self.format}",
            f"size       {self.size_bytes / (1 << 20):.1f} MB on disk",
            f"n_wires    {self.n_wires}",
            f"k          {self.k}",
            f"entries    {self.entries}",
        ]
        rows.extend(self.stats.format_rows())
        return rows


def describe(path: "str | Path") -> StoreInfo:
    """Open a store and report its parameters and Table 2 statistics."""
    path = Path(path)
    db = open_database(path)
    return StoreInfo(
        path=path,
        format=store_format(path),
        size_bytes=path.stat().st_size,
        n_wires=db.n_wires,
        k=db.k,
        entries=len(db.table),
        stats=db.table.stats(),
    )


def verify_store(path: "str | Path") -> StoreInfo:
    """Full integrity pass over a store file; returns its description.

    For ``.rdb``: header validation, payload SHA-256 against the stored
    checksum, and a semantic cross-check that every persisted
    representative probes back to its own size through the mapped
    table.  For ``.npz``: a full load (the legacy loader already
    validates structure) plus the same semantic cross-check.  Any
    failure raises :class:`DatabaseError` naming the path.
    """
    path = Path(path)
    with trace("db.verify", path=str(path)):
        if store_format(path) == FORMAT_RDB:
            header = read_header(path)
            _verify_checksum(path, header)
        db = open_database(path)
        _verify_semantics(path, db)
        return describe(path)


def _verify_checksum(path: Path, header: StoreHeader) -> None:
    actual = payload_checksum(path, header)
    if actual != header.checksum:
        raise DatabaseError(
            f"database store {path} failed its checksum (stored "
            f"{header.checksum.hex()[:12]}..., computed "
            f"{actual.hex()[:12]}...)"
        )


def _verify_semantics(path: Path, db) -> None:
    total = 0
    for size, reps in enumerate(db.reps_by_size):
        reps = np.asarray(reps, dtype=np.uint64)
        total += int(reps.shape[0])
        if reps.shape[0] == 0:
            continue
        # reps are canonical by construction; this is the raw-table probe.
        found = db.table.lookup_batch(reps)
        bad = np.nonzero(found != size)[0]
        if bad.size:
            raise DatabaseError(
                f"database store {path} is inconsistent: representative "
                f"{int(reps[bad[0]]):#x} of size {size} probes to "
                f"{int(found[bad[0]])}"
            )
    if total != len(db.table):
        raise DatabaseError(
            f"database store {path} is inconsistent: {total} "
            f"representatives vs {len(db.table)} table entries"
        )


__all__ = [
    "FORMAT_NPZ",
    "FORMAT_RDB",
    "StoreInfo",
    "convert",
    "describe",
    "open_database",
    "rdb_sidecar",
    "resolve_store",
    "store_format",
    "verify_store",
]
