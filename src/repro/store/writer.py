"""Crash-safe ``.rdb`` writer.

Mirrors the persistence discipline of the service result cache
(:mod:`repro.service.cache`): the file is written to a temp sibling,
fsynced, atomically renamed over the target, and the directory is
fsynced best-effort -- a crash mid-write leaves either the old store or
the new one, never a torn mix.  The header carries a SHA-256 checksum
over the payload, computed while streaming the sections out, so
``repro db verify`` can detect bit rot without trusting the writer.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

import numpy as np

from repro.errors import DatabaseError
from repro.store.format import HEADER_SIZE, MAX_K, StoreHeader


def write_rdb(db, path: "str | Path") -> Path:
    """Serialize an :class:`~repro.synth.database.OptimalDatabase` (or a
    mapped view of one) to ``path`` in ``.rdb`` format; returns the path.

    The table's raw slot arrays are written verbatim, so the mapped
    reader probes exactly as the in-RAM table does.
    """
    path = Path(path)
    if db.k > MAX_K:
        raise DatabaseError(
            f"cannot write {path}: k={db.k} exceeds the .rdb header "
            f"capacity (max {MAX_K})"
        )
    slot_keys, slot_values = db.table.slot_arrays()
    capacity_bits = db.table.capacity_bits
    reps = [np.ascontiguousarray(r, dtype=np.uint64) for r in db.reps_by_size]
    if len(reps) != db.k + 1:
        raise DatabaseError(
            f"cannot write {path}: database has {len(reps)} per-size "
            f"arrays but k={db.k} requires {db.k + 1}"
        )

    keys_le = np.ascontiguousarray(slot_keys, dtype="<u8")
    values_le = np.ascontiguousarray(slot_values, dtype="u1")
    header = StoreHeader(
        n_wires=db.n_wires,
        k=db.k,
        capacity_bits=capacity_bits,
        count=len(db.table),
        payload_len=0,  # filled below
        checksum=b"\x00" * 32,
        reps_counts=tuple(int(r.shape[0]) for r in reps),
    )
    pad = header.reps_offset - header.values_offset - values_le.nbytes
    sections: list[bytes] = [
        keys_le.tobytes(),
        values_le.tobytes(),
        b"\x00" * pad,
    ]
    sections.extend(
        np.ascontiguousarray(r, dtype="<u8").tobytes() for r in reps
    )
    digest = hashlib.sha256()
    payload_len = 0
    for section in sections:
        digest.update(section)
        payload_len += len(section)
    header = StoreHeader(
        n_wires=header.n_wires,
        k=header.k,
        capacity_bits=header.capacity_bits,
        count=header.count,
        payload_len=payload_len,
        checksum=digest.digest(),
        reps_counts=header.reps_counts,
    )
    assert header.expected_payload_len() == payload_len

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(header.pack())
            for section in sections:
                fh.write(section)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        try:
            dir_fd = os.open(path.parent, os.O_RDONLY)
        except OSError:
            pass  # platform without directory fds; rename is still atomic
        else:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    except OSError as exc:
        raise DatabaseError(
            f"failed to write database store {path}: {exc}"
        ) from exc
    return path


def payload_checksum(path: "str | Path", header: StoreHeader) -> bytes:
    """SHA-256 over the payload of an existing ``.rdb`` file (streamed)."""
    path = Path(path)
    digest = hashlib.sha256()
    remaining = header.payload_len
    try:
        with open(path, "rb") as fh:
            fh.seek(HEADER_SIZE)
            while remaining > 0:
                chunk = fh.read(min(remaining, 1 << 20))
                if not chunk:
                    break
                digest.update(chunk)
                remaining -= len(chunk)
    except OSError as exc:
        raise DatabaseError(
            f"database store {path} is unreadable: {exc}"
        ) from exc
    if remaining:
        raise DatabaseError(
            f"database store {path} is truncated: payload short by "
            f"{remaining} bytes"
        )
    return digest.digest()


__all__ = ["payload_checksum", "write_rdb"]
