"""The ``.rdb`` flat binary database format (version 1).

Layout -- every integer little-endian, sections written back to back::

    offset 0                    header, fixed HEADER_SIZE bytes
      0    magic          8s    b"reproRDB"
      8    version        u32   RDB_VERSION
      12   header_size    u32   HEADER_SIZE (4096)
      16   n_wires        u32
      20   k              u32
      24   capacity_bits  u32   log2 of the slot count
      28   reserved       u32   0
      32   count          u64   occupied slots
      40   payload_len    u64   bytes after the header
      48   checksum       32s   SHA-256 over the payload bytes
      80   reps_counts    u64 x (k+1)   representatives per size
      ...  zero padding to HEADER_SIZE
    offset HEADER_SIZE           payload
      slot_keys    uint64[1 << capacity_bits]   open-addressing keys
      slot_values  uint8 [1 << capacity_bits]   circuit sizes
      pad to 8-byte alignment
      reps_0 .. reps_k  uint64[reps_counts[s]]  per-size representatives

The slot arrays are the *exact* in-RAM probing layout of
:class:`repro.hashing.table.LinearProbingTable` (Wang-hashed home slot,
+1 wraparound, all-ones empty sentinel), so a read-only ``np.memmap``
over them probes byte-identically with zero copy.  Everything needed to
map the file is in the fixed-size header: cold start is O(page-fault),
not O(table-build), and N processes mapping one file share its pages.

All validation errors raise :class:`repro.errors.DatabaseError` and
name the offending path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DatabaseError

#: File magic; never changes across versions.
RDB_MAGIC = b"reproRDB"

#: On-disk format version; bump on incompatible layout change.
RDB_VERSION = 1

#: Fixed header size; the payload starts here.
HEADER_SIZE = 4096

#: struct layout of the fixed part of the header (before reps_counts).
_FIXED = struct.Struct("<8sIIIIII QQ 32s")

#: Offset of the reps_counts array inside the header.
_COUNTS_OFFSET = _FIXED.size

#: Largest k whose reps_counts fit in the header.
MAX_K = (HEADER_SIZE - _COUNTS_OFFSET) // 8 - 1

#: Section alignment inside the payload (uint64 views need it).
_ALIGN = 8


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class StoreHeader:
    """Parsed ``.rdb`` header: everything needed to map the file."""

    n_wires: int
    k: int
    capacity_bits: int
    count: int
    payload_len: int
    checksum: bytes
    reps_counts: tuple[int, ...]
    version: int = RDB_VERSION

    # ------------------------------------------------------------------
    # Derived layout
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return 1 << self.capacity_bits

    @property
    def keys_offset(self) -> int:
        return HEADER_SIZE

    @property
    def values_offset(self) -> int:
        return self.keys_offset + 8 * self.capacity

    @property
    def reps_offset(self) -> int:
        return _aligned(self.values_offset + self.capacity)

    def reps_offsets(self) -> list[int]:
        """Byte offset of each per-size representative array."""
        offsets = []
        cursor = self.reps_offset
        for count in self.reps_counts:
            offsets.append(cursor)
            cursor += 8 * count
        return offsets

    def expected_payload_len(self) -> int:
        """Payload length implied by capacity_bits and reps_counts."""
        end = self.reps_offset + 8 * sum(self.reps_counts)
        return end - HEADER_SIZE

    def expected_file_len(self) -> int:
        return HEADER_SIZE + self.payload_len

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def pack(self) -> bytes:
        """The full HEADER_SIZE-byte header."""
        if self.k > MAX_K:
            raise DatabaseError(
                f"k={self.k} exceeds the .rdb header capacity (max {MAX_K})"
            )
        fixed = _FIXED.pack(
            RDB_MAGIC,
            self.version,
            HEADER_SIZE,
            self.n_wires,
            self.k,
            self.capacity_bits,
            0,
            self.count,
            self.payload_len,
            self.checksum,
        )
        counts = struct.pack(f"<{self.k + 1}Q", *self.reps_counts)
        blob = fixed + counts
        return blob + b"\x00" * (HEADER_SIZE - len(blob))

    @staticmethod
    def unpack(raw: bytes, path: "Path | str") -> "StoreHeader":
        """Parse and validate a header; raise :class:`DatabaseError`
        (naming ``path``) on anything malformed."""
        if len(raw) < HEADER_SIZE:
            raise DatabaseError(
                f"database store {path} is truncated: header is "
                f"{len(raw)} bytes, need {HEADER_SIZE}"
            )
        (
            magic,
            version,
            header_size,
            n_wires,
            k,
            capacity_bits,
            _reserved,
            count,
            payload_len,
            checksum,
        ) = _FIXED.unpack_from(raw)
        if magic != RDB_MAGIC:
            raise DatabaseError(
                f"database store {path} has bad magic {magic!r} "
                f"(expected {RDB_MAGIC!r}); not an .rdb file"
            )
        if version != RDB_VERSION:
            raise DatabaseError(
                f"database store {path} has format version {version}, "
                f"this build reads version {RDB_VERSION}; re-run "
                "'repro db convert' to migrate"
            )
        if header_size != HEADER_SIZE:
            raise DatabaseError(
                f"database store {path} declares header_size "
                f"{header_size}, expected {HEADER_SIZE}"
            )
        if not (1 <= n_wires <= 4) or k < 0 or k > MAX_K:
            raise DatabaseError(
                f"database store {path} is corrupt: invalid "
                f"n_wires={n_wires}, k={k}"
            )
        if not 4 <= capacity_bits <= 34:
            raise DatabaseError(
                f"database store {path} is corrupt: capacity_bits "
                f"{capacity_bits} out of range"
            )
        reps_counts = struct.unpack_from(f"<{k + 1}Q", raw, _COUNTS_OFFSET)
        header = StoreHeader(
            n_wires=n_wires,
            k=k,
            capacity_bits=capacity_bits,
            count=count,
            payload_len=payload_len,
            checksum=checksum,
            reps_counts=tuple(int(c) for c in reps_counts),
            version=version,
        )
        if header.expected_payload_len() != payload_len:
            raise DatabaseError(
                f"database store {path} is corrupt: capacity_bits="
                f"{capacity_bits} and reps_counts imply a "
                f"{header.expected_payload_len()}-byte payload, header "
                f"declares {payload_len}"
            )
        return header


def read_header(path: "Path | str") -> StoreHeader:
    """Read and validate the header of an ``.rdb`` file.

    Also checks the physical file length against the header's declared
    layout, so a file whose ``capacity_bits`` disagrees with its length
    (truncated payload, padded garbage) is rejected up front.
    """
    path = Path(path)
    if not path.exists():
        raise DatabaseError(f"database store not found: {path}")
    try:
        with open(path, "rb") as fh:
            raw = fh.read(HEADER_SIZE)
    except OSError as exc:
        raise DatabaseError(
            f"database store {path} is unreadable: {exc}"
        ) from exc
    header = StoreHeader.unpack(raw, path)
    actual_len = path.stat().st_size
    if actual_len != header.expected_file_len():
        raise DatabaseError(
            f"database store {path} is corrupt: file is {actual_len} "
            f"bytes but header (capacity_bits={header.capacity_bits}, "
            f"k={header.k}) requires {header.expected_file_len()}"
        )
    return header


__all__ = [
    "HEADER_SIZE",
    "MAX_K",
    "RDB_MAGIC",
    "RDB_VERSION",
    "StoreHeader",
    "read_header",
]
