"""Map an ``.rdb`` store into an :class:`OptimalDatabase`, zero copy.

``map_database`` opens the file, validates the header (magic, version,
layout vs. physical length) and returns a fully functional
``OptimalDatabase`` whose hash table and per-size representative arrays
are read-only ``np.memmap`` views.  Nothing is deserialized: cold start
is the cost of a few page faults, and N processes mapping the same
path share one copy of the table in the page cache -- the property the
daemon's forked (and spawned) hard-query workers rely on.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.perf.trace import trace
from repro.store.format import StoreHeader, read_header
from repro.store.mmap_table import MmapTable


def map_database(path: "str | Path"):
    """An ``OptimalDatabase`` over read-only mappings of ``path``.

    Raises :class:`repro.errors.DatabaseError` (always naming the path)
    when the file is missing, truncated, version-skewed, or its header
    disagrees with its length.  The payload checksum is *not* verified
    here -- that would fault every page in and defeat the O(page-fault)
    cold start; run :func:`repro.store.registry.verify_store` (or
    ``repro db verify``) for the full integrity pass.
    """
    from repro.synth.database import OptimalDatabase

    path = Path(path)
    with trace("db.map", path=str(path)):
        header = read_header(path)
        table = MmapTable(path, header)
        reps_by_size = _map_reps(path, header)
        return OptimalDatabase(
            n_wires=header.n_wires,
            k=header.k,
            table=table,
            reps_by_size=reps_by_size,
        )


def _map_reps(path: Path, header: StoreHeader) -> "list[np.ndarray]":
    views: "list[np.ndarray]" = []
    for offset, count in zip(header.reps_offsets(), header.reps_counts):
        if count == 0:
            views.append(np.empty(0, dtype=np.uint64))
            continue
        views.append(
            np.memmap(
                path, mode="r", dtype=np.uint64, offset=offset, shape=(count,)
            )
        )
    return views


def is_mapped(db) -> bool:
    """True when ``db``'s table is a read-only store mapping."""
    return isinstance(getattr(db, "table", None), MmapTable)


def mapped_path(db) -> "Path | None":
    """The ``.rdb`` path backing ``db``, or None for in-RAM databases."""
    table = getattr(db, "table", None)
    if isinstance(table, MmapTable):
        return Path(table.path)
    return None


__all__ = ["is_mapped", "map_database", "mapped_path"]
